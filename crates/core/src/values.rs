//! Value-based heap metrics — the other metric family §2.1 names
//! ("value-based metrics, such as the number of distinct values stored
//! at a heap location over the program lifetime").
//!
//! [`ValueProfile`] is a [`Monitor`] that tracks, for every pointer
//! slot, how many *distinct* values were ever stored there, aggregated
//! per `(allocation site, offset)` — the static notion of a "heap
//! location" that survives individual objects. The summary separates
//! write-once locations (initialize-and-never-retarget, AccMon's
//! observation) from frequently-retargeted ones; a location whose
//! distinct-value count explodes is a candidate invariant violation.

use crate::monitor::{Monitor, MonitorCtx};
use serde::Serialize;
use sim_heap::{AllocSite, HeapEvent, ObjectId};
use std::collections::{HashMap, HashSet};

/// Distinct-value counts saturate here (the exact count of a hot slot
/// is uninteresting; "many" is the signal).
const SATURATION: usize = 64;

/// Per-location profile.
#[derive(Debug, Clone, Default)]
struct SlotProfile {
    distinct: HashSet<u64>,
    writes: u64,
}

/// Summary of the value behaviour of one static heap location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LocationSummary {
    /// Allocation site of the containing objects.
    pub site: AllocSite,
    /// Byte offset of the slot within those objects.
    pub offset: u64,
    /// Distinct pointer values stored (saturated).
    pub distinct_values: usize,
    /// Total pointer stores.
    pub writes: u64,
}

impl LocationSummary {
    /// Returns `true` when every write stored the same value.
    pub fn write_once(&self) -> bool {
        self.distinct_values <= 1
    }
}

/// A monitor profiling distinct pointer values per static heap
/// location.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings, ValueProfile};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = Rc::new(RefCell::new(ValueProfile::new()));
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// p.attach(profile.clone());
/// let a = p.malloc(16, "node")?;
/// let b = p.malloc(16, "node")?;
/// p.write_ptr(a, b)?;
/// let _ = p.finish("run");
/// let summary = profile.borrow().summarize();
/// assert_eq!(summary.len(), 1);
/// assert!(summary[0].write_once());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ValueProfile {
    /// Live-object site map (events carry ids, not sites, on writes).
    sites: HashMap<ObjectId, AllocSite>,
    profiles: HashMap<(AllocSite, u64), SlotProfile>,
}

impl ValueProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        ValueProfile::default()
    }

    /// Number of static locations profiled.
    pub fn locations(&self) -> usize {
        self.profiles.len()
    }

    /// Summaries for every profiled location, most-retargeted first.
    pub fn summarize(&self) -> Vec<LocationSummary> {
        let mut out: Vec<LocationSummary> = self
            .profiles
            .iter()
            .map(|(&(site, offset), p)| LocationSummary {
                site,
                offset,
                distinct_values: p.distinct.len(),
                writes: p.writes,
            })
            .collect();
        out.sort_by(|a, b| {
            b.distinct_values
                .cmp(&a.distinct_values)
                .then(b.writes.cmp(&a.writes))
                .then(a.site.0.cmp(&b.site.0))
                .then(a.offset.cmp(&b.offset))
        });
        out
    }

    /// Fraction of profiled locations that are write-once (0–1; 0 for
    /// an empty profile).
    pub fn write_once_fraction(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        let once = self
            .profiles
            .values()
            .filter(|p| p.distinct.len() <= 1)
            .count();
        once as f64 / self.profiles.len() as f64
    }
}

impl Monitor for ValueProfile {
    fn on_event(&mut self, _ctx: &MonitorCtx<'_>, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc { obj, site, .. } => {
                self.sites.insert(obj, site);
            }
            HeapEvent::Free { obj, .. } => {
                self.sites.remove(&obj);
            }
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => {
                if let Some(&site) = self.sites.get(&src) {
                    let p = self.profiles.entry((site, offset)).or_default();
                    p.writes += 1;
                    if p.distinct.len() < SATURATION {
                        p.distinct.insert(value.get());
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use crate::settings::Settings;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn rig() -> (Process, Rc<RefCell<ValueProfile>>) {
        let mut p = Process::new(Settings::builder().frq(1_000).build().unwrap());
        let v = Rc::new(RefCell::new(ValueProfile::new()));
        p.attach(v.clone());
        (p, v)
    }

    #[test]
    fn distinct_values_counted_per_location() {
        let (mut p, v) = rig();
        let a = p.malloc(32, "holder").unwrap();
        let t1 = p.malloc(16, "t").unwrap();
        let t2 = p.malloc(16, "t").unwrap();
        p.write_ptr(a, t1).unwrap();
        p.write_ptr(a, t2).unwrap();
        p.write_ptr(a, t1).unwrap(); // repeat: not a new distinct value
        p.write_ptr(a.offset(8), t1).unwrap();
        let _ = p.finish("r");
        let s = v.borrow().summarize();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].offset, 0);
        assert_eq!(s[0].distinct_values, 2);
        assert_eq!(s[0].writes, 3);
        assert!(s[1].write_once());
    }

    #[test]
    fn locations_aggregate_across_objects_of_one_site() {
        let (mut p, v) = rig();
        // Two nodes from the same site; each next-slot written once
        // with a different value: the *location* has 2 distinct values.
        let n1 = p.malloc(16, "node").unwrap();
        let n2 = p.malloc(16, "node").unwrap();
        p.write_ptr(n1.offset(8), n2).unwrap();
        p.write_ptr(n2.offset(8), n1).unwrap();
        let _ = p.finish("r");
        let s = v.borrow().summarize();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].distinct_values, 2);
    }

    #[test]
    fn write_once_fraction() {
        let (mut p, v) = rig();
        let a = p.malloc(32, "a").unwrap();
        let b = p.malloc(32, "b").unwrap();
        p.write_ptr(a, b).unwrap(); // a+0: one value
        p.write_ptr(b, a).unwrap();
        p.write_ptr(b, b).unwrap(); // b+0: two values
        let _ = p.finish("r");
        assert!((v.borrow().write_once_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(v.borrow().locations(), 2);
    }

    #[test]
    fn empty_profile_is_safe() {
        let v = ValueProfile::new();
        assert_eq!(v.write_once_fraction(), 0.0);
        assert!(v.summarize().is_empty());
    }
}
