//! The metric summarizer and the heap-behaviour model (paper §2.1).

use crate::error::HeapMdError;
use crate::fluctuation::FluctuationStats;
use crate::phase_model::{merge_ranges, segment, LocalMetric, Plateau};
use crate::report::MetricReport;
use crate::settings::Settings;
use crate::stability::{classify, StabilityClass};
use heap_graph::{CandidateKind, MetricKind, METRIC_COUNT};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The extended (non-paper) candidates, in canonical order — the slice
/// of the family that candidate calibration runs the stability filter
/// over. The paper seven are excluded so a metric never earns two
/// verdicts: they stay under the legacy [`StableMetric`] machinery.
pub(crate) fn extended_candidates() -> &'static [CandidateKind] {
    &CandidateKind::ALL[METRIC_COUNT..]
}

/// Per-run, per-metric analysis produced while summarizing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// The metric analysed.
    pub kind: MetricKind,
    /// Fluctuation statistics over the trimmed samples.
    pub stats: FluctuationStats,
    /// Stability classification for this run.
    pub class: StabilityClass,
    /// Minimum value over the trimmed samples.
    pub min: f64,
    /// Maximum value over the trimmed samples.
    pub max: f64,
}

/// One run's summaries, one entry per metric in canonical order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The run label.
    pub run: String,
    /// Per-metric summaries (canonical metric order), or `None` when the
    /// run was too short to analyse after trimming.
    pub metrics: Option<Vec<MetricSummary>>,
}

/// Per-run, per-candidate analysis for the extended (non-paper) family,
/// produced when candidate calibration is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateSummary {
    /// The candidate analysed.
    pub kind: CandidateKind,
    /// Fluctuation statistics over the trimmed samples.
    pub stats: FluctuationStats,
    /// Stability classification for this run.
    pub class: StabilityClass,
    /// Minimum value over the trimmed samples.
    pub min: f64,
    /// Maximum value over the trimmed samples.
    pub max: f64,
}

/// One calibrated candidate metric from the widened family, keyed by
/// its stable string id so model artifacts survive family growth: a
/// build that does not know an id rejects the model loudly (see
/// [`HeapModel::validate`]) instead of silently dropping the entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateMetric {
    /// Stable string id ([`CandidateKind::id`]).
    pub id: String,
    /// Minimum observed across all training inputs.
    pub min: f64,
    /// Maximum observed across all training inputs.
    pub max: f64,
    /// Mean per-step % change averaged across the stable runs.
    pub avg_change: f64,
    /// Standard deviation of change averaged across the stable runs.
    pub std_change: f64,
    /// Number of training runs on which the candidate was stable.
    pub stable_runs: usize,
    /// Total training runs with candidate data.
    pub total_runs: usize,
}

impl CandidateMetric {
    /// The resolved candidate kind.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown — `validate` guarantees resolved ids
    /// on every loaded model.
    pub fn kind(&self) -> CandidateKind {
        CandidateKind::from_id(&self.id).expect("validated candidate id")
    }

    /// Width of the calibrated range.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Returns `true` when `value` lies within the calibrated range.
    pub fn contains(&self, value: f64) -> bool {
        (self.min..=self.max).contains(&value)
    }
}

/// One globally stable metric's calibrated model entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StableMetric {
    /// The metric.
    pub kind: MetricKind,
    /// Minimum observed across **all** training inputs (§2.2: "the
    /// minimum and maximum values these metrics attained across all
    /// the training inputs") — the calibrated lower bound.
    pub min: f64,
    /// Maximum observed across all training inputs — the calibrated
    /// upper bound.
    pub max: f64,
    /// Mean per-step % change averaged across the stable runs (the
    /// "Avg. % rate of change" column of the paper's Figure 7).
    pub avg_change: f64,
    /// Standard deviation of change averaged across the stable runs (the
    /// "Std. Dev." column of Figure 7).
    pub std_change: f64,
    /// Number of training runs on which the metric was stable.
    pub stable_runs: usize,
    /// Total training runs.
    pub total_runs: usize,
}

impl StableMetric {
    /// Width of the calibrated range.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Returns `true` when `value` lies within the calibrated range.
    pub fn contains(&self, value: f64) -> bool {
        (self.min..=self.max).contains(&value)
    }
}

/// Current on-disk model format version, stamped into every model this
/// build produces. Files without a `version` field (written by older
/// builds) parse as version 0 and are accepted; files from a *newer*
/// format are rejected by [`HeapModel::validate`].
///
/// Version history: 1 added the id-keyed candidate family; 2 added the
/// calibration-time store-sampling rate (older files default to 1.0).
pub const MODEL_FORMAT_VERSION: u32 = 2;

/// Extra slack added to **each side** of a calibrated `[min, max]`
/// range when the observed stream was store-sampled at `rate`: with
/// only a `rate` fraction of pointer stores reaching the heap graph,
/// connectivity metrics wobble by roughly `1/sqrt(rate)`, so the band
/// widens proportionally to the range width (floored at 1 percentage
/// point so degenerate flat ranges still get slack).
///
/// Exactly `0.0` at `rate >= 1.0`, which keeps unsampled verdicts
/// bit-identical to pre-sampling builds.
pub fn sampling_widen(width: f64, rate: f64) -> f64 {
    if !(rate < 1.0) {
        return 0.0;
    }
    let r = rate.clamp(1e-6, 1.0);
    width.max(1.0) * 0.5 * (1.0 / r.sqrt() - 1.0)
}

/// The summarized metric report: HeapMD's model of correct heap
/// behaviour for one program.
///
/// Serializable, so a model trained once can check many later runs or
/// program versions — the paper's `input*.exe` flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeapModel {
    /// On-disk format version (see [`MODEL_FORMAT_VERSION`]).
    #[serde(default)]
    pub version: u32,
    /// The program the model was calibrated for.
    pub program: String,
    /// Settings used during calibration.
    pub settings: Settings,
    /// Globally stable metrics with their calibrated ranges, in
    /// canonical metric order.
    pub stable: Vec<StableMetric>,
    /// Metrics that were globally stable on *zero* training runs — the
    /// "normally unstable" metrics whose unexpected stability during
    /// checking flags a pathological bug (§4.1).
    pub unstable: Vec<MetricKind>,
    /// Locally stable metrics with their calibrated phase bands —
    /// present when the model was built with
    /// [`ModelBuilder::locally_stable`] (the paper's §2.1 extension).
    #[serde(default)]
    pub locally_stable: Vec<LocalMetric>,
    /// Calibrated extended candidates (the widened, id-keyed family) —
    /// present when the model was built with
    /// [`ModelBuilder::candidate_metrics`]. Empty for paper-mode
    /// models, which keeps the default detector byte-identical.
    #[serde(default)]
    pub candidate_stable: Vec<CandidateMetric>,
    /// Extended candidate ids that were stable on zero training runs.
    #[serde(default)]
    pub candidate_unstable: Vec<String>,
    /// The lowest effective store-sampling rate among the training
    /// runs, in `(0, 1]`. `1.0` (the default for pre-v2 artifacts)
    /// means every training run observed every store; lower values mean
    /// the calibrated ranges were themselves measured under sampling
    /// and checking must widen accordingly (see [`sampling_widen`]).
    #[serde(default = "default_model_sample_rate")]
    pub sample_rate: f64,
    /// Number of training runs consumed.
    pub training_runs: usize,
}

fn default_model_sample_rate() -> f64 {
    1.0
}

impl HeapModel {
    /// The calibrated entry for `kind`, if it is globally stable.
    pub fn stable_metric(&self, kind: MetricKind) -> Option<&StableMetric> {
        self.stable.iter().find(|m| m.kind == kind)
    }

    /// Returns `true` when `kind` was identified as globally stable.
    pub fn is_stable(&self, kind: MetricKind) -> bool {
        self.stable_metric(kind).is_some()
    }

    /// All stable metrics.
    pub fn stable_metrics(&self) -> &[StableMetric] {
        &self.stable
    }

    /// The calibrated entry for a candidate id, if it calibrated.
    pub fn candidate_metric(&self, id: &str) -> Option<&CandidateMetric> {
        self.candidate_stable.iter().find(|c| c.id == id)
    }

    /// Returns `true` when the model carries any calibrated extended
    /// candidates — the artifact property that arms candidate checking
    /// in the detector (there is no check-time flag to get wrong).
    pub fn has_candidates(&self) -> bool {
        !self.candidate_stable.is_empty()
    }

    /// Serializes the model to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String, HeapMdError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses and validates a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`] on malformed JSON or a model
    /// that fails [`validate`](Self::validate).
    pub fn from_json(json: &str) -> Result<Self, HeapMdError> {
        let model: HeapModel = serde_json::from_str(json)
            .map_err(|e| HeapMdError::corrupt(0, format!("model JSON: {e}")))?;
        model.validate()?;
        Ok(model)
    }

    /// Structural validation of a deserialized model: version within
    /// the supported range, finite ordered `[min, max]` bounds, sane
    /// change statistics, and consistent run counts. `load` and
    /// `from_json` call this so a damaged or hand-edited model surfaces
    /// as a typed [`HeapMdError::Corrupt`] instead of a panic (or a
    /// silent nonsense detector) downstream.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`] describing the first violation.
    pub fn validate(&self) -> Result<(), HeapMdError> {
        if self.version > MODEL_FORMAT_VERSION {
            return Err(HeapMdError::corrupt(
                0,
                format!(
                    "model format version {} is newer than supported {}",
                    self.version, MODEL_FORMAT_VERSION
                ),
            ));
        }
        for sm in &self.stable {
            if !sm.min.is_finite() || !sm.max.is_finite() {
                return Err(HeapMdError::corrupt(
                    0,
                    format!("stable metric {} has non-finite bounds", sm.kind),
                ));
            }
            if sm.min > sm.max {
                return Err(HeapMdError::corrupt(
                    0,
                    format!(
                        "stable metric {} has min {} > max {}",
                        sm.kind, sm.min, sm.max
                    ),
                ));
            }
            if !sm.std_change.is_finite() || sm.std_change < 0.0 {
                return Err(HeapMdError::corrupt(
                    0,
                    format!("stable metric {} has invalid std_change", sm.kind),
                ));
            }
            if sm.stable_runs > sm.total_runs {
                return Err(HeapMdError::corrupt(
                    0,
                    format!(
                        "stable metric {} claims {} stable of {} total runs",
                        sm.kind, sm.stable_runs, sm.total_runs
                    ),
                ));
            }
        }
        for lm in &self.locally_stable {
            for &(lo, hi) in &lm.ranges {
                if !lo.is_finite() || !hi.is_finite() || lo > hi {
                    return Err(HeapMdError::corrupt(
                        0,
                        format!("locally stable metric {} has invalid band", lm.kind),
                    ));
                }
            }
        }
        for cm in &self.candidate_stable {
            if CandidateKind::from_id(&cm.id).is_none() {
                return Err(HeapMdError::corrupt(
                    0,
                    format!(
                        "model calibrates unknown metric id {:?}; this build knows the \
                         candidate family up to {} ids — refusing to silently drop it",
                        cm.id,
                        CandidateKind::ALL.len()
                    ),
                ));
            }
            if !cm.min.is_finite() || !cm.max.is_finite() || cm.min > cm.max {
                return Err(HeapMdError::corrupt(
                    0,
                    format!("candidate metric {:?} has invalid bounds", cm.id),
                ));
            }
            if !cm.std_change.is_finite() || cm.std_change < 0.0 {
                return Err(HeapMdError::corrupt(
                    0,
                    format!("candidate metric {:?} has invalid std_change", cm.id),
                ));
            }
            if cm.stable_runs > cm.total_runs {
                return Err(HeapMdError::corrupt(
                    0,
                    format!(
                        "candidate metric {:?} claims {} stable of {} total runs",
                        cm.id, cm.stable_runs, cm.total_runs
                    ),
                ));
            }
        }
        for id in &self.candidate_unstable {
            if CandidateKind::from_id(id).is_none() {
                return Err(HeapMdError::corrupt(
                    0,
                    format!("model names unknown metric id {id:?} as unstable"),
                ));
            }
        }
        if !self.sample_rate.is_finite() || self.sample_rate <= 0.0 || self.sample_rate > 1.0 {
            return Err(HeapMdError::corrupt(
                0,
                format!(
                    "model sample_rate {} is outside (0, 1]",
                    self.sample_rate
                ),
            ));
        }
        Ok(())
    }

    /// Writes the model to a file as JSON, atomically: the bytes land
    /// in a temporary sibling which is then renamed over `path`, so a
    /// crash mid-save can never leave a truncated model behind.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HeapMdError> {
        crate::persist::write_atomic(path, self.to_json()?.as_bytes())?;
        Ok(())
    }

    /// Reads and validates a model previously written by
    /// [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] when the file cannot be read and
    /// [`HeapMdError::Corrupt`] when it parses or validates badly.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

/// Result of model construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutcome {
    /// The calibrated model.
    pub model: HeapModel,
    /// Per-run summaries (for inspection, tables, and plots).
    pub runs: Vec<RunSummary>,
    /// Training runs on which a globally stable metric fell outside the
    /// range calibrated from the stable runs. The paper treats such
    /// training inputs as themselves buggy.
    pub flagged_runs: Vec<String>,
}

/// The metric summarizer: consumes per-run [`MetricReport`]s and builds
/// a [`HeapModel`].
///
/// # Example
///
/// ```
/// use heapmd::{MetricKind, ModelBuilder, Process, Settings};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let settings = Settings::builder().frq(5).build()?;
/// let mut b = ModelBuilder::new(settings.clone());
/// for _ in 0..3 {
///     let mut p = Process::new(settings.clone());
///     for _ in 0..200 {
///         p.enter("work");
///         p.malloc(16, "leafy")?;
///         p.leave();
///     }
///     b.add_run(&p.finish("run"));
/// }
/// let out = b.build();
/// // A heap of isolated objects: Leaves is trivially stable at 100 %.
/// assert!(out.model.is_stable(MetricKind::Leaves));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    pub(crate) settings: Settings,
    pub(crate) program: String,
    pub(crate) runs: Vec<RunSummary>,
    pub(crate) include_local: bool,
    /// Trimmed per-metric series, kept only when local modelling is on.
    pub(crate) series: Vec<Option<Vec<Vec<f64>>>>,
    pub(crate) include_candidates: bool,
    /// Per-run extended-candidate summaries (parallel to `runs`; `None`
    /// when candidate modelling is off, the run was too short, or its
    /// samples carry no candidate vectors).
    pub(crate) cand_runs: Vec<Option<Vec<CandidateSummary>>>,
    /// Lowest store-sampling rate among the added runs (1.0 until a
    /// sampled report arrives); stamped into the built model.
    pub(crate) min_sample_rate: f64,
}

impl ModelBuilder {
    /// Creates a builder with the given settings.
    pub fn new(settings: Settings) -> Self {
        ModelBuilder {
            settings,
            program: String::from("unnamed"),
            runs: Vec::new(),
            include_local: false,
            series: Vec::new(),
            include_candidates: false,
            cand_runs: Vec::new(),
            min_sample_rate: 1.0,
        }
    }

    /// Also model *locally stable* metrics (per-phase plateau bands),
    /// the extension the paper announces in §2.1. Call before adding
    /// runs.
    pub fn locally_stable(mut self, enable: bool) -> Self {
        self.include_local = enable;
        self
    }

    /// Also run the widened candidate family (the `--metrics
    /// candidates` mode) through the stability filter, learning per
    /// program which extended metrics calibrate. The legacy seven are
    /// untouched: they keep their own [`StableMetric`] pass whatever
    /// this flag says. Call before adding runs.
    pub fn candidate_metrics(mut self, enable: bool) -> Self {
        self.include_candidates = enable;
        self
    }

    /// Names the program being modelled (recorded in the model).
    pub fn program(mut self, name: impl Into<String>) -> Self {
        self.program = name.into();
        self
    }

    /// Summarizes one training run and adds it to the pool.
    pub fn add_run(&mut self, report: &MetricReport) -> &mut Self {
        if report.sample_rate.is_finite() && report.sample_rate > 0.0 {
            self.min_sample_rate = self.min_sample_rate.min(report.sample_rate);
        }
        let summary = summarize_run(report, &self.settings);
        self.series
            .push(if self.include_local && summary.metrics.is_some() {
                Some(
                    MetricKind::ALL
                        .iter()
                        .map(|&k| report.trimmed_series(k, &self.settings))
                        .collect(),
                )
            } else {
                None
            });
        self.cand_runs
            .push(if self.include_candidates && summary.metrics.is_some() {
                summarize_candidates(report, &self.settings)
            } else {
                None
            });
        self.runs.push(summary);
        self
    }

    /// Summarizes `reports` on up to `threads` scoped worker threads and
    /// adds them to the pool in input order.
    ///
    /// Deterministic by construction: [`summarize_run`] is a pure
    /// function of `(report, settings)`, each worker writes its results
    /// into slots addressed by input index, and the pool is appended in
    /// index order afterwards — so the builder state (and any model or
    /// checkpoint derived from it) is bit-identical to calling
    /// [`add_run`](Self::add_run) sequentially, whatever `threads` is.
    ///
    /// Reports per-stage throughput and thread utilization through
    /// `heapmd-obs` (`model_train_summarize` stage).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread (as the sequential
    /// path would).
    pub fn add_runs_parallel(&mut self, reports: &[MetricReport], threads: usize) -> &mut Self {
        let workers = threads.max(1).min(reports.len());
        if workers <= 1 {
            for report in reports {
                self.add_run(report);
            }
            return self;
        }
        let clock = heapmd_obs::throughput::stage_clock();
        let settings = &self.settings;
        let include_local = self.include_local;
        let include_candidates = self.include_candidates;
        type Summarized = Option<(
            RunSummary,
            Option<Vec<Vec<f64>>>,
            Option<Vec<CandidateSummary>>,
        )>;
        let mut results: Vec<Summarized> = vec![None; reports.len()];
        let chunk = reports.len().div_ceil(workers);
        let busy: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .chunks_mut(chunk)
                .zip(reports.chunks(chunk))
                .map(|(slots, part)| {
                    scope.spawn(move || {
                        let t0 = std::time::Instant::now();
                        for (slot, report) in slots.iter_mut().zip(part) {
                            let summary = summarize_run(report, settings);
                            let series = if include_local && summary.metrics.is_some() {
                                Some(
                                    MetricKind::ALL
                                        .iter()
                                        .map(|&k| report.trimmed_series(k, settings))
                                        .collect(),
                                )
                            } else {
                                None
                            };
                            let cands = if include_candidates && summary.metrics.is_some() {
                                summarize_candidates(report, settings)
                            } else {
                                None
                            };
                            *slot = Some((summary, series, cands));
                        }
                        t0.elapsed().as_nanos() as u64
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("summarize worker panicked"))
                .collect()
        });
        for report in reports {
            if report.sample_rate.is_finite() && report.sample_rate > 0.0 {
                self.min_sample_rate = self.min_sample_rate.min(report.sample_rate);
            }
        }
        for result in results {
            let (summary, series, cands) = result.expect("every slot filled");
            self.series.push(series);
            self.cand_runs.push(cands);
            self.runs.push(summary);
        }
        if let Some(t0) = clock {
            let wall = (t0.elapsed().as_nanos() as u64).max(1);
            heapmd_obs::throughput::record_stage(
                "model_train_summarize",
                reports.len() as u64,
                wall,
            );
            heapmd_obs::gauge_set!("model_train_threads", workers as i64);
            let busy_total: u64 = busy.iter().sum();
            heapmd_obs::gauge_set!(
                "model_train_thread_utilization_pct",
                (busy_total.saturating_mul(100)) / (wall * workers as u64)
            );
        }
        self
    }

    /// Number of runs added so far.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Identifies globally stable metrics and calibrates their ranges.
    ///
    /// A metric is globally stable when it classified as
    /// [`StabilityClass::GloballyStable`] on at least
    /// `stable_input_frac` of the training runs (and at least one).
    /// Per the paper's §2.2, the calibrated `[min, max]` spans **all**
    /// training inputs; training runs straying outside the envelope of
    /// the *stable* runs are additionally flagged as suspect (§4.1).
    pub fn build(&self) -> ModelOutcome {
        let _span = heapmd_obs::span!("model_build");
        let analysable: Vec<&RunSummary> =
            self.runs.iter().filter(|r| r.metrics.is_some()).collect();
        let total = analysable.len();
        let needed = ((total as f64) * self.settings.stable_input_frac).ceil() as usize;
        let needed = needed.max(1);

        let mut stable = Vec::new();
        let mut stable_envelopes: Vec<(MetricKind, f64, f64)> = Vec::new();
        let mut never_stable = Vec::new();
        for kind in MetricKind::ALL {
            if total == 0 {
                break;
            }
            let idx = kind.index();
            let per_run: Vec<&MetricSummary> = analysable
                .iter()
                .map(|r| &r.metrics.as_ref().expect("filtered")[idx])
                .collect();
            let stable_runs: Vec<&&MetricSummary> = per_run
                .iter()
                .filter(|m| m.class == StabilityClass::GloballyStable)
                .collect();
            if stable_runs.is_empty() {
                never_stable.push(kind);
                continue;
            }
            if stable_runs.len() < needed {
                continue;
            }
            // Range across all training inputs; change statistics from
            // the stable runs (Figure 7's Avg./Std. columns).
            let min = per_run.iter().map(|m| m.min).fold(f64::INFINITY, f64::min);
            let max = per_run
                .iter()
                .map(|m| m.max)
                .fold(f64::NEG_INFINITY, f64::max);
            let stable_min = stable_runs
                .iter()
                .map(|m| m.min)
                .fold(f64::INFINITY, f64::min);
            let stable_max = stable_runs
                .iter()
                .map(|m| m.max)
                .fold(f64::NEG_INFINITY, f64::max);
            stable_envelopes.push((kind, stable_min, stable_max));
            let avg_change =
                stable_runs.iter().map(|m| m.stats.mean).sum::<f64>() / stable_runs.len() as f64;
            let std_change =
                stable_runs.iter().map(|m| m.stats.std_dev).sum::<f64>() / stable_runs.len() as f64;
            stable.push(StableMetric {
                kind,
                min,
                max,
                avg_change,
                std_change,
                stable_runs: stable_runs.len(),
                total_runs: total,
            });
        }

        // Flag training runs whose values stray outside the envelope of
        // the *stable* runs (plus the checking slack): the paper treats
        // such training inputs as suspect (§4.1). Diagnostic only — the
        // calibrated range above already covers them.
        let margin = self.settings.range_margin;
        let mut flagged = Vec::new();
        for run in &analysable {
            let metrics = run.metrics.as_ref().expect("filtered");
            let violates = stable_envelopes.iter().any(|&(kind, lo, hi)| {
                let m = &metrics[kind.index()];
                m.min < lo - margin || m.max > hi + margin
            });
            if violates {
                flagged.push(run.run.clone());
            }
        }

        // The §2.1 extension: phase bands for metrics that are locally
        // (but not globally) stable on enough runs.
        let locally_stable = if self.include_local {
            self.build_local(&stable, needed)
        } else {
            Vec::new()
        };

        // The widened family: run the same stability filter over the
        // extended candidates, learning per program which of them
        // calibrate. Strictly additive — nothing above reads candidate
        // state, so paper-mode verdicts cannot move.
        let (candidate_stable, candidate_unstable) = if self.include_candidates {
            self.build_candidates()
        } else {
            (Vec::new(), Vec::new())
        };

        ModelOutcome {
            model: HeapModel {
                version: MODEL_FORMAT_VERSION,
                program: self.program.clone(),
                settings: self.settings.clone(),
                stable,
                unstable: never_stable,
                locally_stable,
                candidate_stable,
                candidate_unstable,
                sample_rate: self.min_sample_rate,
                training_runs: total,
            },
            runs: self.runs.clone(),
            flagged_runs: flagged,
        }
    }

    /// The candidate calibration pass: for each extended candidate,
    /// classify its per-run stability exactly as the legacy pass does
    /// ([`classify`] over [`FluctuationStats`]), calibrate those stable
    /// on at least `stable_input_frac` of the candidate-carrying runs,
    /// and name the never-stable rest.
    fn build_candidates(&self) -> (Vec<CandidateMetric>, Vec<String>) {
        let analysable: Vec<&Vec<CandidateSummary>> =
            self.cand_runs.iter().filter_map(|r| r.as_ref()).collect();
        let total = analysable.len();
        if total == 0 {
            return (Vec::new(), Vec::new());
        }
        let needed = ((total as f64) * self.settings.stable_input_frac).ceil() as usize;
        let needed = needed.max(1);
        let mut stable = Vec::new();
        let mut never_stable = Vec::new();
        for (idx, kind) in extended_candidates().iter().enumerate() {
            let per_run: Vec<&CandidateSummary> = analysable.iter().map(|r| &r[idx]).collect();
            let stable_runs: Vec<&&CandidateSummary> = per_run
                .iter()
                .filter(|c| c.class == StabilityClass::GloballyStable)
                .collect();
            if stable_runs.is_empty() {
                never_stable.push(kind.id().to_string());
                continue;
            }
            if stable_runs.len() < needed {
                continue;
            }
            let min = per_run.iter().map(|c| c.min).fold(f64::INFINITY, f64::min);
            let max = per_run
                .iter()
                .map(|c| c.max)
                .fold(f64::NEG_INFINITY, f64::max);
            let avg_change =
                stable_runs.iter().map(|c| c.stats.mean).sum::<f64>() / stable_runs.len() as f64;
            let std_change =
                stable_runs.iter().map(|c| c.stats.std_dev).sum::<f64>() / stable_runs.len() as f64;
            stable.push(CandidateMetric {
                id: kind.id().to_string(),
                min,
                max,
                avg_change,
                std_change,
                stable_runs: stable_runs.len(),
                total_runs: total,
            });
        }
        (stable, never_stable)
    }

    fn build_local(&self, stable: &[StableMetric], needed: usize) -> Vec<LocalMetric> {
        let mut out = Vec::new();
        let analysable: Vec<(usize, &RunSummary)> = self
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.metrics.is_some())
            .collect();
        let total = analysable.len();
        for kind in MetricKind::ALL {
            if stable.iter().any(|sm| sm.kind == kind) {
                continue; // already globally modelled
            }
            let idx = kind.index();
            let local_runs: Vec<usize> = analysable
                .iter()
                .filter(|(_, r)| {
                    r.metrics.as_ref().expect("filtered")[idx]
                        .class
                        .is_locally_stable()
                })
                .map(|&(i, _)| i)
                .collect();
            if local_runs.len() < needed || local_runs.is_empty() {
                continue;
            }
            let spike = self.settings.std_change_threshold;
            let mut plateaus: Vec<Plateau> = Vec::new();
            for &run_idx in &local_runs {
                if let Some(series) = &self.series[run_idx] {
                    plateaus.extend(segment(&series[idx], spike, 3));
                }
            }
            if plateaus.is_empty() {
                continue;
            }
            let gap = self.settings.range_margin.max(0.5);
            out.push(LocalMetric {
                kind,
                ranges: merge_ranges(&plateaus, gap),
                stable_runs: local_runs.len(),
                total_runs: total,
            });
        }
        out
    }
}

/// Summarizes one run: trims startup/shutdown, computes fluctuation
/// statistics, and classifies each metric.
pub(crate) fn summarize_run(report: &MetricReport, settings: &Settings) -> RunSummary {
    let trimmed = report.trimmed(settings);
    if trimmed.len() < settings.min_samples {
        return RunSummary {
            run: report.run.clone(),
            metrics: None,
        };
    }
    let metrics = MetricKind::ALL
        .iter()
        .map(|&kind| {
            let series: Vec<f64> = trimmed.iter().map(|s| s.metrics.get(kind)).collect();
            let stats = FluctuationStats::from_series(&series);
            let class = classify(&stats, settings);
            let min = series.iter().copied().fold(f64::INFINITY, f64::min);
            let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            MetricSummary {
                kind,
                stats,
                class,
                min,
                max,
            }
        })
        .collect();
    RunSummary {
        run: report.run.clone(),
        metrics: Some(metrics),
    }
}

/// Summarizes the extended candidates of one run, or `None` when any
/// trimmed sample lacks a candidate vector (a report replayed from an
/// artifact that predates the widened family): a partial series would
/// calibrate ranges from a biased slice of the run.
pub(crate) fn summarize_candidates(
    report: &MetricReport,
    settings: &Settings,
) -> Option<Vec<CandidateSummary>> {
    let trimmed = report.trimmed(settings);
    if trimmed.len() < settings.min_samples || trimmed.iter().any(|s| s.candidates.is_none()) {
        return None;
    }
    Some(
        extended_candidates()
            .iter()
            .map(|&kind| {
                let series: Vec<f64> = trimmed
                    .iter()
                    .map(|s| s.candidates.expect("checked above").get(kind))
                    .collect();
                let stats = FluctuationStats::from_series(&series);
                let class = classify(&stats, settings);
                let min = series.iter().copied().fold(f64::INFINITY, f64::min);
                let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                CandidateSummary {
                    kind,
                    stats,
                    class,
                    min,
                    max,
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MetricSample;
    use heap_graph::{MetricVector, METRIC_COUNT};

    fn flat_report(run: &str, value: f64, n: usize) -> MetricReport {
        let samples = (0..n)
            .map(|i| MetricSample {
                seq: i,
                fn_entries: i as u64,
                tick: i as u64,
                metrics: MetricVector::from_array([value; METRIC_COUNT]),
                nodes: 10,
                edges: 5,
                dangling: 0,
                candidates: None,
            })
            .collect();
        MetricReport::new(run, samples)
    }

    fn noisy_report(run: &str, n: usize) -> MetricReport {
        let samples = (0..n)
            .map(|i| {
                let v = if i % 2 == 0 { 10.0 } else { 30.0 };
                MetricSample {
                    seq: i,
                    fn_entries: i as u64,
                    tick: i as u64,
                    metrics: MetricVector::from_array([v; METRIC_COUNT]),
                    nodes: 10,
                    edges: 5,
                    dangling: 0,
                    candidates: None,
                }
            })
            .collect();
        MetricReport::new(run, samples)
    }

    fn settings() -> Settings {
        Settings::default()
    }

    #[test]
    fn all_stable_runs_calibrate_every_metric() {
        let mut b = ModelBuilder::new(settings());
        for i in 0..5 {
            b.add_run(&flat_report(&format!("r{i}"), 40.0 + i as f64, 30));
        }
        let out = b.build();
        assert_eq!(out.model.stable.len(), METRIC_COUNT);
        let sm = out.model.stable_metric(MetricKind::Roots).unwrap();
        assert_eq!(sm.min, 40.0);
        assert_eq!(sm.max, 44.0);
        assert_eq!(sm.stable_runs, 5);
        assert_eq!(sm.total_runs, 5);
        assert!(out.flagged_runs.is_empty());
    }

    #[test]
    fn unstable_runs_produce_no_stable_metrics() {
        let mut b = ModelBuilder::new(settings());
        for i in 0..5 {
            b.add_run(&noisy_report(&format!("r{i}"), 30));
        }
        let out = b.build();
        assert!(out.model.stable.is_empty());
    }

    #[test]
    fn forty_percent_rule() {
        // 2 stable of 5 runs = 40% → exactly meets the threshold.
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("s1", 50.0, 30));
        b.add_run(&flat_report("s2", 52.0, 30));
        for i in 0..3 {
            b.add_run(&noisy_report(&format!("n{i}"), 30));
        }
        let out = b.build();
        assert!(out.model.is_stable(MetricKind::Leaves));
        let sm = out.model.stable_metric(MetricKind::Leaves).unwrap();
        assert_eq!(sm.stable_runs, 2);
        // Range spans all training inputs (§2.2): the noisy runs swing
        // between 10 and 30, the stable ones between 50 and 52.
        assert_eq!((sm.min, sm.max), (10.0, 52.0));
        // The noisy runs violate the stable runs' [50, 52] envelope →
        // flagged as suspect training inputs.
        assert_eq!(out.flagged_runs.len(), 3);

        // 1 stable of 5 runs = 20% → below the threshold.
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("s1", 50.0, 30));
        for i in 0..4 {
            b.add_run(&noisy_report(&format!("n{i}"), 30));
        }
        assert!(b.build().model.stable.is_empty());
    }

    #[test]
    fn short_runs_are_excluded_from_analysis() {
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("tiny", 10.0, 3)); // below min_samples after trim
        b.add_run(&flat_report("ok", 10.0, 30));
        let out = b.build();
        assert_eq!(out.model.training_runs, 1);
        assert!(out.model.is_stable(MetricKind::Roots));
        assert_eq!(out.runs.len(), 2);
        assert!(out.runs[0].metrics.is_none());
    }

    #[test]
    fn model_json_round_trip() {
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("r", 25.0, 30));
        let model = b.build().model;
        let json = model.to_json().unwrap();
        let back = HeapModel::from_json(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn model_save_load_round_trip() {
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("r", 25.0, 30));
        let model = b.program("demo").build().model;
        let dir = std::env::temp_dir().join("heapmd-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let back = HeapModel::load(&path).unwrap();
        assert_eq!(model, back);
        assert_eq!(back.program, "demo");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corrupt_and_future_models() {
        use crate::error::HeapMdError;
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("r", 25.0, 30));
        let model = b.build().model;
        assert_eq!(model.version, MODEL_FORMAT_VERSION);
        model.validate().unwrap();

        // Future format version.
        let mut future = model.clone();
        future.version = MODEL_FORMAT_VERSION + 7;
        let json = future.to_json().unwrap();
        assert!(matches!(
            HeapModel::from_json(&json),
            Err(HeapMdError::Corrupt { .. })
        ));

        // NaN bound (serializes as null → parses back as NaN).
        let mut nan = model.clone();
        nan.stable[0].min = f64::NAN;
        assert!(matches!(
            HeapModel::from_json(&nan.to_json().unwrap()),
            Err(HeapMdError::Corrupt { .. })
        ));

        // Inverted range.
        let mut inv = model.clone();
        inv.stable[0].min = 99.0;
        inv.stable[0].max = 1.0;
        assert!(matches!(inv.validate(), Err(HeapMdError::Corrupt { .. })));

        // Unknown metric kind in the serialized form.
        let bad_kind = model
            .to_json()
            .unwrap()
            .replace("\"Roots\"", "\"NotAMetric\"");
        assert!(matches!(
            HeapModel::from_json(&bad_kind),
            Err(HeapMdError::Corrupt { .. })
        ));

        // Truncated JSON.
        let json = model.to_json().unwrap();
        assert!(matches!(
            HeapModel::from_json(&json[..json.len() / 2]),
            Err(HeapMdError::Corrupt { .. })
        ));
    }

    #[test]
    fn versionless_legacy_model_still_loads() {
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("r", 25.0, 30));
        let model = b.build().model;
        // Strip the version field the way a pre-versioning file lacks it.
        let json = model.to_json().unwrap().replacen("\"version\": 2,", "", 1);
        let back = HeapModel::from_json(&json).unwrap();
        assert_eq!(back.version, 0);
        assert_eq!(back.stable, model.stable);
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let mut b = ModelBuilder::new(settings());
        b.add_run(&flat_report("r", 25.0, 30));
        let model = b.build().model;
        let dir = std::env::temp_dir().join("heapmd-model-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        model.save(&path).unwrap(); // overwrite path exercised too
        assert!(HeapModel::load(&path).is_ok());
        assert!(!dir.join("model.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stable_metric_contains_and_width() {
        let sm = StableMetric {
            kind: MetricKind::Leaves,
            min: 10.0,
            max: 20.0,
            avg_change: 0.0,
            std_change: 1.0,
            stable_runs: 3,
            total_runs: 5,
        };
        assert_eq!(sm.width(), 10.0);
        assert!(sm.contains(10.0));
        assert!(sm.contains(20.0));
        assert!(!sm.contains(20.01));
        assert!(!sm.contains(9.99));
    }

    fn phase_report(run: &str, lo: f64, hi: f64, n: usize) -> MetricReport {
        // First half at `lo`, second half at `hi`: locally stable.
        let samples = (0..n)
            .map(|i| {
                let v = if i < n / 2 { lo } else { hi };
                MetricSample {
                    seq: i,
                    fn_entries: i as u64,
                    tick: i as u64,
                    metrics: MetricVector::from_array([v; METRIC_COUNT]),
                    nodes: 10,
                    edges: 5,
                    dangling: 0,
                    candidates: None,
                }
            })
            .collect();
        MetricReport::new(run, samples)
    }

    #[test]
    fn locally_stable_metrics_get_phase_bands() {
        let mut b = ModelBuilder::new(settings()).locally_stable(true);
        for i in 0..4 {
            b.add_run(&phase_report(
                &format!("r{i}"),
                10.0 + i as f64 * 0.1,
                30.0,
                40,
            ));
        }
        let model = b.build().model;
        // The step makes every metric locally (not globally) stable.
        assert!(model.stable.is_empty());
        assert_eq!(model.locally_stable.len(), METRIC_COUNT);
        let lm = &model.locally_stable[0];
        assert_eq!(lm.ranges.len(), 2, "two phase bands: {:?}", lm.ranges);
        assert!(lm.contains(10.2, 0.5));
        assert!(lm.contains(30.0, 0.5));
        assert!(!lm.contains(20.0, 0.5), "between phases is out of band");
    }

    #[test]
    fn local_modelling_is_opt_in() {
        let mut b = ModelBuilder::new(settings());
        for i in 0..4 {
            b.add_run(&phase_report(&format!("r{i}"), 10.0, 30.0 + i as f64, 40));
        }
        assert!(b.build().model.locally_stable.is_empty());
    }

    #[test]
    fn parallel_add_runs_matches_sequential() {
        let reports: Vec<MetricReport> = (0..7)
            .map(|i| {
                if i % 2 == 0 {
                    flat_report(&format!("r{i}"), 20.0 + i as f64, 30)
                } else {
                    noisy_report(&format!("r{i}"), 30)
                }
            })
            .collect();
        let mut seq = ModelBuilder::new(settings()).locally_stable(true);
        for r in &reports {
            seq.add_run(r);
        }
        for threads in [1, 2, 8, 32] {
            let mut par = ModelBuilder::new(settings()).locally_stable(true);
            par.add_runs_parallel(&reports, threads);
            assert_eq!(par.runs, seq.runs, "{threads} threads");
            assert_eq!(par.series, seq.series, "{threads} threads");
            assert_eq!(par.build(), seq.build(), "{threads} threads");
        }
    }

    #[test]
    fn zero_runs_builds_empty_model() {
        let out = ModelBuilder::new(settings()).build();
        assert_eq!(out.model.training_runs, 0);
        assert!(out.model.stable.is_empty());
        assert!(out.flagged_runs.is_empty());
    }
}
