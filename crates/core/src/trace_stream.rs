//! Crash-safe streaming trace format.
//!
//! The original [`Trace`] persistence serialized the whole event vector
//! in one shot — an all-or-nothing artifact that dies with the process
//! it is meant to outlive. This module replaces it with a *streaming*
//! format written incrementally, one length-framed, checksummed record
//! per line, so a trace survives the very crash HeapMD exists to
//! diagnose: whatever was flushed before the process died is
//! recoverable.
//!
//! # Wire format
//!
//! One record per line:
//!
//! ```text
//! HMDT1 <len:08x> <crc:08x> <payload-json>\n
//! ```
//!
//! * `HMDT1` — magic + format version.
//! * `len` — byte length of the JSON payload, in fixed-width hex.
//! * `crc` — IEEE CRC-32 of the JSON payload bytes.
//! * payload — one externally tagged [`StreamRecord`].
//!
//! A healthy stream is `Header`, zero or more `Functions`/`Event`
//! records, then a final `End { events }` trailer whose count lets a
//! reader distinguish clean shutdown from truncation.
//!
//! # Salvage mode
//!
//! [`TraceReader::salvage`] recovers the longest valid prefix of a
//! damaged stream: parsing stops at the first record whose framing,
//! checksum, or JSON fails to validate, and everything before it is
//! returned together with [`SalvageStats`] describing what was lost.
//! Corruption statistics are also reported through `heapmd-obs`
//! (`heapmd_trace_salvage_*` counters and a `trace_salvage` event).

use crate::error::HeapMdError;
use crate::persist::crc32;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use sim_heap::HeapEvent;
use std::io::{Read, Write};
use std::path::Path;

/// Magic prefix identifying a version-1 streaming trace record.
pub const STREAM_MAGIC: &str = "HMDT1";

/// One record in the stream. Externally tagged, struct variants only
/// (the vendored serde stand-in round-trips those faithfully).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum StreamRecord {
    /// First record of every stream.
    Header {
        /// Stream format version (1 for this module).
        format: u32,
    },
    /// One instrumentation event.
    Event {
        /// The recorded event.
        ev: HeapEvent,
    },
    /// The traced run's interned function-name table.
    Functions {
        /// Names indexed by function id.
        names: Vec<String>,
    },
    /// Clean end-of-stream trailer.
    End {
        /// Number of `Event` records that should precede this trailer.
        events: u64,
    },
}

/// Incremental writer producing the length-framed record stream.
///
/// Generic over `io::Write`, so traces can stream to a file, a socket,
/// a test buffer, or a fault-injecting wrapper. Each record is written
/// with [`Write::write_all`]; callers control buffering and flushing
/// policy through the inner writer.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    events: u64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a stream on `inner`, writing the header record.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] if the header cannot be written.
    pub fn new(inner: W) -> Result<Self, HeapMdError> {
        let mut w = TraceWriter {
            inner,
            events: 0,
            finished: false,
        };
        w.write_record(&StreamRecord::Header { format: 1 })?;
        Ok(w)
    }

    /// Appends one event record.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn write_event(&mut self, ev: &HeapEvent) -> Result<(), HeapMdError> {
        self.write_record(&StreamRecord::Event { ev: *ev })?;
        self.events += 1;
        Ok(())
    }

    /// Appends the function-name table (index = id). May be written at
    /// any point; the last table in the stream wins.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn write_functions(&mut self, names: &[String]) -> Result<(), HeapMdError> {
        self.write_record(&StreamRecord::Functions {
            names: names.to_vec(),
        })
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Writes the end-of-stream trailer, flushes, and returns the inner
    /// writer.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn finish(mut self) -> Result<W, HeapMdError> {
        let trailer = StreamRecord::End {
            events: self.events,
        };
        self.write_record(&trailer)?;
        self.finished = true;
        self.inner.flush()?;
        Ok(self.inner)
    }

    /// Flushes the inner writer without ending the stream.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn flush(&mut self) -> Result<(), HeapMdError> {
        self.inner.flush()?;
        Ok(())
    }

    fn write_record(&mut self, record: &StreamRecord) -> Result<(), HeapMdError> {
        let payload = serde_json::to_string(record)?;
        let line = frame_record(&payload);
        self.inner.write_all(line.as_bytes())?;
        heapmd_obs::count!("heapmd_trace_records_written_total");
        Ok(())
    }
}

/// Frames one payload into a full record line (exposed to the test
/// suites so corpus files can be crafted without a writer).
pub fn frame_record(payload: &str) -> String {
    frame_with_magic(STREAM_MAGIC, payload)
}

/// Frames one payload under an arbitrary magic. Shared by the trace
/// stream (`HMDT1`) and incident bundles (`HMDI1`), which use the same
/// length + CRC framing with different record vocabularies.
pub(crate) fn frame_with_magic(magic: &str, payload: &str) -> String {
    format!(
        "{magic} {:08x} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes()),
    )
}

/// Parses one framed payload under `magic` starting at `pos`; returns
/// the payload text and the offset just past the record's newline, or a
/// description of the damage. Validation is strict: exact magic, single
/// spaces, fixed-width lowercase hex, matching CRC, trailing newline,
/// UTF-8 payload.
pub(crate) fn parse_frame<'a>(
    magic: &str,
    bytes: &'a [u8],
    pos: usize,
) -> Result<(&'a str, usize), String> {
    let prefix_len = magic.len() + 1 + 8 + 1 + 8 + 1;
    let rest = &bytes[pos..];
    if rest.len() < prefix_len {
        return Err("truncated record prefix".into());
    }
    let prefix = &rest[..prefix_len];
    let prefix = std::str::from_utf8(prefix).map_err(|_| "record prefix is not UTF-8")?;
    let found_magic = &prefix[..magic.len()];
    if found_magic != magic {
        return Err(format!("bad magic {found_magic:?}"));
    }
    let len_hex = &prefix[magic.len() + 1..magic.len() + 9];
    let crc_hex = &prefix[magic.len() + 10..magic.len() + 18];
    if prefix.as_bytes()[magic.len()] != b' '
        || prefix.as_bytes()[magic.len() + 9] != b' '
        || prefix.as_bytes()[prefix_len - 1] != b' '
    {
        return Err("malformed record prefix".into());
    }
    // The writer emits lowercase hex only; `from_str_radix` would also
    // accept uppercase (and a leading `+`), which would let some
    // single-bit flips in the prefix pass undetected.
    let strict_hex = |s: &str| {
        s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    };
    if !strict_hex(len_hex) || !strict_hex(crc_hex) {
        return Err("malformed record prefix".into());
    }
    let len = usize::from_str_radix(len_hex, 16).map_err(|_| "unparsable length field")?;
    let declared_crc = u32::from_str_radix(crc_hex, 16).map_err(|_| "unparsable CRC field")?;
    let payload_start = prefix_len;
    let payload_end = payload_start
        .checked_add(len)
        .ok_or("length field overflow")?;
    if payload_end + 1 > rest.len() {
        return Err("record truncated mid-payload".into());
    }
    if rest[payload_end] != b'\n' {
        return Err("missing record terminator".into());
    }
    let payload = &rest[payload_start..payload_end];
    let actual_crc = crc32(payload);
    if actual_crc != declared_crc {
        return Err(format!(
            "checksum mismatch: declared {declared_crc:08x}, computed {actual_crc:08x}"
        ));
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8")?;
    Ok((payload, pos + payload_end + 1))
}

/// What a salvage pass recovered, and what it had to give up.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageStats {
    /// Valid records consumed (header and trailer included).
    pub records: u64,
    /// Events recovered.
    pub events: u64,
    /// Bytes of the stream covered by valid records.
    pub valid_bytes: u64,
    /// Total bytes in the stream.
    pub total_bytes: u64,
    /// `true` when the stream ended with a matching `End` trailer and
    /// no trailing garbage — i.e. nothing was lost.
    pub complete: bool,
    /// Byte offset and description of the first corruption, when the
    /// stream was damaged or truncated.
    pub corruption: Option<(u64, String)>,
}

/// Reader for the streaming format, in strict or salvage mode.
pub struct TraceReader;

impl TraceReader {
    /// Strictly reads a complete, undamaged stream.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] on read failure and
    /// [`HeapMdError::Corrupt`] (with the byte offset of the damage) on
    /// any framing, checksum, or structural violation — including a
    /// missing or miscounting `End` trailer.
    pub fn strict(reader: impl Read) -> Result<Trace, HeapMdError> {
        let (trace, stats) = Self::salvage_quiet(reader)?;
        if let Some((offset, reason)) = stats.corruption {
            return Err(HeapMdError::Corrupt { offset, reason });
        }
        if !stats.complete {
            return Err(HeapMdError::corrupt(
                stats.valid_bytes,
                "stream truncated before End trailer",
            ));
        }
        Ok(trace)
    }

    /// Recovers the longest valid prefix of a possibly damaged stream,
    /// reporting what was salvaged and what was lost through
    /// `heapmd-obs`.
    ///
    /// # Errors
    ///
    /// Only [`HeapMdError::Io`] — corruption never fails a salvage,
    /// it merely bounds what is recovered.
    pub fn salvage(reader: impl Read) -> Result<(Trace, SalvageStats), HeapMdError> {
        let (trace, stats) = Self::salvage_quiet(reader)?;
        heapmd_obs::count!("heapmd_trace_salvage_runs_total");
        heapmd_obs::count!("heapmd_trace_salvaged_events_total", stats.events);
        if !stats.complete {
            heapmd_obs::count!("heapmd_trace_salvage_incomplete_total");
            heapmd_obs::count!(
                "heapmd_trace_salvage_lost_bytes_total",
                stats.total_bytes - stats.valid_bytes
            );
        }
        heapmd_obs::export::emit_event("trace_salvage", |o| {
            o.field_u64("records", stats.records)
                .field_u64("events", stats.events)
                .field_u64("valid_bytes", stats.valid_bytes)
                .field_u64("total_bytes", stats.total_bytes)
                .field_bool("complete", stats.complete);
            if let Some((offset, reason)) = &stats.corruption {
                o.field_u64("corrupt_at", *offset)
                    .field_str("reason", reason);
            }
        });
        Ok((trace, stats))
    }

    /// The shared parse: salvage semantics, no obs reporting.
    fn salvage_quiet(mut reader: impl Read) -> Result<(Trace, SalvageStats), HeapMdError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(parse_stream(&bytes))
    }
}

/// Parses as many valid records as possible from the front of `bytes`.
fn parse_stream(bytes: &[u8]) -> (Trace, SalvageStats) {
    let mut events: Vec<HeapEvent> = Vec::new();
    let mut functions: Vec<String> = Vec::new();
    let mut pos: usize = 0;
    let mut records: u64 = 0;
    let mut complete = false;
    let mut corruption: Option<(u64, String)> = None;
    let mut saw_header = false;

    while pos < bytes.len() {
        match parse_record(bytes, pos) {
            Ok((record, next)) => {
                records += 1;
                pos = next;
                match record {
                    StreamRecord::Header { format } => {
                        if format != 1 {
                            records -= 1;
                            corruption =
                                Some((pos as u64, format!("unsupported stream format {format}")));
                            break;
                        }
                        saw_header = true;
                    }
                    StreamRecord::Event { ev } => events.push(ev),
                    StreamRecord::Functions { names } => functions = names,
                    StreamRecord::End { events: declared } => {
                        if declared != events.len() as u64 {
                            corruption = Some((
                                pos as u64,
                                format!(
                                    "End trailer declares {declared} events, stream carries {}",
                                    events.len()
                                ),
                            ));
                        } else if pos != bytes.len() {
                            corruption =
                                Some((pos as u64, "trailing bytes after End trailer".into()));
                        } else {
                            complete = true;
                        }
                        break;
                    }
                }
            }
            Err(reason) => {
                corruption = Some((pos as u64, reason));
                break;
            }
        }
    }
    if !saw_header && corruption.is_none() && !complete {
        // Empty input (or damage before the header parsed).
        corruption = Some((0, "missing stream header".into()));
    }

    let mut trace = Trace::new();
    for ev in events {
        trace.push(ev);
    }
    let event_count = trace.len() as u64;
    trace.set_functions(functions);
    (
        trace,
        SalvageStats {
            records,
            events: event_count,
            valid_bytes: pos as u64,
            total_bytes: bytes.len() as u64,
            complete,
            corruption,
        },
    )
}

/// Parses one record starting at `pos`; returns the record and the
/// offset just past its newline, or a description of the damage.
fn parse_record(bytes: &[u8], pos: usize) -> Result<(StreamRecord, usize), String> {
    let (payload, next) = parse_frame(STREAM_MAGIC, bytes, pos)?;
    let record: StreamRecord =
        serde_json::from_str(payload).map_err(|e| format!("payload JSON: {e}"))?;
    Ok((record, next))
}

impl Trace {
    /// Writes the trace in the streaming format (header, functions,
    /// events, `End` trailer) to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn save_stream(&self, path: impl AsRef<Path>) -> Result<(), HeapMdError> {
        let file = std::fs::File::create(path)?;
        let mut w = TraceWriter::new(std::io::BufWriter::new(file))?;
        w.write_functions(self.functions())?;
        for ev in self.events() {
            w.write_event(ev)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Strictly reads a streaming-format trace from `path`.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] on read failure, [`HeapMdError::Corrupt`] on
    /// any damage (see [`TraceReader::strict`]).
    pub fn load_stream(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        TraceReader::strict(std::fs::File::open(path)?)
    }

    /// Salvages the longest valid prefix of a streaming-format trace
    /// from `path`, reporting corruption stats through `heapmd-obs`.
    ///
    /// # Errors
    ///
    /// Only [`HeapMdError::Io`]; damage is described in the returned
    /// [`SalvageStats`] instead of failing the read.
    pub fn salvage_stream(path: impl AsRef<Path>) -> Result<(Self, SalvageStats), HeapMdError> {
        TraceReader::salvage(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::{Addr, AllocSite, ObjectId};

    fn sample_events(n: usize) -> Vec<HeapEvent> {
        (0..n)
            .flat_map(|i| {
                [
                    HeapEvent::FnEnter { func: 0 },
                    HeapEvent::Alloc {
                        obj: ObjectId(i as u64),
                        addr: Addr::new(0x1000 + 16 * i as u64),
                        size: 16,
                        site: AllocSite(0),
                    },
                    HeapEvent::FnExit { func: 0 },
                ]
            })
            .collect()
    }

    fn write_stream(events: &[HeapEvent], names: &[String]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_functions(names).unwrap();
        for ev in events {
            w.write_event(ev).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn stream_round_trips() {
        let events = sample_events(10);
        let names = vec!["main".to_string(), "work".to_string()];
        let bytes = write_stream(&events, &names);
        let trace = TraceReader::strict(&bytes[..]).unwrap();
        assert_eq!(trace.events(), &events[..]);
        assert_eq!(trace.functions(), &names[..]);
    }

    #[test]
    fn empty_stream_round_trips() {
        let bytes = write_stream(&[], &[]);
        let trace = TraceReader::strict(&bytes[..]).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn truncated_stream_salvages_prefix_and_fails_strict() {
        let events = sample_events(20);
        let bytes = write_stream(&events, &[]);
        // Chop the stream mid-way: strict errors, salvage recovers.
        let cut = bytes.len() * 2 / 3;
        let damaged = &bytes[..cut];
        assert!(matches!(
            TraceReader::strict(damaged),
            Err(HeapMdError::Corrupt { .. })
        ));
        let (trace, stats) = TraceReader::salvage(damaged).unwrap();
        assert!(!stats.complete);
        assert!(stats.corruption.is_some());
        assert!(trace.len() < events.len());
        assert_eq!(trace.events(), &events[..trace.len()]);
        assert!(stats.valid_bytes <= cut as u64);
    }

    #[test]
    fn bit_flip_is_caught_by_checksum() {
        let events = sample_events(8);
        let mut bytes = write_stream(&events, &[]);
        // Flip one payload bit in the middle of the stream.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let (trace, stats) = TraceReader::salvage(&bytes[..]).unwrap();
        assert!(!stats.complete);
        let (_, reason) = stats.corruption.unwrap();
        assert!(
            reason.contains("checksum mismatch")
                || reason.contains("payload JSON")
                || reason.contains("malformed")
                || reason.contains("bad magic")
                || reason.contains("unparsable"),
            "unexpected reason: {reason}"
        );
        assert!(trace.len() < events.len());
        assert_eq!(trace.events(), &events[..trace.len()]);
    }

    #[test]
    fn miscounting_trailer_is_corruption() {
        let payloads = [
            serde_json::to_string(&StreamRecord::Header { format: 1 }).unwrap(),
            serde_json::to_string(&StreamRecord::Event {
                ev: HeapEvent::FnEnter { func: 0 },
            })
            .unwrap(),
            serde_json::to_string(&StreamRecord::End { events: 5 }).unwrap(),
        ];
        let stream: String = payloads.iter().map(|p| frame_record(p)).collect();
        assert!(matches!(
            TraceReader::strict(stream.as_bytes()),
            Err(HeapMdError::Corrupt { .. })
        ));
        let (trace, stats) = TraceReader::salvage(stream.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1, "events before the bad trailer survive");
        assert!(!stats.complete);
    }

    #[test]
    fn garbage_input_salvages_to_empty() {
        let (trace, stats) = TraceReader::salvage(&b"not a trace at all\n"[..]).unwrap();
        assert!(trace.is_empty());
        assert!(!stats.complete);
        assert_eq!(stats.corruption.as_ref().unwrap().0, 0);
    }

    #[test]
    fn future_format_version_is_rejected() {
        let payloads = [
            serde_json::to_string(&StreamRecord::Header { format: 9 }).unwrap(),
            serde_json::to_string(&StreamRecord::End { events: 0 }).unwrap(),
        ];
        let stream: String = payloads.iter().map(|p| frame_record(p)).collect();
        let (_, stats) = TraceReader::salvage(stream.as_bytes()).unwrap();
        let (_, reason) = stats.corruption.unwrap();
        assert!(reason.contains("unsupported stream format"));
    }

    #[test]
    fn save_and_load_stream_files_round_trip() {
        let events = sample_events(6);
        let mut trace = Trace::new();
        for ev in &events {
            trace.push(*ev);
        }
        trace.set_functions(vec!["alpha".into()]);
        let dir = std::env::temp_dir().join("heapmd-trace-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hmdt");
        trace.save_stream(&path).unwrap();
        let back = Trace::load_stream(&path).unwrap();
        assert_eq!(back, trace);
        let (salvaged, stats) = Trace::salvage_stream(&path).unwrap();
        assert_eq!(salvaged, trace);
        assert!(stats.complete);
        std::fs::remove_file(&path).ok();
    }
}
