//! Crate-level error type.

use sim_heap::HeapError;
use std::error::Error;
use std::fmt;

/// Errors produced by HeapMD's configuration, model I/O, and replay
/// machinery.
#[derive(Debug)]
pub enum HeapMdError {
    /// A settings combination failed validation.
    InvalidSettings(String),
    /// An illegal heap operation surfaced through [`crate::Process`].
    Heap(HeapError),
    /// A model or trace failed to (de)serialize.
    Serde(serde_json::Error),
    /// A model or trace file could not be read or written.
    Io(std::io::Error),
    /// Model construction was asked to build from zero training runs, or
    /// a replay referenced state that does not exist.
    InvalidInput(String),
    /// A persisted artifact (trace stream, model, checkpoint) failed
    /// structural validation: bad framing, checksum mismatch, an
    /// unsupported version, or semantically impossible contents
    /// (NaN bounds, `min > max`, …).
    Corrupt {
        /// Byte offset into the artifact where corruption was detected
        /// (0 when the damage is not positional, e.g. a bad field).
        offset: u64,
        /// Human-readable description of what failed to validate.
        reason: String,
    },
    /// A training checkpoint could not be written, read, or applied.
    Checkpoint(String),
}

impl HeapMdError {
    /// Convenience constructor for [`HeapMdError::Corrupt`].
    pub fn corrupt(offset: u64, reason: impl Into<String>) -> Self {
        HeapMdError::Corrupt {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for HeapMdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapMdError::InvalidSettings(msg) => write!(f, "invalid settings: {msg}"),
            HeapMdError::Heap(e) => write!(f, "heap error: {e}"),
            HeapMdError::Serde(e) => write!(f, "serialization error: {e}"),
            HeapMdError::Io(e) => write!(f, "io error: {e}"),
            HeapMdError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            HeapMdError::Corrupt { offset, reason } => {
                write!(f, "corrupt artifact at byte {offset}: {reason}")
            }
            HeapMdError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl Error for HeapMdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeapMdError::Heap(e) => Some(e),
            HeapMdError::Serde(e) => Some(e),
            HeapMdError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for HeapMdError {
    fn from(e: HeapError) -> Self {
        HeapMdError::Heap(e)
    }
}

impl From<serde_json::Error> for HeapMdError {
    fn from(e: serde_json::Error) -> Self {
        HeapMdError::Serde(e)
    }
}

impl From<std::io::Error> for HeapMdError {
    fn from(e: std::io::Error) -> Self {
        HeapMdError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = HeapMdError::InvalidSettings("frq must be positive".into());
        assert_eq!(e.to_string(), "invalid settings: frq must be positive");
        let e: HeapMdError = HeapError::NullDeref.into();
        assert_eq!(e.to_string(), "heap error: null dereference");
    }

    #[test]
    fn corrupt_and_checkpoint_display() {
        let e = HeapMdError::corrupt(42, "checksum mismatch");
        assert_eq!(
            e.to_string(),
            "corrupt artifact at byte 42: checksum mismatch"
        );
        assert!(e.source().is_none());
        let e = HeapMdError::Checkpoint("version 9 unsupported".into());
        assert_eq!(e.to_string(), "checkpoint error: version 9 unsupported");
    }

    #[test]
    fn sources_are_chained() {
        let e: HeapMdError = HeapError::NullDeref.into();
        assert!(e.source().is_some());
        let e = HeapMdError::InvalidInput("no runs".into());
        assert!(e.source().is_none());
    }
}
