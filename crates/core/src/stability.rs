//! Stability classification of metrics (paper §2.1, "metric
//! summarizer").

use crate::fluctuation::FluctuationStats;
use crate::settings::Settings;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three-way classification of a metric within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StabilityClass {
    /// Relatively constant throughout the (trimmed) run: mean change and
    /// standard deviation of change both within thresholds.
    GloballyStable,
    /// Constant within phases but stepping between them: the fluctuation
    /// plot is flat near zero except for occasional spikes — mean within
    /// threshold and typical (median) change small, but the spikes push
    /// the standard deviation over its threshold.
    LocallyStable,
    /// Neither: large mean drift or broadly noisy.
    Unstable,
}

impl StabilityClass {
    /// Globally stable metrics are also locally stable (paper §2.1).
    pub fn is_locally_stable(self) -> bool {
        matches!(
            self,
            StabilityClass::GloballyStable | StabilityClass::LocallyStable
        )
    }
}

impl fmt::Display for StabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StabilityClass::GloballyStable => "globally-stable",
            StabilityClass::LocallyStable => "locally-stable",
            StabilityClass::Unstable => "unstable",
        })
    }
}

/// Classifies one metric's fluctuation statistics for one run.
///
/// Follows the paper: *globally stable* iff `|mean| ≤` the average-change
/// threshold (±1 %) **and** `std_dev <` the standard-deviation threshold
/// (5). A metric that fails those tests but is flat in the typical step
/// (median absolute change within the average-change threshold) is
/// *locally stable* — flat with occasional phase-change spikes. Runs
/// with fewer than `settings.min_samples` observations are
/// conservatively unstable (too little evidence).
///
/// # Example
///
/// ```
/// use heapmd::{classify, FluctuationStats, Settings, StabilityClass};
///
/// let s = Settings::default();
/// let flat = FluctuationStats::from_changes(&[0.1, -0.2, 0.0, 0.1, -0.1]);
/// assert_eq!(classify(&flat, &s), StabilityClass::GloballyStable);
/// ```
pub fn classify(stats: &FluctuationStats, settings: &Settings) -> StabilityClass {
    if stats.n + 1 < settings.min_samples {
        return StabilityClass::Unstable;
    }
    let mean_ok = stats.mean.abs() <= settings.avg_change_threshold;
    let std_ok = stats.std_dev < settings.std_change_threshold;
    if mean_ok && std_ok {
        StabilityClass::GloballyStable
    } else if stats.median_abs <= settings.avg_change_threshold {
        // Flat in the typical step; the occasional phase-change spike
        // inflates the mean and the standard deviation, so neither is
        // used here.
        StabilityClass::LocallyStable
    } else {
        StabilityClass::Unstable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluctuation::percent_changes;

    fn stats(changes: &[f64]) -> FluctuationStats {
        FluctuationStats::from_changes(changes)
    }

    #[test]
    fn flat_series_is_globally_stable() {
        let s = Settings::default();
        assert_eq!(
            classify(&stats(&[0.0; 20]), &s),
            StabilityClass::GloballyStable
        );
    }

    #[test]
    fn vpr_fig6_numbers_classify_as_in_paper() {
        // Paper Figure 6: Outdeg=1 has mean −0.10/−0.02 and σ 1.72/1.79 →
        // stable; In=Out on Input1 has mean 2.47, σ 24.80 → unstable.
        let s = Settings::default();
        let stable = FluctuationStats {
            mean: -0.10,
            std_dev: 1.72,
            median_abs: 0.4,
            n: 30,
        };
        assert_eq!(classify(&stable, &s), StabilityClass::GloballyStable);
        let unstable = FluctuationStats {
            mean: 2.47,
            std_dev: 24.80,
            median_abs: 8.0,
            n: 30,
        };
        assert_eq!(classify(&unstable, &s), StabilityClass::Unstable);
        // In=Out on Input2: mean −0.18, σ 5.27 → fails σ threshold. Its
        // typical step decides local vs unstable.
        let spiky = FluctuationStats {
            mean: -0.18,
            std_dev: 5.27,
            median_abs: 0.3,
            n: 30,
        };
        assert_eq!(classify(&spiky, &s), StabilityClass::LocallyStable);
    }

    #[test]
    fn phase_steps_are_locally_stable() {
        let s = Settings::default();
        // Flat at 10, one jump to 20, flat again: a classic phase change.
        let mut series = vec![10.0; 15];
        series.extend(vec![20.0; 15]);
        let st = stats(&percent_changes(&series));
        assert_eq!(classify(&st, &s), StabilityClass::LocallyStable);
    }

    #[test]
    fn drifting_series_is_unstable() {
        let s = Settings::default();
        // +3% every step: mean change breaches ±1%.
        let series: Vec<f64> = (0..30).map(|i| 10.0 * 1.03f64.powi(i)).collect();
        let st = stats(&percent_changes(&series));
        assert_eq!(classify(&st, &s), StabilityClass::Unstable);
    }

    #[test]
    fn noisy_series_is_unstable() {
        let s = Settings::default();
        // alternating ±8%: mean ~0 but both σ and median |change| large.
        let changes: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 8.0 } else { -8.0 })
            .collect();
        assert_eq!(classify(&stats(&changes), &s), StabilityClass::Unstable);
    }

    #[test]
    fn too_few_samples_is_unstable() {
        let s = Settings::default(); // min_samples = 5
        assert_eq!(classify(&stats(&[0.0, 0.0]), &s), StabilityClass::Unstable);
        assert_eq!(
            classify(&stats(&[0.0, 0.0, 0.0, 0.0]), &s),
            StabilityClass::GloballyStable,
            "5 samples → 4 changes suffices"
        );
    }

    #[test]
    fn globally_stable_is_locally_stable_too() {
        assert!(StabilityClass::GloballyStable.is_locally_stable());
        assert!(StabilityClass::LocallyStable.is_locally_stable());
        assert!(!StabilityClass::Unstable.is_locally_stable());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            StabilityClass::GloballyStable.to_string(),
            "globally-stable"
        );
        assert_eq!(StabilityClass::Unstable.to_string(), "unstable");
    }
}
