//! Per-run metric reports.

use crate::settings::Settings;
use heap_graph::{CandidateKind, CandidateVector, MetricKind, MetricVector};
use serde::{Deserialize, Serialize};

/// The metric values observed at one metric computation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// 0-based index of the sample within its run.
    pub seq: usize,
    /// Cumulative function entries when the sample was taken.
    pub fn_entries: u64,
    /// Heap logical clock when the sample was taken.
    pub tick: u64,
    /// The seven paper metrics.
    pub metrics: MetricVector,
    /// Live vertexes at the sample.
    pub nodes: u64,
    /// Resolved edges at the sample.
    pub edges: u64,
    /// Dangling pointer slots at the sample.
    pub dangling: u64,
    /// The full candidate metric family at the sample, when the
    /// producer computed it (samples replayed from older artifacts
    /// carry `None`). The first seven candidates duplicate `metrics`
    /// bit-for-bit; the rest are the widened family.
    #[serde(default)]
    pub candidates: Option<CandidateVector>,
}

impl MetricSample {
    /// Reads one candidate metric: from the stored candidate vector if
    /// present, falling back to the legacy seven for paper candidates.
    ///
    /// Returns `None` for an extended candidate on a sample that never
    /// computed the widened family.
    pub fn candidate(&self, kind: CandidateKind) -> Option<f64> {
        match (&self.candidates, kind.paper_kind()) {
            (Some(c), _) => Some(c.get(kind)),
            (None, Some(paper)) => Some(self.metrics.get(paper)),
            (None, None) => None,
        }
    }
}

/// One run's metric series — the "metric report" flowing from the
/// execution logger to the metric summarizer in Figure 2 of the paper.
///
/// # Example
///
/// ```
/// use heapmd::{MetricKind, Process, Settings};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(1).build()?);
/// for _ in 0..10 {
///     p.enter("tick");
///     p.malloc(16, "obj")?;
///     p.leave();
/// }
/// let report = p.finish("demo");
/// assert_eq!(report.len(), 10);
/// let leaves = report.series(MetricKind::Leaves);
/// // The first sample fires at the first function entry, before any
/// // allocation; from then on every object is an isolated leaf.
/// assert!(leaves[1..].iter().all(|&v| v == 100.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricReport {
    /// Label of the run (program + input identifier).
    pub run: String,
    /// Samples in chronological order.
    pub samples: Vec<MetricSample>,
    /// Effective store-sampling rate the run was observed under, in
    /// `(0, 1]`. `1.0` (the default, and what pre-sampling artifacts
    /// deserialize to) means every store reached the heap graph; lower
    /// values record the measured kept/total ratio of a
    /// production-overhead sampled run, which calibration uses to widen
    /// ranges.
    #[serde(default = "default_sample_rate")]
    pub sample_rate: f64,
}

fn default_sample_rate() -> f64 {
    1.0
}

impl MetricReport {
    /// Creates a report from pre-collected samples (unsampled: rate 1).
    pub fn new(run: impl Into<String>, samples: Vec<MetricSample>) -> Self {
        MetricReport {
            run: run.into(),
            samples,
            sample_rate: 1.0,
        }
    }

    /// Creates a report observed under store sampling at `rate`.
    pub fn with_sample_rate(
        run: impl Into<String>,
        samples: Vec<MetricSample>,
        rate: f64,
    ) -> Self {
        MetricReport {
            run: run.into(),
            samples,
            sample_rate: rate,
        }
    }

    /// Number of metric computation points in the run.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The full value series of one metric, in sample order.
    pub fn series(&self, kind: MetricKind) -> Vec<f64> {
        self.samples.iter().map(|s| s.metrics.get(kind)).collect()
    }

    /// The samples with startup and shutdown trimmed per `settings`
    /// (first and last `trim_frac` of metric computation points).
    ///
    /// Short runs that would trim to nothing return an empty slice.
    pub fn trimmed(&self, settings: &Settings) -> &[MetricSample] {
        let n = self.samples.len();
        let k = settings.trim_count(n);
        if 2 * k >= n {
            return &[];
        }
        &self.samples[k..n - k]
    }

    /// The trimmed value series of one metric.
    pub fn trimmed_series(&self, kind: MetricKind, settings: &Settings) -> Vec<f64> {
        self.trimmed(settings)
            .iter()
            .map(|s| s.metrics.get(kind))
            .collect()
    }

    /// Minimum and maximum of a metric over the trimmed samples.
    ///
    /// Returns `None` when trimming leaves no samples.
    pub fn trimmed_range(&self, kind: MetricKind, settings: &Settings) -> Option<(f64, f64)> {
        let series = self.trimmed_series(kind, settings);
        if series.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in series {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heap_graph::METRIC_COUNT;

    fn sample(seq: usize, value: f64) -> MetricSample {
        MetricSample {
            seq,
            fn_entries: seq as u64,
            tick: seq as u64,
            metrics: MetricVector::from_array([value; METRIC_COUNT]),
            nodes: 1,
            edges: 0,
            dangling: 0,
            candidates: None,
        }
    }

    fn report(values: &[f64]) -> MetricReport {
        MetricReport::new(
            "t",
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| sample(i, v))
                .collect(),
        )
    }

    #[test]
    fn series_extracts_in_order() {
        let r = report(&[1.0, 2.0, 3.0]);
        assert_eq!(r.series(MetricKind::Roots), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn trimmed_drops_both_ends() {
        let s = Settings::default(); // 10% trim
        let values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let r = report(&values);
        let t = r.trimmed(&s);
        assert_eq!(t.len(), 16);
        assert_eq!(t.first().unwrap().seq, 2);
        assert_eq!(t.last().unwrap().seq, 17);
    }

    #[test]
    fn trimming_a_tiny_run_yields_all_or_nothing() {
        let s = Settings::default();
        let r = report(&[1.0, 2.0]);
        // trim_count(2) = 0 → everything kept.
        assert_eq!(r.trimmed(&s).len(), 2);
        let aggressive = Settings::builder().trim_frac(0.49).build().unwrap();
        assert_eq!(report(&[1.0, 2.0]).trimmed(&aggressive).len(), 2);
        assert_eq!(report(&[1.0, 2.0, 3.0]).trimmed(&aggressive).len(), 1);
    }

    #[test]
    fn trimmed_range_finds_extremes() {
        let s = Settings::builder().trim_frac(0.0).build().unwrap();
        let r = report(&[5.0, 1.0, 9.0, 4.0]);
        assert_eq!(r.trimmed_range(MetricKind::Leaves, &s), Some((1.0, 9.0)));
        let empty = MetricReport::new("e", vec![]);
        assert_eq!(empty.trimmed_range(MetricKind::Leaves, &s), None);
    }

    #[test]
    fn report_round_trips_json() {
        let r = report(&[1.5, 2.5]);
        let json = serde_json::to_string(&r).unwrap();
        let back: MetricReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
