//! Function-name interning and call-stack bookkeeping.
//!
//! HeapMD instruments function entry points (they are its metric
//! computation points) and logs call-stacks around range violations so
//! bug reports carry the responsible function. The simulation's
//! workloads announce entries/exits through [`crate::Process`], which
//! interns names here.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned function identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Bidirectional function-name intern table.
///
/// # Example
///
/// ```
/// use heapmd::FunctionTable;
///
/// let mut t = FunctionTable::new();
/// let a = t.intern("ColListFree");
/// assert_eq!(t.intern("ColListFree"), a, "idempotent");
/// assert_eq!(t.name(a), "ColListFree");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, FuncId>,
}

impl FunctionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FunctionTable::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> FuncId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = FuncId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<FuncId> {
        self.index.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: FuncId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders a stack of ids as human-readable names, outermost first.
    pub fn render_stack(&self, stack: &[FuncId]) -> Vec<String> {
        stack.iter().map(|&f| self.name(f).to_string()).collect()
    }

    /// Rebuilds the lookup index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FuncId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = FunctionTable::new();
        let a = t.intern("main");
        let b = t.intern("helper");
        assert_eq!(a, FuncId(0));
        assert_eq!(b, FuncId(1));
        assert_eq!(t.intern("main"), a);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = FunctionTable::new();
        assert_eq!(t.get("missing"), None);
        let id = t.intern("present");
        assert_eq!(t.get("present"), Some(id));
    }

    #[test]
    fn render_stack_outermost_first() {
        let mut t = FunctionTable::new();
        let main = t.intern("main");
        let inner = t.intern("inner");
        assert_eq!(t.render_stack(&[main, inner]), vec!["main", "inner"]);
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let mut t = FunctionTable::new();
        t.intern("a");
        t.intern("b");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: FunctionTable = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.get("b"), Some(FuncId(1)));
        assert_eq!(back.name(FuncId(0)), "a");
    }
}
