//! Fluctuation analysis: per-step percentage change of a metric series
//! (paper Figure 5) and its summary statistics (paper Figure 6).

use serde::{Deserialize, Serialize};

/// Denominator floor when computing percentage change from a value near
/// zero.
///
/// The paper plots `(y₂ − y₁)/y₁ × 100` between consecutive metric
/// computation points. Metrics are percentages in `[0, 100]` and do hit
/// exactly 0 (e.g. *mcf*'s roots metric has minimum 0 in Figure 7), so a
/// literal division would blow up; clamping the denominator keeps the
/// change finite while still registering a 0 → x move as large.
const DENOM_FLOOR: f64 = 0.1;

/// Computes the per-step percentage change series of `series`.
///
/// Output length is `series.len() − 1` (empty for shorter inputs). The
/// value at position `i` is the change from `series[i]` to
/// `series[i + 1]` as a percentage of `series[i]` (denominator clamped
/// away from zero; see the module docs).
///
/// # Example
///
/// ```
/// use heapmd::percent_changes;
///
/// let changes = percent_changes(&[10.0, 11.0, 11.0]);
/// assert_eq!(changes, vec![10.0, 0.0]);
/// ```
pub fn percent_changes(series: &[f64]) -> Vec<f64> {
    series
        .windows(2)
        .map(|w| {
            let (y1, y2) = (w[0], w[1]);
            if y1 == y2 {
                0.0
            } else {
                (y2 - y1) / y1.abs().max(DENOM_FLOOR) * 100.0
            }
        })
        .collect()
}

/// Summary statistics of a fluctuation series: the quantities the paper
/// thresholds to decide stability (mean within ±1 %, standard deviation
/// below 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluctuationStats {
    /// Mean per-step percentage change.
    pub mean: f64,
    /// Sample standard deviation of the per-step percentage change.
    pub std_dev: f64,
    /// Median of the absolute per-step percentage change (used to
    /// distinguish locally stable metrics: flat with occasional spikes).
    pub median_abs: f64,
    /// Number of change observations.
    pub n: usize,
}

impl FluctuationStats {
    /// Computes the statistics of a change series.
    ///
    /// An empty series yields all-zero statistics with `n = 0`; a
    /// singleton has `std_dev = 0`.
    pub fn from_changes(changes: &[f64]) -> Self {
        let n = changes.len();
        if n == 0 {
            return FluctuationStats {
                mean: 0.0,
                std_dev: 0.0,
                median_abs: 0.0,
                n: 0,
            };
        }
        let mean = changes.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = changes.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let mut abs: Vec<f64> = changes.iter().map(|c| c.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite changes"));
        let median_abs = if n % 2 == 1 {
            abs[n / 2]
        } else {
            (abs[n / 2 - 1] + abs[n / 2]) / 2.0
        };
        FluctuationStats {
            mean,
            std_dev,
            median_abs,
            n,
        }
    }

    /// Computes the statistics of a raw metric series (convenience:
    /// change series first, then stats).
    pub fn from_series(series: &[f64]) -> Self {
        FluctuationStats::from_changes(&percent_changes(series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_changes() {
        let c = percent_changes(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(c, vec![0.0; 3]);
        let s = FluctuationStats::from_changes(&c);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median_abs, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn change_formula_matches_paper() {
        // y1=20 → y2=22 is +10%.
        let c = percent_changes(&[20.0, 22.0, 11.0]);
        assert!((c[0] - 10.0).abs() < 1e-12);
        assert!((c[1] - (-50.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_is_clamped_not_infinite() {
        let c = percent_changes(&[0.0, 5.0]);
        assert!(c[0].is_finite());
        assert!(c[0] > 100.0, "0 → 5 registers as a large change");
        // 0 → 0 is no change.
        assert_eq!(percent_changes(&[0.0, 0.0]), vec![0.0]);
    }

    #[test]
    fn short_series_edge_cases() {
        assert!(percent_changes(&[]).is_empty());
        assert!(percent_changes(&[1.0]).is_empty());
        let s = FluctuationStats::from_changes(&[]);
        assert_eq!(s.n, 0);
        let s = FluctuationStats::from_changes(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median_abs, 3.0);
    }

    #[test]
    fn std_dev_is_sample_std() {
        let s = FluctuationStats::from_changes(&[1.0, -1.0, 1.0, -1.0]);
        assert_eq!(s.mean, 0.0);
        // sample variance = 4/3
        assert!((s.std_dev - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.median_abs, 1.0);
    }

    #[test]
    fn median_abs_even_and_odd() {
        let s = FluctuationStats::from_changes(&[1.0, -2.0, 3.0]);
        assert_eq!(s.median_abs, 2.0);
        let s = FluctuationStats::from_changes(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(s.median_abs, 2.5);
    }

    #[test]
    fn from_series_is_composition() {
        let series = [10.0, 12.0, 9.0, 9.0];
        assert_eq!(
            FluctuationStats::from_series(&series),
            FluctuationStats::from_changes(&percent_changes(&series))
        );
    }
}
