//! # heapmd — heap-based bug finding via anomaly detection
//!
//! A Rust reproduction of *HeapMD: Identifying Heap-based Bugs using
//! Anomaly Detection* (Chilimbi & Ganapathy, ASPLOS 2006).
//!
//! HeapMD observes that, in spite of the heap's evolving nature, several
//! degree-based properties of the **heap-graph** stay stable for a given
//! program. It exploits this in two phases:
//!
//! 1. **Model construction** ([`ModelBuilder`]): run the program on a
//!    training input set, sample the seven degree metrics at *metric
//!    computation points* (every `frq` function entries), classify each
//!    metric's stability from its fluctuation statistics, and record the
//!    `[min, max]` range of the globally stable metrics.
//! 2. **Execution checking** ([`AnomalyDetector`]): on other inputs or
//!    program versions, verify the stable metrics remain within their
//!    calibrated ranges; log call-stacks into a circular buffer whenever
//!    a metric approaches an extreme, and raise a [`BugReport`] when the
//!    range is violated.
//!
//! The mutator-facing entry point is [`Process`], which plays the role
//! of the instrumented binary + execution logger: workloads allocate,
//! free, and write pointers through it, and it keeps the
//! [`heap_graph::HeapGraph`] image, samples metrics, and fans events out
//! to attached [`Monitor`]s.
//!
//! # Quickstart
//!
//! ```
//! use heapmd::{ModelBuilder, Process, Settings};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let settings = Settings::builder().frq(10).build()?;
//!
//! // Train on two inputs of a toy "program" that builds linked lists.
//! let mut builder = ModelBuilder::new(settings.clone());
//! for input in 0..2 {
//!     let mut p = Process::new(settings.clone());
//!     let mut prev = None;
//!     for i in 0..400 {
//!         p.enter("build");
//!         let node = p.malloc(16, "node")?;
//!         if let Some(prev) = prev {
//!             p.write_ptr(node, prev)?; // node.next = prev
//!         }
//!         prev = Some(node);
//!         let _ = (input, i);
//!         p.leave();
//!     }
//!     builder.add_run(&p.finish(format!("train-{input}")));
//! }
//! let outcome = builder.build();
//! assert!(!outcome.model.stable_metrics().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bug;
mod callstack;
mod checkpoint;
mod detector;
mod error;
mod fluctuation;
mod incident;
mod model;
mod monitor;
mod online;
pub mod persist;
pub mod phase_model;
pub mod plot;
mod process;
mod report;
mod ringbuf;
pub mod run_rows;
pub mod serve;
mod settings;
mod shard_replay;
mod stability;
mod trace;
mod trace_codec;
mod trace_stream;
mod values;

pub use bug::{
    AnomalyKind, BugCategory, BugReport, DetectionClass, Direction, LogPhase, StackLogEntry,
};
pub use callstack::{FuncId, FunctionTable};
pub use checkpoint::{TrainCheckpoint, CHECKPOINT_FORMAT_VERSION};
pub use detector::{AnomalyDetector, CandidateFinding};
pub use error::HeapMdError;
pub use fluctuation::{percent_changes, FluctuationStats};
pub use incident::{
    BundleSalvageStats, DegreeSnapshot, IncidentBundle, IncidentLog, IncidentMeta, SeriesData,
    DEGREE_BUCKETS, INCIDENT_FORMAT_VERSION, INCIDENT_MAGIC,
};
pub use model::{
    sampling_widen, CandidateMetric, CandidateSummary, HeapModel, MetricSummary, ModelBuilder,
    ModelOutcome, StableMetric, MODEL_FORMAT_VERSION,
};
pub use monitor::{Monitor, MonitorCtx};
pub use online::OnlineLearner;
pub use phase_model::{merge_ranges, segment, LocalMetric, Plateau};
pub use process::Process;
pub use report::{MetricReport, MetricSample};
pub use ringbuf::CircularBuffer;
pub use serve::{
    connect_session, push_trace_resumable, Conn, Dialer, RetryPolicy, ServeConfig, ServeSummary,
    Server, SessionClient, SessionOptions, TenantOutcome, SERVE_PREAMBLE, SERVE_PREAMBLE_V2,
};
pub use settings::{Settings, SettingsBuilder};
pub use shard_replay::replay_binary_sharded;
pub use stability::{classify, StabilityClass};
pub use trace::{Trace, TraceCheckOutcome};
pub use trace_codec::{
    check_binary, check_binary_sharded, check_binary_sharded_sampled, check_paths_parallel,
    check_paths_parallel_sharded, check_traces_parallel, encode_sampling_meta, load_trace_auto,
    replay_binary, replay_binary_fused, replay_binary_fused_sampled, sniff_bytes, sniff_file,
    ArtifactKind, BinaryTraceImage, BinaryTraceReader, BinaryTraceWriter, BlockEntry, BlockIndex,
    StreamFormat, WireFrame, WireReader, BINARY_FORMAT_VERSION, BINARY_MAGIC, EVENTS_PER_BLOCK,
};
pub use trace_stream::{frame_record, SalvageStats, TraceReader, TraceWriter, STREAM_MAGIC};
pub use values::{LocationSummary, ValueProfile};

// Re-export the metric vocabulary so downstream crates only need `heapmd`.
pub use heap_graph::{
    CandidateKind, CandidateVector, DegreeDistribution, ExtendedMetrics, MetricKind, MetricVector,
    CANDIDATE_COUNT, METRIC_COUNT, TAIL_MIN_DEGREE,
};
pub use sim_heap::{Addr, AllocSite, HeapError, HeapEvent, ObjectId, NULL};

// Re-export the production-overhead sampling front end (see `swat`).
pub use swat::{SampledIngest, SamplerConfig, SamplingInfo};
