//! Periodic training checkpoints.
//!
//! Model construction consumes one training run at a time, so a long
//! `heapmd train` that dies (OOM-killed, SIGKILLed, power loss) used to
//! lose every run already summarized. A [`TrainCheckpoint`] captures
//! the [`ModelBuilder`]'s complete intermediate state — per-run
//! summaries, the optional locally-stable series, and the index of the
//! next training input — after each metric-computation (summarization)
//! point, written atomically so the file on disk is always a whole,
//! loadable checkpoint.
//!
//! Resuming from a checkpoint and finishing the remaining inputs
//! yields the same model as an uninterrupted run: summaries are pure
//! functions of each run's report, and the builder folds them in input
//! order. The chaos suite asserts this equivalence across a real
//! SIGKILL.

use crate::error::HeapMdError;
use crate::model::{CandidateSummary, ModelBuilder, RunSummary};
use crate::settings::Settings;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current checkpoint format version; future-versioned files are
/// rejected on load.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// A resumable snapshot of in-progress model construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Checkpoint format version (see [`CHECKPOINT_FORMAT_VERSION`]).
    #[serde(default)]
    pub version: u32,
    /// The program being modelled.
    pub program: String,
    /// Settings in force during training.
    pub settings: Settings,
    /// Whether locally-stable (phase band) modelling is on.
    pub include_local: bool,
    /// Per-run summaries accumulated so far.
    pub runs: Vec<RunSummary>,
    /// Trimmed per-metric series (parallel to `runs`; populated only
    /// when `include_local`).
    pub series: Vec<Option<Vec<Vec<f64>>>>,
    /// Whether widened candidate-family modelling is on. Absent in
    /// checkpoints from builds that predate the candidate family.
    #[serde(default)]
    pub include_candidates: bool,
    /// Per-run extended-candidate summaries (parallel to `runs` when
    /// candidate modelling is on; empty in legacy checkpoints).
    #[serde(default)]
    pub cand_runs: Vec<Option<Vec<CandidateSummary>>>,
    /// Minimum store-sampling rate over the runs summarized so far
    /// (1.0 when every run was exact; absent in legacy checkpoints).
    #[serde(default = "default_checkpoint_sample_rate")]
    pub min_sample_rate: f64,
    /// Index of the next training input to consume on resume.
    pub next_input: u64,
}

fn default_checkpoint_sample_rate() -> f64 {
    1.0
}

impl TrainCheckpoint {
    /// Structural validation: supported version and internally
    /// consistent run/series bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Checkpoint`] describing the violation.
    pub fn validate(&self) -> Result<(), HeapMdError> {
        if self.version > CHECKPOINT_FORMAT_VERSION {
            return Err(HeapMdError::Checkpoint(format!(
                "checkpoint format version {} is newer than supported {}",
                self.version, CHECKPOINT_FORMAT_VERSION
            )));
        }
        if self.runs.len() != self.series.len() {
            return Err(HeapMdError::Checkpoint(format!(
                "{} run summaries but {} series entries",
                self.runs.len(),
                self.series.len()
            )));
        }
        if !self.cand_runs.is_empty() && self.cand_runs.len() != self.runs.len() {
            return Err(HeapMdError::Checkpoint(format!(
                "{} run summaries but {} candidate entries",
                self.runs.len(),
                self.cand_runs.len()
            )));
        }
        if self.next_input < self.runs.len() as u64 {
            return Err(HeapMdError::Checkpoint(format!(
                "next_input {} is behind the {} runs already summarized",
                self.next_input,
                self.runs.len()
            )));
        }
        Ok(())
    }

    /// Writes the checkpoint atomically (write-to-temp, then rename),
    /// so a crash mid-checkpoint leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HeapMdError> {
        self.save_format(path, crate::StreamFormat::Jsonl)
    }

    /// Writes the checkpoint in the chosen on-disk format. JSONL keeps
    /// the historical bare-JSON document; binary wraps the same JSON
    /// payload in the `HMDB1` block container, adding a CRC-32 so a
    /// bit-flipped checkpoint is detected as [`HeapMdError::Corrupt`]
    /// instead of parsing into silently wrong state.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn save_format(
        &self,
        path: impl AsRef<Path>,
        format: crate::StreamFormat,
    ) -> Result<(), HeapMdError> {
        let json = serde_json::to_string(self)?;
        let bytes = match format {
            crate::StreamFormat::Jsonl => json.into_bytes(),
            crate::StreamFormat::Binary => {
                crate::trace_codec::encode_meta_container(json.as_bytes())
            }
        };
        crate::persist::write_atomic(path, &bytes)?;
        Ok(())
    }

    /// Reads and validates a checkpoint written by [`save`](Self::save)
    /// or [`save_format`](Self::save_format), auto-detecting the format
    /// by magic bytes.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] when unreadable, [`HeapMdError::Corrupt`]
    /// when the JSON or the binary container (CRC, framing) is damaged,
    /// [`HeapMdError::Checkpoint`] when it parses but fails validation.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        let bytes = std::fs::read(path)?;
        let text = if bytes.starts_with(crate::BINARY_MAGIC) {
            String::from_utf8(crate::trace_codec::decode_meta_container(&bytes)?)
                .map_err(|_| HeapMdError::corrupt(0, "checkpoint payload is not UTF-8"))?
        } else {
            String::from_utf8(bytes)
                .map_err(|_| HeapMdError::corrupt(0, "checkpoint is not UTF-8"))?
        };
        let cp: TrainCheckpoint = serde_json::from_str(&text)
            .map_err(|e| HeapMdError::corrupt(0, format!("checkpoint JSON: {e}")))?;
        cp.validate()?;
        Ok(cp)
    }
}

impl ModelBuilder {
    /// Snapshots the builder's state as a checkpoint claiming
    /// `next_input` as the resume point.
    pub fn checkpoint(&self, next_input: u64) -> TrainCheckpoint {
        TrainCheckpoint {
            version: CHECKPOINT_FORMAT_VERSION,
            program: self.program.clone(),
            settings: self.settings.clone(),
            include_local: self.include_local,
            runs: self.runs.clone(),
            series: self.series.clone(),
            include_candidates: self.include_candidates,
            cand_runs: self.cand_runs.clone(),
            min_sample_rate: self.min_sample_rate,
            next_input,
        }
    }

    /// Reconstructs a builder mid-training from a checkpoint, returning
    /// it with the input index to resume at.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Checkpoint`] when the checkpoint fails
    /// [`TrainCheckpoint::validate`], or when its settings would make
    /// the resumed half of training incompatible with the first half.
    pub fn from_checkpoint(cp: TrainCheckpoint) -> Result<(Self, u64), HeapMdError> {
        cp.validate()?;
        cp.settings
            .validate()
            .map_err(|e| HeapMdError::Checkpoint(format!("embedded settings invalid: {e}")))?;
        let next = cp.next_input;
        // Legacy checkpoints carry no candidate column; pad with `None`
        // so the builder's parallel-vector invariant holds.
        let mut cand_runs = cp.cand_runs;
        cand_runs.resize(cp.runs.len(), None);
        Ok((
            ModelBuilder {
                settings: cp.settings,
                program: cp.program,
                runs: cp.runs,
                include_local: cp.include_local,
                series: cp.series,
                include_candidates: cp.include_candidates,
                cand_runs,
                min_sample_rate: if cp.min_sample_rate.is_finite()
                    && cp.min_sample_rate > 0.0
                    && cp.min_sample_rate <= 1.0
                {
                    cp.min_sample_rate
                } else {
                    1.0
                },
            },
            next,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{MetricReport, MetricSample};
    use heap_graph::{MetricVector, METRIC_COUNT};

    fn report(run: &str, value: f64, n: usize) -> MetricReport {
        let samples = (0..n)
            .map(|i| MetricSample {
                seq: i,
                fn_entries: i as u64,
                tick: i as u64,
                metrics: MetricVector::from_array([value; METRIC_COUNT]),
                nodes: 10,
                edges: 5,
                dangling: 0,
                candidates: None,
            })
            .collect();
        MetricReport::new(run, samples)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("heapmd-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn resumed_training_matches_uninterrupted() {
        let settings = Settings::default();
        let reports: Vec<MetricReport> = (0..6)
            .map(|i| report(&format!("r{i}"), 40.0 + i as f64, 30))
            .collect();

        // Uninterrupted run over all six reports.
        let mut full = ModelBuilder::new(settings.clone()).program("demo");
        for r in &reports {
            full.add_run(r);
        }
        let expected = full.build().model;

        // Interrupted: three runs, checkpoint, "crash", resume.
        let mut first = ModelBuilder::new(settings).program("demo");
        for r in &reports[..3] {
            first.add_run(r);
        }
        let path = tmp("resume.ckpt");
        first.checkpoint(3).save(&path).unwrap();
        drop(first);

        let cp = TrainCheckpoint::load(&path).unwrap();
        let (mut resumed, next) = ModelBuilder::from_checkpoint(cp).unwrap();
        assert_eq!(next, 3);
        for r in &reports[next as usize..] {
            resumed.add_run(r);
        }
        assert_eq!(resumed.build().model, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn locally_stable_state_survives_the_checkpoint() {
        let settings = Settings::default();
        let phase = |run: &str| {
            let samples = (0..40)
                .map(|i| MetricSample {
                    seq: i,
                    fn_entries: i as u64,
                    tick: i as u64,
                    metrics: MetricVector::from_array(
                        [if i < 20 { 10.0 } else { 30.0 }; METRIC_COUNT],
                    ),
                    nodes: 10,
                    edges: 5,
                    dangling: 0,
                    candidates: None,
                })
                .collect();
            MetricReport::new(run, samples)
        };
        let mut full = ModelBuilder::new(settings.clone()).locally_stable(true);
        for i in 0..4 {
            full.add_run(&phase(&format!("r{i}")));
        }
        let expected = full.build().model;

        let mut first = ModelBuilder::new(settings).locally_stable(true);
        first.add_run(&phase("r0"));
        first.add_run(&phase("r1"));
        let path = tmp("local.ckpt");
        first.checkpoint(2).save(&path).unwrap();
        let (mut resumed, _) =
            ModelBuilder::from_checkpoint(TrainCheckpoint::load(&path).unwrap()).unwrap();
        resumed.add_run(&phase("r2"));
        resumed.add_run(&phase("r3"));
        let got = resumed.build().model;
        assert_eq!(got.locally_stable, expected.locally_stable);
        assert_eq!(got, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_checkpoints_round_trip_and_detect_bit_flips() {
        let settings = Settings::default();
        let mut b = ModelBuilder::new(settings).program("demo");
        b.add_run(&report("r0", 40.0, 30));
        b.add_run(&report("r1", 41.0, 30));
        let cp = b.checkpoint(2);

        let path = tmp("binary.ckpt");
        cp.save_format(&path, crate::StreamFormat::Binary).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(crate::BINARY_MAGIC));
        // Auto-detecting load round-trips the exact state.
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), cp);

        // Any single corrupted byte in the payload is caught by the
        // container CRC — the historical bare-JSON format would parse a
        // flipped digit into silently wrong state.
        let mut damaged = bytes.clone();
        damaged[bytes.len() / 2] ^= 0x08;
        std::fs::write(&path, &damaged).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(HeapMdError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_checkpoints_yield_typed_errors() {
        let b = ModelBuilder::new(Settings::default());
        let path = tmp("damage.ckpt");
        b.checkpoint(0).save(&path).unwrap();

        // Truncate the file: parse failure → Corrupt.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(HeapMdError::Corrupt { .. })
        ));

        // Future version → Checkpoint error.
        let mut cp = b.checkpoint(0);
        cp.version = CHECKPOINT_FORMAT_VERSION + 1;
        cp.save(&path).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(HeapMdError::Checkpoint(_))
        ));

        // Inconsistent bookkeeping → Checkpoint error.
        let mut cp = b.checkpoint(0);
        cp.series.push(None);
        assert!(matches!(cp.validate(), Err(HeapMdError::Checkpoint(_))));
        let cp = b.checkpoint(5);
        assert!(cp.validate().is_ok(), "skipped inputs are legal");

        // Missing file → Io.
        assert!(matches!(
            TrainCheckpoint::load(tmp("nonexistent.ckpt")),
            Err(HeapMdError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn next_input_behind_runs_is_rejected() {
        let settings = Settings::default();
        let mut b = ModelBuilder::new(settings);
        b.add_run(&report("r0", 10.0, 30));
        b.add_run(&report("r1", 10.0, 30));
        assert!(matches!(
            b.checkpoint(1).validate(),
            Err(HeapMdError::Checkpoint(_))
        ));
    }
}
