//! Crash-safe persistence primitives shared by the model, checkpoint,
//! and streaming-trace writers.
//!
//! The implementations live in [`heapmd_runstore::persist`] — the
//! run-store sits below this crate in the observability plane and
//! needs the same temp-and-rename protocol and block CRCs — and are
//! re-exported here unchanged so existing callers keep their paths:
//!
//! * [`write_atomic`] — the classic write-to-temp-then-rename protocol,
//!   so a reader never observes a half-written model or checkpoint: it
//!   sees either the old file or the new one, never a torn mix.
//! * [`crc32`] — the IEEE CRC-32 used by the length-framed trace
//!   stream (`trace_stream`) to detect torn or bit-flipped records.

pub use heapmd_runstore::persist::{crc32, write_atomic};
