//! Simultaneous model construction and checking — the third design of
//! §2, "currently not supported by HeapMD", employed by DIDUCE.
//!
//! [`OnlineLearner`] needs no training phase: it learns each metric's
//! range *while* checking. A value outside the range learned so far is
//! reported, and then — as in DIDUCE — the range is **relaxed** to
//! include it, so a genuine phase change is reported once and absorbed,
//! while a bug that keeps pushing a metric further produces a trail of
//! reports with shrinking confidence.
//!
//! This trades the calibrated-model design's near-zero false positives
//! for zero training cost; the paper's two-phase design remains the
//! primary interface ([`crate::ModelBuilder`] + [`crate::AnomalyDetector`]).

use crate::bug::{AnomalyKind, BugReport, Direction};
use crate::incident::{DegreeSnapshot, IncidentBundle, SeriesData};
use crate::monitor::{Monitor, MonitorCtx};
use crate::report::MetricSample;
use crate::settings::Settings;
use heap_graph::{MetricKind, METRIC_COUNT};

/// Upper bound on retained incident bundles: online mode can report on
/// every relaxation early in a run, and bundles carry series snapshots.
const MAX_INCIDENTS: usize = 16;

/// One metric's learned interval.
#[derive(Debug, Clone, Copy, Default)]
struct Learned {
    range: Option<(f64, f64)>,
    /// Samples that fit the range since it last changed (confidence).
    confirmed: u64,
}

/// A training-free anomaly detector that learns ranges on the fly.
///
/// # Example
///
/// ```
/// use heapmd::{OnlineLearner, Process, Settings};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let settings = Settings::builder().frq(10).build()?;
/// let learner = Rc::new(RefCell::new(OnlineLearner::new(settings.clone())));
/// let mut p = Process::new(settings);
/// p.attach(learner.clone());
/// // … run the program: anomalies appear in learner.borrow().reports()
/// # for _ in 0..50 { p.enter("w"); p.malloc(16, "n")?; p.leave(); }
/// # let _ = p.finish("run");
/// # let _ = learner.borrow().reports().len();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OnlineLearner {
    settings: Settings,
    learned: [Learned; METRIC_COUNT],
    samples_seen: usize,
    reports: Vec<BugReport>,
    incidents: Vec<IncidentBundle>,
    /// Store-sampling rate of the observed stream (from the monitor
    /// context; 1.0 when standalone). Sampled streams get their learned
    /// ranges checked with confidence-widened slack.
    stream_rate: f64,
}

impl OnlineLearner {
    /// Creates a learner; `settings.warmup_samples` are absorbed
    /// without checking, and `settings.range_margin` is the slack
    /// applied before a deviation counts.
    pub fn new(settings: Settings) -> Self {
        OnlineLearner {
            settings,
            learned: [Learned::default(); METRIC_COUNT],
            samples_seen: 0,
            reports: Vec::new(),
            incidents: Vec::new(),
            stream_rate: 1.0,
        }
    }

    /// Incident bundles captured when reports were raised while running
    /// as an attached monitor (capped at a small fixed number; online
    /// bundles carry no call stacks — there is no armed window).
    pub fn incidents(&self) -> &[IncidentBundle] {
        &self.incidents
    }

    /// Takes ownership of the incident bundles.
    pub fn take_incidents(&mut self) -> Vec<IncidentBundle> {
        std::mem::take(&mut self.incidents)
    }

    /// Anomaly reports so far. Each carries the range *as learned at
    /// detection time* — later samples may have relaxed it further.
    pub fn reports(&self) -> &[BugReport] {
        &self.reports
    }

    /// Takes ownership of the reports.
    pub fn take_reports(&mut self) -> Vec<BugReport> {
        std::mem::take(&mut self.reports)
    }

    /// The range currently learned for `kind`, if any sample arrived.
    pub fn learned_range(&self, kind: MetricKind) -> Option<(f64, f64)> {
        self.learned[kind.index()].range
    }

    /// Consumes one sample: checks against the learned ranges, then
    /// relaxes them.
    pub fn observe(&mut self, sample: &MetricSample) {
        self.samples_seen += 1;
        let warmup = self.samples_seen <= self.settings.warmup_samples;
        let rate = self.stream_rate;
        for kind in MetricKind::ALL {
            let v = sample.metrics.get(kind);
            let st = &mut self.learned[kind.index()];
            match st.range {
                None => st.range = Some((v, v)),
                Some((lo, hi)) => {
                    let margin = self.settings.range_margin
                        + crate::model::sampling_widen(hi - lo, rate);
                    let out_low = v < lo - margin;
                    let out_high = v > hi + margin;
                    if (out_low || out_high) && !warmup && st.confirmed >= 3 {
                        let out_by = if out_low { lo - margin - v } else { v - hi - margin };
                        let bug = BugReport {
                            metric: kind,
                            kind: AnomalyKind::RangeViolation {
                                direction: if out_low {
                                    Direction::BelowMin
                                } else {
                                    Direction::AboveMax
                                },
                            },
                            value: v,
                            range: (lo, hi),
                            sample_seq: sample.seq,
                            fn_entries: sample.fn_entries,
                            sample_rate: rate,
                            band_distance: out_by / (hi - lo + 2.0 * margin).max(1.0),
                            context: Vec::new(),
                        };
                        crate::bug::emit_anomaly_event(&bug, "online");
                        self.reports.push(bug);
                    }
                    if out_low || out_high {
                        // DIDUCE-style relaxation: absorb the new value.
                        st.range = Some((lo.min(v), hi.max(v)));
                        st.confirmed = 0;
                    } else {
                        st.confirmed += 1;
                    }
                }
            }
        }
    }
}

impl Monitor for OnlineLearner {
    fn on_sample(&mut self, ctx: &MonitorCtx<'_>, sample: &MetricSample) {
        if ctx.sample_rate.is_finite() && ctx.sample_rate > 0.0 {
            self.stream_rate = ctx.sample_rate;
        }
        let before = self.reports.len();
        self.observe(sample);
        // Flight-recorder capture for reports this sample raised.
        if self.reports.len() == before || self.incidents.len() >= MAX_INCIDENTS {
            return;
        }
        let series: Vec<SeriesData> = ctx
            .recorder
            .map(|r| r.snapshot().iter().map(SeriesData::from).collect())
            .unwrap_or_default();
        let degrees = DegreeSnapshot::capture(ctx.graph.histogram());
        for i in before..self.reports.len() {
            if self.incidents.len() >= MAX_INCIDENTS {
                break;
            }
            let bundle = IncidentBundle::from_report(
                "online",
                &self.reports[i],
                0.0,
                None,
                self.samples_seen as u64,
                series.clone(),
                Some(degrees.clone()),
            );
            self.incidents.push(bundle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heap_graph::MetricVector;

    fn sample(seq: usize, v: f64) -> MetricSample {
        MetricSample {
            seq,
            fn_entries: seq as u64,
            tick: seq as u64,
            metrics: MetricVector::from_array([v; METRIC_COUNT]),
            nodes: 10,
            edges: 0,
            dangling: 0,
            candidates: None,
        }
    }

    fn learner() -> OnlineLearner {
        OnlineLearner::new(
            Settings::builder()
                .warmup_samples(2)
                .range_margin(0.5)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn steady_series_learns_silently() {
        let mut l = learner();
        for i in 0..30 {
            l.observe(&sample(i, 40.0 + (i % 2) as f64 * 0.3));
        }
        assert!(l.reports().is_empty());
        let (lo, hi) = l.learned_range(MetricKind::Roots).unwrap();
        assert!(lo >= 40.0 && hi <= 40.3 + f64::EPSILON);
    }

    #[test]
    fn a_jump_after_confirmation_is_reported_once_then_absorbed() {
        let mut l = learner();
        for i in 0..10 {
            l.observe(&sample(i, 40.0));
        }
        l.observe(&sample(10, 55.0)); // jump
        let n = l.reports().len();
        assert_eq!(n, METRIC_COUNT, "one report per metric at the jump");
        for i in 11..20 {
            l.observe(&sample(i, 55.0)); // relaxed: silence
        }
        assert_eq!(l.reports().len(), n);
        let (lo, hi) = l.learned_range(MetricKind::Leaves).unwrap();
        assert_eq!((lo, hi), (40.0, 55.0));
    }

    #[test]
    fn unconfirmed_ranges_do_not_report() {
        let mut l = learner();
        // Ranges change on nearly every sample: never 3 confirmations.
        for (i, v) in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0].iter().enumerate() {
            l.observe(&sample(i, *v));
        }
        assert!(l.reports().is_empty(), "{:?}", l.reports());
    }

    #[test]
    fn warmup_jumps_are_not_reported() {
        let mut l = learner();
        l.observe(&sample(0, 10.0));
        l.observe(&sample(1, 90.0)); // inside warmup (2 samples)
        for i in 2..10 {
            l.observe(&sample(i, 90.0));
        }
        assert!(l.reports().is_empty());
    }

    #[test]
    fn take_reports_drains() {
        let mut l = learner();
        for i in 0..10 {
            l.observe(&sample(i, 40.0));
        }
        l.observe(&sample(10, 90.0));
        assert!(!l.take_reports().is_empty());
        assert!(l.reports().is_empty());
    }
}
