//! The monitor interface: how checkers observe a running process.

use crate::callstack::{FuncId, FunctionTable};
use crate::report::MetricSample;
use heap_graph::GraphImage;
use heapmd_obs::SeriesRecorder;
use sim_heap::{HeapEvent, SimHeap};

/// Read-only view of the execution state handed to monitors.
#[derive(Debug)]
pub struct MonitorCtx<'a> {
    /// The heap-graph image maintained by the execution logger
    /// (single-slab or sharded; identical observables either way).
    pub graph: &'a GraphImage,
    /// The simulated heap (object table, staleness ticks).
    pub heap: &'a SimHeap,
    /// The current call stack, outermost first.
    pub stack: &'a [FuncId],
    /// Function-name intern table for rendering the stack.
    pub funcs: &'a FunctionTable,
    /// Cumulative function entries.
    pub fn_entries: u64,
    /// Effective store-sampling rate of the event stream feeding this
    /// monitor, in `(0, 1]`: `1.0` when every store is observed (no
    /// production-overhead sampling), the measured kept/total ratio
    /// when a [`crate::SampledIngest`] filter fronts the stream.
    /// Detectors widen their calibrated ranges as a function of this.
    pub sample_rate: f64,
    /// The process's flight recorder, when one is enabled
    /// ([`crate::Process::enable_flight_recorder`]). Monitors snapshot
    /// it into incident bundles at detection time.
    pub recorder: Option<&'a SeriesRecorder>,
}

impl MonitorCtx<'_> {
    /// The current call stack as function names, outermost first.
    pub fn stack_names(&self) -> Vec<String> {
        self.funcs.render_stack(self.stack)
    }
}

/// An online observer attached to a [`crate::Process`].
///
/// HeapMD's anomaly detector and the SWAT baseline both implement this.
/// Events arrive synchronously after the heap and heap-graph have been
/// updated; metric samples arrive at each metric computation point.
pub trait Monitor {
    /// Called after every instrumentation event.
    fn on_event(&mut self, ctx: &MonitorCtx<'_>, event: &HeapEvent) {
        let _ = (ctx, event);
    }

    /// Called at every metric computation point, after the sample was
    /// recorded.
    fn on_sample(&mut self, ctx: &MonitorCtx<'_>, sample: &MetricSample) {
        let _ = (ctx, sample);
    }

    /// Called once when the run finishes.
    fn on_finish(&mut self, ctx: &MonitorCtx<'_>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use crate::settings::Settings;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Counts calls per hook, exercising the attachment plumbing.
    #[derive(Default)]
    struct Counter {
        events: usize,
        samples: usize,
        finished: bool,
        saw_stack: bool,
    }

    impl Monitor for Counter {
        fn on_event(&mut self, ctx: &MonitorCtx<'_>, _event: &HeapEvent) {
            self.events += 1;
            if !ctx.stack.is_empty() {
                self.saw_stack = true;
                assert!(!ctx.stack_names()[0].is_empty());
            }
        }
        fn on_sample(&mut self, _ctx: &MonitorCtx<'_>, _sample: &MetricSample) {
            self.samples += 1;
        }
        fn on_finish(&mut self, _ctx: &MonitorCtx<'_>) {
            self.finished = true;
        }
    }

    #[test]
    fn monitor_receives_events_samples_and_finish() {
        let settings = Settings::builder().frq(2).build().unwrap();
        let counter = Rc::new(RefCell::new(Counter::default()));
        let mut p = Process::new(settings);
        p.attach(counter.clone());
        for _ in 0..6 {
            p.enter("work");
            p.malloc(16, "n").unwrap();
            p.leave();
        }
        let _ = p.finish("run");
        let c = counter.borrow();
        // 6 allocs + 12 fn enter/exit = 18 events.
        assert_eq!(c.events, 18);
        assert_eq!(c.samples, 3, "frq=2 over 6 entries");
        assert!(c.finished);
        assert!(c.saw_stack);
    }
}
