//! A fixed-capacity circular buffer.
//!
//! HeapMD logs call-stacks "into a circular buffer" while a stable
//! metric is near a calibrated extreme (§2.2), so that a bug report can
//! show context before, during, and after the crossing without keeping
//! unbounded history.

use std::collections::VecDeque;

/// A bounded FIFO that overwrites its oldest entry when full.
///
/// # Example
///
/// ```
/// use heapmd::CircularBuffer;
///
/// let mut buf = CircularBuffer::new(2);
/// buf.push(1);
/// buf.push(2);
/// buf.push(3); // evicts 1
/// assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> CircularBuffer<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// A capacity of zero is legal and yields a buffer that silently
    /// discards every push — useful for disabling context logging
    /// without branching at the call sites.
    pub fn new(capacity: usize) -> Self {
        CircularBuffer {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends an item, evicting the oldest when at capacity.
    pub fn push(&mut self, item: T) {
        if self.capacity == 0 {
            return;
        }
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates oldest → newest, with that ordering as an explicit,
    /// documented contract regardless of how often the buffer has
    /// wrapped. Consumers that persist the contents (the incident
    /// bundle writer) use this so the guarantee survives refactors of
    /// the backing storage; `iter` merely inherits it from [`VecDeque`].
    pub fn iter_ordered(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drains the contents oldest → newest, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_below_capacity_keeps_everything() {
        let mut b = CircularBuffer::new(4);
        for i in 0..3 {
            b.push(i);
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut b = CircularBuffer::new(3);
        for i in 0..10 {
            b.push(i);
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut b = CircularBuffer::new(2);
        b.push("x");
        b.push("y");
        assert_eq!(b.drain(), vec!["x", "y"]);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn zero_capacity_discards_every_push() {
        let mut b = CircularBuffer::new(0);
        for i in 0..5 {
            b.push(i);
        }
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(b.drain(), Vec::<i32>::new());
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut b = CircularBuffer::new(1);
        for i in 0..4 {
            b.push(i);
            assert_eq!(b.len(), 1);
            assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![i]);
        }
    }

    #[test]
    fn exactly_filling_evicts_nothing() {
        let mut b = CircularBuffer::new(3);
        for i in 0..3 {
            b.push(i);
        }
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        // The very next push wraps and evicts exactly one.
        b.push(3);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn overwrite_order_survives_many_wraps() {
        let mut b = CircularBuffer::new(4);
        for i in 0..4 * 7 + 2 {
            b.push(i);
        }
        // Always the last `capacity` items, oldest → newest.
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![26, 27, 28, 29]);
        assert_eq!(b.drain(), vec![26, 27, 28, 29]);
        assert!(b.is_empty());
    }

    #[test]
    fn iter_ordered_is_oldest_first_before_any_wrap() {
        let mut b = CircularBuffer::new(5);
        for i in 0..3 {
            b.push(i);
        }
        assert_eq!(b.iter_ordered().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn iter_ordered_is_oldest_first_across_the_wrap_boundary() {
        let mut b = CircularBuffer::new(4);
        // Land the write cursor mid-buffer: 6 pushes into capacity 4
        // wraps twice past the boundary.
        for i in 0..6 {
            b.push(i);
        }
        assert_eq!(
            b.iter_ordered().copied().collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        // Exactly at the wrap point (a multiple of capacity).
        for i in 6..8 {
            b.push(i);
        }
        assert_eq!(
            b.iter_ordered().copied().collect::<Vec<_>>(),
            vec![4, 5, 6, 7]
        );
        assert!(b.iter_ordered().copied().eq(b.iter().copied()));
    }

    #[test]
    fn iter_ordered_on_zero_capacity_is_a_no_op() {
        let mut b = CircularBuffer::new(0);
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.iter_ordered().count(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = CircularBuffer::new(2);
        b.push(1);
        b.push(2);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
        b.push(9);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![9]);
    }
}
