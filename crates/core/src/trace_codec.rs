//! Compact block-based binary trace format (`.hmdt`) and the
//! pipelined/parallel replay engine built on top of it.
//!
//! The CRC-framed JSONL stream (`trace_stream`) made traces crash-safe,
//! but every event still pays a JSON encode/decode on each process
//! boundary — by PR 3 that serialization cost, not graph maintenance,
//! dominates `record`/`replay`/`check` end to end. This module replaces
//! the wire bytes while keeping the crash-safety contract:
//!
//! * **varint + delta encoding** — object ids, addresses, sizes,
//!   offsets, and function ids are LEB128 varints of zigzag deltas
//!   against per-block registers, so a typical event is 3–8 bytes
//!   instead of ~100 bytes of framed JSON;
//! * **fixed-size event blocks** — events are grouped into blocks of
//!   [`EVENTS_PER_BLOCK`], each independently decodable (delta
//!   registers reset per block) and protected by its own CRC-32, so a
//!   damaged region costs one block, not the stream suffix;
//! * **trailing block index + footer** — readers seek straight to the
//!   function table, know the total event/fn-entry counts without a
//!   pre-pass, and can split blocks across workers;
//! * **block-granular salvage** — unlike the JSONL reader's
//!   longest-valid-prefix rule, [`BinaryTraceReader::salvage`] resyncs
//!   on the block magic after damage and recovers every intact block,
//!   before *and after* the corruption.
//!
//! # Wire format
//!
//! ```text
//! file   := header block* footer
//! header := "HMDB1\n" version:u8 reserved:u8
//! block  := magic[4]=B1 0C 48 44  kind:u8  count:u32le  len:u32le
//!           crc:u32le  payload[len]
//! footer := index_offset:u64le  crc32(index_offset):u32le  "HMDBIDX\n"
//! ```
//!
//! Block kinds: `1` events, `2` function table, `3` block index,
//! `4` opaque metadata (CRC-protected checkpoint payloads). The index
//! payload lists `(offset, kind, count)` for every preceding block and
//! ends with the stream's total event and `FnEnter` counts.
//!
//! # Pipelined replay
//!
//! [`replay_binary`] and [`check_binary`] run a decoder thread that
//! streams decoded blocks over a bounded channel into graph ingestion
//! (`HeapGraph::apply_batch` via the replayer) while the next block
//! decodes; event-batch buffers are recycled through a return channel,
//! so steady-state replay allocates nothing per block.
//! [`check_traces_parallel`] / [`check_paths_parallel`] fan N traces
//! out across a scoped thread pool and merge `BugReport`s in input
//! order — the same determinism discipline as
//! `ModelBuilder::add_runs_parallel`.

use crate::bug::BugReport;
use crate::error::HeapMdError;
use crate::model::HeapModel;
use crate::persist::crc32;
use crate::report::MetricReport;
use crate::settings::Settings;
use crate::trace::{Replayer, Trace};
use crate::trace_stream::SalvageStats;
use sim_heap::{Addr, AllocSite, HeapEvent, ObjectId};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::mpsc;
use swat::{SamplerConfig, SamplingInfo};

/// Magic prefix of a binary trace file (the trailing newline guards
/// against text-mode mangling, png-style).
pub const BINARY_MAGIC: &[u8; 6] = b"HMDB1\n";

/// Binary container format version written after the magic.
pub const BINARY_FORMAT_VERSION: u8 = 1;

/// Per-block magic. Payload bytes can collide with it, so readers only
/// trust a match whose block also passes the CRC.
pub(crate) const BLOCK_MAGIC: [u8; 4] = [0xB1, 0x0C, 0x48, 0x44];

/// Trailing footer magic (8 bytes, closes the file).
const FOOTER_MAGIC: &[u8; 8] = b"HMDBIDX\n";

/// Fixed footer size: index offset + its CRC + magic.
pub(crate) const FOOTER_LEN: usize = 8 + 4 + 8;

/// Block header size: magic + kind + count + len + crc.
pub(crate) const BLOCK_HEADER_LEN: usize = 4 + 1 + 4 + 4 + 4;

/// File header size: magic + version + reserved byte.
pub(crate) const HEADER_LEN: usize = 8;

/// Events per full block. Large enough to amortize header + dispatch,
/// small enough that salvage loses little and the pipeline stays busy.
pub const EVENTS_PER_BLOCK: usize = 4096;

/// Upper bound on a declared block payload, so a corrupted length field
/// cannot drive a reader into a multi-gigabyte copy.
pub(crate) const MAX_BLOCK_LEN: u32 = 1 << 24;

/// Bounded depth of the decoder → ingestion channel.
const PIPELINE_DEPTH: usize = 4;

/// Block kinds.
pub(crate) const KIND_EVENTS: u8 = 1;
pub(crate) const KIND_FUNCTIONS: u8 = 2;
pub(crate) const KIND_INDEX: u8 = 3;
pub(crate) const KIND_META: u8 = 4;

/// On-disk trace/checkpoint serialization format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamFormat {
    /// CRC-framed JSON lines (`HMDT1`): human-greppable, slower.
    #[default]
    Jsonl,
    /// Block-based binary (`HMDB1`): compact, seekable, fast.
    Binary,
}

impl StreamFormat {
    /// Parses a `--format` flag value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" | "json" => Ok(StreamFormat::Jsonl),
            "binary" | "bin" => Ok(StreamFormat::Binary),
            other => Err(format!("unknown format {other:?} (use binary|jsonl)")),
        }
    }
}

// ---------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    // Delta encoding makes 1-byte varints the overwhelmingly common
    // case (consecutive ids/addresses differ by small amounts); decode
    // them without entering the loop.
    if let Some(&b) = bytes.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    get_varint_multi(bytes, pos)
}

#[cold]
fn get_varint_multi(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or("varint truncated")?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Per-block delta registers. Reset at each block boundary so blocks
/// decode independently (the property salvage and work-splitting need).
#[derive(Default)]
struct DeltaState {
    obj: u64,
    addr: u64,
    size: u64,
    offset: u64,
    func: u64,
    site: u64,
}

impl DeltaState {
    #[inline]
    fn put(out: &mut Vec<u8>, reg: &mut u64, v: u64) {
        put_varint(out, zigzag(v.wrapping_sub(*reg) as i64));
        *reg = v;
    }

    #[inline]
    fn get(bytes: &[u8], pos: &mut usize, reg: &mut u64) -> Result<u64, String> {
        let d = unzigzag(get_varint(bytes, pos)?);
        *reg = reg.wrapping_add(d as u64);
        Ok(*reg)
    }
}

// Event tags.
const TAG_ALLOC: u8 = 0;
const TAG_FREE: u8 = 1;
const TAG_PTR_WRITE: u8 = 2;
const TAG_SCALAR_WRITE: u8 = 3;
const TAG_READ: u8 = 4;
const TAG_FN_ENTER: u8 = 5;
const TAG_FN_EXIT: u8 = 6;

fn encode_event(out: &mut Vec<u8>, st: &mut DeltaState, ev: &HeapEvent) {
    match *ev {
        HeapEvent::Alloc {
            obj,
            addr,
            size,
            site,
        } => {
            out.push(TAG_ALLOC);
            DeltaState::put(out, &mut st.obj, obj.0);
            DeltaState::put(out, &mut st.addr, addr.get());
            DeltaState::put(out, &mut st.size, size as u64);
            DeltaState::put(out, &mut st.site, u64::from(site.0));
        }
        HeapEvent::Free { obj, addr, size } => {
            out.push(TAG_FREE);
            DeltaState::put(out, &mut st.obj, obj.0);
            DeltaState::put(out, &mut st.addr, addr.get());
            DeltaState::put(out, &mut st.size, size as u64);
        }
        HeapEvent::PtrWrite {
            src,
            offset,
            value,
            old_value,
        } => {
            out.push(TAG_PTR_WRITE);
            DeltaState::put(out, &mut st.obj, src.0);
            DeltaState::put(out, &mut st.offset, offset);
            DeltaState::put(out, &mut st.addr, value.get());
            match old_value {
                None => out.push(0),
                Some(old) => {
                    out.push(1);
                    DeltaState::put(out, &mut st.addr, old.get());
                }
            }
        }
        HeapEvent::ScalarWrite {
            src,
            offset,
            old_value,
        } => {
            out.push(TAG_SCALAR_WRITE);
            DeltaState::put(out, &mut st.obj, src.0);
            DeltaState::put(out, &mut st.offset, offset);
            match old_value {
                None => out.push(0),
                Some(old) => {
                    out.push(1);
                    DeltaState::put(out, &mut st.addr, old.get());
                }
            }
        }
        HeapEvent::Read { obj } => {
            out.push(TAG_READ);
            DeltaState::put(out, &mut st.obj, obj.0);
        }
        HeapEvent::FnEnter { func } => {
            out.push(TAG_FN_ENTER);
            DeltaState::put(out, &mut st.func, u64::from(func));
        }
        HeapEvent::FnExit { func } => {
            out.push(TAG_FN_EXIT);
            DeltaState::put(out, &mut st.func, u64::from(func));
        }
    }
}

fn decode_event(bytes: &[u8], pos: &mut usize, st: &mut DeltaState) -> Result<HeapEvent, String> {
    let &tag = bytes.get(*pos).ok_or("event tag truncated")?;
    *pos += 1;
    let u32_field = |v: u64, what: &str| -> Result<u32, String> {
        u32::try_from(v).map_err(|_| format!("{what} {v} exceeds u32"))
    };
    let usize_field = |v: u64, what: &str| -> Result<usize, String> {
        usize::try_from(v).map_err(|_| format!("{what} {v} exceeds usize"))
    };
    Ok(match tag {
        TAG_ALLOC => HeapEvent::Alloc {
            obj: ObjectId(DeltaState::get(bytes, pos, &mut st.obj)?),
            addr: Addr::new(DeltaState::get(bytes, pos, &mut st.addr)?),
            size: usize_field(DeltaState::get(bytes, pos, &mut st.size)?, "alloc size")?,
            site: AllocSite(u32_field(
                DeltaState::get(bytes, pos, &mut st.site)?,
                "alloc site",
            )?),
        },
        TAG_FREE => HeapEvent::Free {
            obj: ObjectId(DeltaState::get(bytes, pos, &mut st.obj)?),
            addr: Addr::new(DeltaState::get(bytes, pos, &mut st.addr)?),
            size: usize_field(DeltaState::get(bytes, pos, &mut st.size)?, "free size")?,
        },
        TAG_PTR_WRITE => {
            let src = ObjectId(DeltaState::get(bytes, pos, &mut st.obj)?);
            let offset = DeltaState::get(bytes, pos, &mut st.offset)?;
            let value = Addr::new(DeltaState::get(bytes, pos, &mut st.addr)?);
            let old_value = decode_opt_addr(bytes, pos, st)?;
            HeapEvent::PtrWrite {
                src,
                offset,
                value,
                old_value,
            }
        }
        TAG_SCALAR_WRITE => {
            let src = ObjectId(DeltaState::get(bytes, pos, &mut st.obj)?);
            let offset = DeltaState::get(bytes, pos, &mut st.offset)?;
            let old_value = decode_opt_addr(bytes, pos, st)?;
            HeapEvent::ScalarWrite {
                src,
                offset,
                old_value,
            }
        }
        TAG_READ => HeapEvent::Read {
            obj: ObjectId(DeltaState::get(bytes, pos, &mut st.obj)?),
        },
        TAG_FN_ENTER => HeapEvent::FnEnter {
            func: u32_field(DeltaState::get(bytes, pos, &mut st.func)?, "function id")?,
        },
        TAG_FN_EXIT => HeapEvent::FnExit {
            func: u32_field(DeltaState::get(bytes, pos, &mut st.func)?, "function id")?,
        },
        other => return Err(format!("unknown event tag {other}")),
    })
}

fn decode_opt_addr(
    bytes: &[u8],
    pos: &mut usize,
    st: &mut DeltaState,
) -> Result<Option<Addr>, String> {
    let &flag = bytes.get(*pos).ok_or("option flag truncated")?;
    *pos += 1;
    match flag {
        0 => Ok(None),
        1 => Ok(Some(Addr::new(DeltaState::get(bytes, pos, &mut st.addr)?))),
        other => Err(format!("bad option flag {other}")),
    }
}

// ---------------------------------------------------------------------
// Block framing
// ---------------------------------------------------------------------

/// One index entry: where a block starts and what it claims to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Byte offset of the block's magic in the file.
    pub offset: u64,
    /// Block kind (1 events, 2 functions, 3 index, 4 meta).
    pub kind: u8,
    /// Event count (events blocks) or entry count (other kinds).
    pub count: u32,
}

fn put_block(out: &mut Vec<u8>, kind: u8, count: u32, payload: &[u8]) {
    out.extend_from_slice(&BLOCK_MAGIC);
    out.push(kind);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parses a block header + payload at `pos`. Returns
/// `(kind, count, payload, next_pos)`.
fn parse_block(bytes: &[u8], pos: usize) -> Result<(u8, u32, &[u8], usize), String> {
    let rest = &bytes[pos..];
    if rest.len() < BLOCK_HEADER_LEN {
        return Err("truncated block header".into());
    }
    if rest[..4] != BLOCK_MAGIC {
        return Err("bad block magic".into());
    }
    let kind = rest[4];
    let count = u32::from_le_bytes(rest[5..9].try_into().unwrap());
    let len = u32::from_le_bytes(rest[9..13].try_into().unwrap());
    let declared_crc = u32::from_le_bytes(rest[13..17].try_into().unwrap());
    if len > MAX_BLOCK_LEN {
        return Err(format!("block length {len} exceeds cap {MAX_BLOCK_LEN}"));
    }
    let end = BLOCK_HEADER_LEN + len as usize;
    if rest.len() < end {
        return Err("block truncated mid-payload".into());
    }
    let payload = &rest[BLOCK_HEADER_LEN..end];
    let actual = crc32(payload);
    if actual != declared_crc {
        return Err(format!(
            "block checksum mismatch: declared {declared_crc:08x}, computed {actual:08x}"
        ));
    }
    if !(KIND_EVENTS..=KIND_META).contains(&kind) {
        return Err(format!("unknown block kind {kind}"));
    }
    Ok((kind, count, payload, pos + end))
}

fn encode_events_block(events: &[HeapEvent], scratch: &mut Vec<u8>) -> (Vec<u8>, u64) {
    scratch.clear();
    let mut st = DeltaState::default();
    let mut fn_enters = 0u64;
    for ev in events {
        if matches!(ev, HeapEvent::FnEnter { .. }) {
            fn_enters += 1;
        }
        encode_event(scratch, &mut st, ev);
    }
    let mut block = Vec::with_capacity(BLOCK_HEADER_LEN + scratch.len());
    put_block(&mut block, KIND_EVENTS, events.len() as u32, scratch);
    (block, fn_enters)
}

/// Decodes an events-block payload into `out` (appending). The caller
/// passes `count` from the block header; a mismatch is corruption.
fn decode_events_payload(
    payload: &[u8],
    count: u32,
    out: &mut Vec<HeapEvent>,
) -> Result<(), String> {
    let mut st = DeltaState::default();
    let mut pos = 0usize;
    for _ in 0..count {
        out.push(decode_event(payload, &mut pos, &mut st)?);
    }
    if pos != payload.len() {
        return Err(format!(
            "events block carries {} trailing bytes",
            payload.len() - pos
        ));
    }
    Ok(())
}

fn encode_functions_block(names: &[String]) -> Vec<u8> {
    let mut payload = Vec::new();
    for name in names {
        put_varint(&mut payload, name.len() as u64);
        payload.extend_from_slice(name.as_bytes());
    }
    let mut block = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len());
    put_block(&mut block, KIND_FUNCTIONS, names.len() as u32, &payload);
    block
}

fn decode_functions_payload(payload: &[u8], count: u32) -> Result<Vec<String>, String> {
    let mut names = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    for _ in 0..count {
        let len = get_varint(payload, &mut pos)? as usize;
        let end = pos.checked_add(len).ok_or("name length overflow")?;
        if end > payload.len() {
            return Err("function name truncated".into());
        }
        let name = std::str::from_utf8(&payload[pos..end])
            .map_err(|_| "function name is not UTF-8")?
            .to_string();
        names.push(name);
        pos = end;
    }
    if pos != payload.len() {
        return Err("functions block carries trailing bytes".into());
    }
    Ok(names)
}

/// The decoded trailing index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockIndex {
    /// Every block in the file, in file order.
    pub blocks: Vec<BlockEntry>,
    /// Total events across all events blocks.
    pub total_events: u64,
    /// Total `FnEnter` events (lets `check` size its warmup without a
    /// decode pre-pass).
    pub total_fn_enters: u64,
}

fn encode_index_block(index: &BlockIndex) -> Vec<u8> {
    let mut payload = Vec::new();
    for b in &index.blocks {
        put_varint(&mut payload, b.offset);
        payload.push(b.kind);
        put_varint(&mut payload, u64::from(b.count));
    }
    put_varint(&mut payload, index.total_events);
    put_varint(&mut payload, index.total_fn_enters);
    let mut block = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len());
    put_block(&mut block, KIND_INDEX, index.blocks.len() as u32, &payload);
    block
}

fn decode_index_payload(payload: &[u8], count: u32) -> Result<BlockIndex, String> {
    let mut pos = 0usize;
    let mut blocks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let offset = get_varint(payload, &mut pos)?;
        let &kind = payload.get(pos).ok_or("index entry truncated")?;
        pos += 1;
        let entry_count = get_varint(payload, &mut pos)?;
        blocks.push(BlockEntry {
            offset,
            kind,
            count: u32::try_from(entry_count).map_err(|_| "index count exceeds u32")?,
        });
    }
    let total_events = get_varint(payload, &mut pos)?;
    let total_fn_enters = get_varint(payload, &mut pos)?;
    if pos != payload.len() {
        return Err("index block carries trailing bytes".into());
    }
    Ok(BlockIndex {
        blocks,
        total_events,
        total_fn_enters,
    })
}

fn encode_footer(index_offset: u64) -> [u8; FOOTER_LEN] {
    let offset_bytes = index_offset.to_le_bytes();
    let mut footer = [0u8; FOOTER_LEN];
    footer[..8].copy_from_slice(&offset_bytes);
    footer[8..12].copy_from_slice(&crc32(&offset_bytes).to_le_bytes());
    footer[12..].copy_from_slice(FOOTER_MAGIC);
    footer
}

/// Reads the footer at the end of `bytes`, returning the index offset.
fn parse_footer(bytes: &[u8]) -> Result<u64, String> {
    if bytes.len() < FOOTER_LEN {
        return Err("file too short for footer".into());
    }
    let footer = &bytes[bytes.len() - FOOTER_LEN..];
    if &footer[12..] != FOOTER_MAGIC {
        return Err("missing footer magic".into());
    }
    let declared = u32::from_le_bytes(footer[8..12].try_into().unwrap());
    if crc32(&footer[..8]) != declared {
        return Err("footer checksum mismatch".into());
    }
    Ok(u64::from_le_bytes(footer[..8].try_into().unwrap()))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Incremental writer for the block-based binary trace format.
///
/// The crash-safety contract matches [`crate::TraceWriter`]: every
/// completed block on disk is independently CRC-verified and
/// recoverable, so whatever was flushed before a crash salvages at
/// block granularity. The trailing index and footer are written by
/// [`finish`](Self::finish); their absence is exactly what tells a
/// reader the stream died mid-record.
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write> {
    inner: W,
    /// Events buffered for the current (unfinished) block.
    pending: Vec<HeapEvent>,
    /// Scratch encode buffer, reused across blocks.
    scratch: Vec<u8>,
    /// Byte offset the next block will land at.
    offset: u64,
    index: BlockIndex,
    finished: bool,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a binary trace on `inner`, writing the file header.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] if the header cannot be written.
    pub fn new(mut inner: W) -> Result<Self, HeapMdError> {
        let header = [
            BINARY_MAGIC[0],
            BINARY_MAGIC[1],
            BINARY_MAGIC[2],
            BINARY_MAGIC[3],
            BINARY_MAGIC[4],
            BINARY_MAGIC[5],
            BINARY_FORMAT_VERSION,
            0,
        ];
        inner.write_all(&header)?;
        Ok(BinaryTraceWriter {
            inner,
            pending: Vec::with_capacity(EVENTS_PER_BLOCK),
            scratch: Vec::new(),
            offset: header.len() as u64,
            index: BlockIndex::default(),
            finished: false,
        })
    }

    /// Appends one event, flushing a full block when
    /// [`EVENTS_PER_BLOCK`] are pending.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn write_event(&mut self, ev: &HeapEvent) -> Result<(), HeapMdError> {
        self.pending.push(*ev);
        if self.pending.len() >= EVENTS_PER_BLOCK {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Writes the function-name table block (index = id). The last
    /// table in the stream wins, mirroring the JSONL writer.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn write_functions(&mut self, names: &[String]) -> Result<(), HeapMdError> {
        self.flush_block()?;
        let block = encode_functions_block(names);
        self.index.blocks.push(BlockEntry {
            offset: self.offset,
            kind: KIND_FUNCTIONS,
            count: names.len() as u32,
        });
        self.emit(&block)
    }

    /// Writes an opaque metadata block (e.g. the sampling outcome from
    /// [`encode_sampling_meta`]). Like the function table, the last
    /// meta block of a given tag wins.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn write_meta(&mut self, payload: &[u8]) -> Result<(), HeapMdError> {
        self.flush_block()?;
        let mut block = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len());
        put_block(&mut block, KIND_META, 1, payload);
        self.index.blocks.push(BlockEntry {
            offset: self.offset,
            kind: KIND_META,
            count: 1,
        });
        self.emit(&block)
    }

    /// Events accepted so far (buffered ones included).
    pub fn events_written(&self) -> u64 {
        self.index.total_events + self.pending.len() as u64
    }

    /// Flushes any partial block to the sink without ending the file.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn flush(&mut self) -> Result<(), HeapMdError> {
        self.flush_block()?;
        self.inner.flush()?;
        Ok(())
    }

    /// Writes the trailing index and footer, flushes, and returns the
    /// inner writer.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn finish(mut self) -> Result<W, HeapMdError> {
        self.flush_block()?;
        let index_offset = self.offset;
        let block = encode_index_block(&self.index);
        self.emit(&block)?;
        self.inner.write_all(&encode_footer(index_offset))?;
        self.finished = true;
        self.inner.flush()?;
        heapmd_obs::count!("heapmd_codec_traces_finished_total");
        Ok(self.inner)
    }

    fn flush_block(&mut self) -> Result<(), HeapMdError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let (block, fn_enters) = encode_events_block(&self.pending, &mut self.scratch);
        self.index.blocks.push(BlockEntry {
            offset: self.offset,
            kind: KIND_EVENTS,
            count: self.pending.len() as u32,
        });
        self.index.total_events += self.pending.len() as u64;
        self.index.total_fn_enters += fn_enters;
        self.pending.clear();
        self.emit(&block)
    }

    fn emit(&mut self, block: &[u8]) -> Result<(), HeapMdError> {
        self.inner.write_all(block)?;
        self.offset += block.len() as u64;
        heapmd_obs::count!("heapmd_codec_blocks_written_total");
        heapmd_obs::count!("heapmd_codec_bytes_written_total", block.len() as u64);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Strict / salvage reader for the binary format.
pub struct BinaryTraceReader;

/// Backing storage of a [`BinaryTraceImage`]: bytes we copied into the
/// process, or a zero-copy kernel mapping of the trace file.
enum ImageBytes {
    /// Heap-owned bytes (read into memory, or encoded in memory).
    Owned(Vec<u8>),
    /// Read-only `mmap(2)` view; blocks decode straight out of the page
    /// cache without a user-space copy of the file.
    Mapped(heapmd_mapfile::Mmap),
}

impl std::ops::Deref for ImageBytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            ImageBytes::Owned(v) => v,
            ImageBytes::Mapped(m) => m,
        }
    }
}

/// A fully parsed binary trace image: raw bytes plus the verified
/// index, ready for block-at-a-time decoding (sequential or split
/// across workers).
pub struct BinaryTraceImage {
    bytes: ImageBytes,
    index: BlockIndex,
}

impl BinaryTraceImage {
    /// Verifies header, footer, and index of `bytes` and returns a
    /// seekable image. Block payload CRCs are checked lazily, as each
    /// block is decoded.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`] with the byte offset of the
    /// first structural violation.
    pub fn open(bytes: Vec<u8>) -> Result<Self, HeapMdError> {
        Self::open_bytes(ImageBytes::Owned(bytes))
    }

    /// Opens the trace at `path` with a zero-copy `mmap` view of the
    /// file, falling back to a buffered read when mapping fails (or on
    /// targets without `mmap`). Structural verification is identical to
    /// [`open`](Self::open).
    ///
    /// Safe because traces are published atomically (write-to-temp +
    /// rename): a mapped file is never mutated in place by this
    /// codebase's writers. See the `heapmd-mapfile` crate docs for the
    /// full argument.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] when unreadable, [`HeapMdError::Corrupt`] on
    /// structural damage.
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        let file = std::fs::File::open(path.as_ref())?;
        match heapmd_mapfile::Mmap::map(&file) {
            Ok(map) => {
                heapmd_obs::count!("heapmd_trace_mmap_opens_total");
                Self::open_bytes(ImageBytes::Mapped(map))
            }
            Err(_) => {
                heapmd_obs::count!("heapmd_trace_mmap_fallbacks_total");
                drop(file);
                Self::open_path_buffered(path)
            }
        }
    }

    /// Opens the trace at `path` through a plain buffered read (no
    /// mapping), for callers that cannot rely on the atomic-publish
    /// discipline or want mmap-vs-buffered differential coverage.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] / [`HeapMdError::Corrupt`].
    pub fn open_path_buffered(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        Self::open_bytes(ImageBytes::Owned(std::fs::read(path)?))
    }

    /// Whether the image reads from a kernel mapping rather than owned
    /// memory.
    pub fn is_mapped(&self) -> bool {
        matches!(&self.bytes, ImageBytes::Mapped(m) if m.is_mapped())
    }

    fn open_bytes(bytes: ImageBytes) -> Result<Self, HeapMdError> {
        check_header(&bytes)?;
        let index_offset = parse_footer(&bytes)
            .map_err(|reason| HeapMdError::corrupt(bytes.len() as u64, reason))?;
        if index_offset as usize >= bytes.len() {
            return Err(HeapMdError::corrupt(
                index_offset,
                "footer points past end of file",
            ));
        }
        let (kind, count, payload, next) = parse_block(&bytes, index_offset as usize)
            .map_err(|reason| HeapMdError::corrupt(index_offset, reason))?;
        if kind != KIND_INDEX {
            return Err(HeapMdError::corrupt(
                index_offset,
                format!("footer points at block kind {kind}, expected index"),
            ));
        }
        if next != bytes.len() - FOOTER_LEN {
            return Err(HeapMdError::corrupt(
                next as u64,
                "trailing bytes between index block and footer",
            ));
        }
        let index = decode_index_payload(payload, count)
            .map_err(|reason| HeapMdError::corrupt(index_offset, reason))?;
        Ok(BinaryTraceImage { bytes, index })
    }

    /// The verified block index.
    pub fn index(&self) -> &BlockIndex {
        &self.index
    }

    /// Decodes the function table (the last functions block wins), or
    /// an empty table when none was written.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`].
    pub fn functions(&self) -> Result<Vec<String>, HeapMdError> {
        let mut names = Vec::new();
        for entry in &self.index.blocks {
            if entry.kind != KIND_FUNCTIONS {
                continue;
            }
            let (kind, count, payload, _) = parse_block(&self.bytes, entry.offset as usize)
                .map_err(|reason| HeapMdError::corrupt(entry.offset, reason))?;
            if kind != KIND_FUNCTIONS || count != entry.count {
                return Err(HeapMdError::corrupt(
                    entry.offset,
                    "index entry disagrees with functions block header",
                ));
            }
            names = decode_functions_payload(payload, count)
                .map_err(|reason| HeapMdError::corrupt(entry.offset, reason))?;
        }
        Ok(names)
    }

    /// Event-block index entries, in file order.
    pub fn event_blocks(&self) -> impl Iterator<Item = &BlockEntry> {
        self.index.blocks.iter().filter(|b| b.kind == KIND_EVENTS)
    }

    /// Decodes the trace's sampling metadata, when a sampling meta
    /// block was written (the last one wins). `None` means the stream
    /// was recorded unsampled — or by a pre-sampling writer.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`] on a damaged meta block.
    pub fn sampling(&self) -> Result<Option<SamplingInfo>, HeapMdError> {
        let mut sampling = None;
        for entry in &self.index.blocks {
            if entry.kind != KIND_META {
                continue;
            }
            let (kind, _, payload, _) = parse_block(&self.bytes, entry.offset as usize)
                .map_err(|reason| HeapMdError::corrupt(entry.offset, reason))?;
            if kind != KIND_META {
                return Err(HeapMdError::corrupt(
                    entry.offset,
                    "index entry disagrees with meta block header",
                ));
            }
            if let Some(info) = decode_sampling_meta(payload)
                .map_err(|reason| HeapMdError::corrupt(entry.offset, reason))?
            {
                sampling = Some(info);
            }
        }
        Ok(sampling)
    }

    /// Decodes one event block into `out` (cleared first). Reusing one
    /// buffer across blocks keeps steady-state decoding allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`].
    pub fn decode_block_into(
        &self,
        entry: &BlockEntry,
        out: &mut Vec<HeapEvent>,
    ) -> Result<(), HeapMdError> {
        out.clear();
        let (kind, count, payload, _) = parse_block(&self.bytes, entry.offset as usize)
            .map_err(|reason| HeapMdError::corrupt(entry.offset, reason))?;
        if kind != KIND_EVENTS || count != entry.count {
            return Err(HeapMdError::corrupt(
                entry.offset,
                "index entry disagrees with events block header",
            ));
        }
        decode_events_payload(payload, count, out)
            .map_err(|reason| HeapMdError::corrupt(entry.offset, reason))
    }

    /// Decodes everything into an in-memory [`Trace`], verifying the
    /// declared totals.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`].
    pub fn to_trace(&self) -> Result<Trace, HeapMdError> {
        let mut events = Vec::with_capacity(self.index.total_events as usize);
        let mut block_buf = Vec::new();
        for entry in self.event_blocks() {
            self.decode_block_into(entry, &mut block_buf)?;
            events.extend_from_slice(&block_buf);
        }
        if events.len() as u64 != self.index.total_events {
            return Err(HeapMdError::corrupt(
                0,
                format!(
                    "index declares {} events, blocks carry {}",
                    self.index.total_events,
                    events.len()
                ),
            ));
        }
        let mut trace = Trace::new();
        for ev in events {
            trace.push(ev);
        }
        trace.set_functions(self.functions()?);
        trace.set_sampling(self.sampling()?);
        Ok(trace)
    }
}

pub(crate) fn check_header(bytes: &[u8]) -> Result<(), HeapMdError> {
    if bytes.len() < 8 || &bytes[..6] != BINARY_MAGIC {
        return Err(HeapMdError::corrupt(0, "missing binary trace magic"));
    }
    if bytes[6] > BINARY_FORMAT_VERSION {
        return Err(HeapMdError::corrupt(
            6,
            format!("unsupported binary trace version {}", bytes[6]),
        ));
    }
    Ok(())
}

impl BinaryTraceReader {
    /// Strictly reads a complete, undamaged binary trace.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] on read failure, [`HeapMdError::Corrupt`]
    /// on any structural damage (bad header/footer/index, block CRC
    /// mismatch, count drift).
    pub fn strict(mut reader: impl Read) -> Result<Trace, HeapMdError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        BinaryTraceImage::open(bytes)?.to_trace()
    }

    /// Recovers every intact block of a possibly damaged binary trace.
    ///
    /// Unlike the JSONL salvage (longest valid prefix), block salvage
    /// resyncs on the block magic after damage: a corrupted or
    /// truncated region costs only the blocks it touches, and intact
    /// blocks *after* it are still recovered. Stats are reported
    /// through `heapmd-obs` exactly like the JSONL path.
    ///
    /// # Errors
    ///
    /// Only [`HeapMdError::Io`] — corruption is described in the
    /// returned [`SalvageStats`], never an error.
    pub fn salvage(mut reader: impl Read) -> Result<(Trace, SalvageStats), HeapMdError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let (trace, stats) = salvage_bytes(&bytes);
        heapmd_obs::count!("heapmd_trace_salvage_runs_total");
        heapmd_obs::count!("heapmd_trace_salvaged_events_total", stats.events);
        if !stats.complete {
            heapmd_obs::count!("heapmd_trace_salvage_incomplete_total");
            heapmd_obs::count!(
                "heapmd_trace_salvage_lost_bytes_total",
                stats.total_bytes - stats.valid_bytes
            );
        }
        heapmd_obs::export::emit_event("trace_salvage", |o| {
            o.field_str("format", "binary")
                .field_u64("records", stats.records)
                .field_u64("events", stats.events)
                .field_u64("valid_bytes", stats.valid_bytes)
                .field_u64("total_bytes", stats.total_bytes)
                .field_bool("complete", stats.complete);
            if let Some((offset, reason)) = &stats.corruption {
                o.field_u64("corrupt_at", *offset)
                    .field_str("reason", reason);
            }
        });
        Ok((trace, stats))
    }
}

/// Block-granular salvage over raw bytes: never fails, never panics.
fn salvage_bytes(bytes: &[u8]) -> (Trace, SalvageStats) {
    let mut events: Vec<HeapEvent> = Vec::new();
    let mut functions: Vec<String> = Vec::new();
    let mut sampling: Option<SamplingInfo> = None;
    let mut block_buf: Vec<HeapEvent> = Vec::new();
    let mut records = 0u64;
    let mut valid_bytes = 0u64;
    let mut corruption: Option<(u64, String)> = None;
    let mut saw_index = false;
    let mut damaged = false;

    let mut pos = match check_header(bytes) {
        Ok(()) => {
            valid_bytes += 8;
            8
        }
        Err(e) => {
            let HeapMdError::Corrupt { offset, reason } = e else {
                unreachable!("check_header only reports corruption")
            };
            corruption = Some((offset, reason));
            damaged = true;
            0
        }
    };

    while pos < bytes.len() {
        // The footer is legal only at the very end; reaching it cleanly
        // terminates the walk.
        if bytes.len() - pos == FOOTER_LEN && parse_footer(bytes).is_ok() {
            valid_bytes += FOOTER_LEN as u64;
            pos = bytes.len();
            break;
        }
        match parse_block(bytes, pos) {
            Ok((kind, count, payload, next)) => {
                let intact = match kind {
                    KIND_EVENTS => {
                        let start = block_buf.len();
                        match decode_events_payload(payload, count, &mut block_buf) {
                            Ok(()) => {
                                events.extend_from_slice(&block_buf[start..]);
                                block_buf.clear();
                                true
                            }
                            Err(reason) => {
                                block_buf.truncate(start);
                                if corruption.is_none() {
                                    corruption = Some((pos as u64, reason));
                                }
                                false
                            }
                        }
                    }
                    KIND_FUNCTIONS => match decode_functions_payload(payload, count) {
                        Ok(names) => {
                            functions = names;
                            true
                        }
                        Err(reason) => {
                            if corruption.is_none() {
                                corruption = Some((pos as u64, reason));
                            }
                            false
                        }
                    },
                    KIND_INDEX => {
                        saw_index = true;
                        decode_index_payload(payload, count).is_ok()
                    }
                    // Meta blocks already passed their CRC; recognized
                    // sampling payloads are recovered, other tags are
                    // opaque — both count as intact.
                    _ => {
                        if let Ok(Some(info)) = decode_sampling_meta(payload) {
                            sampling = Some(info);
                        }
                        true
                    }
                };
                if intact {
                    records += 1;
                    valid_bytes += (next - pos) as u64;
                } else {
                    damaged = true;
                }
                pos = next;
            }
            Err(reason) => {
                if corruption.is_none() {
                    corruption = Some((pos as u64, reason));
                }
                damaged = true;
                // Resync: scan forward for the next plausible block.
                match find_block_magic(bytes, pos + 1) {
                    Some(next) => pos = next,
                    None => {
                        pos = bytes.len();
                        break;
                    }
                }
            }
        }
    }

    let complete = !damaged && saw_index && pos == bytes.len() && valid_bytes == bytes.len() as u64;
    if !complete && corruption.is_none() {
        corruption = Some((pos as u64, "stream truncated before index/footer".into()));
    }

    let mut trace = Trace::new();
    let event_count = events.len() as u64;
    for ev in events {
        trace.push(ev);
    }
    trace.set_functions(functions);
    trace.set_sampling(sampling);
    (
        trace,
        SalvageStats {
            records,
            events: event_count,
            valid_bytes,
            total_bytes: bytes.len() as u64,
            complete,
            corruption,
        },
    )
}

fn find_block_magic(bytes: &[u8], from: usize) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(4)
        .position(|w| w == BLOCK_MAGIC)
        .map(|i| from + i)
}

// ---------------------------------------------------------------------
// Trace conveniences
// ---------------------------------------------------------------------

impl Trace {
    /// Encodes the trace into the binary format in memory.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut w = BinaryTraceWriter::new(Vec::new()).expect("Vec sink cannot fail");
        for ev in self.events() {
            w.write_event(ev).expect("Vec sink cannot fail");
        }
        if !self.functions().is_empty() {
            w.write_functions(self.functions())
                .expect("Vec sink cannot fail");
        }
        if let Some(info) = self.sampling() {
            w.write_meta(&encode_sampling_meta(&info))
                .expect("Vec sink cannot fail");
        }
        w.finish().expect("Vec sink cannot fail")
    }

    /// Decodes a binary-format trace from bytes (strict).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Corrupt`].
    pub fn decode_binary(bytes: &[u8]) -> Result<Self, HeapMdError> {
        BinaryTraceImage::open(bytes.to_vec())?.to_trace()
    }

    /// Writes the trace in the binary block format, atomically
    /// (write-to-temp + rename via [`crate::persist::write_atomic`]).
    /// For crash-safe incremental recording use [`BinaryTraceWriter`]
    /// directly (or [`crate::Process::stream_trace_to_format`]).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`].
    pub fn save_binary(&self, path: impl AsRef<Path>) -> Result<(), HeapMdError> {
        crate::persist::write_atomic(path, &self.encode_binary())?;
        Ok(())
    }

    /// Strictly reads a binary-format trace from `path`.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] on read failure, [`HeapMdError::Corrupt`]
    /// on damage.
    pub fn load_binary(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        BinaryTraceImage::open_path(path)?.to_trace()
    }

    /// Salvages every intact block of a binary-format trace from
    /// `path`.
    ///
    /// # Errors
    ///
    /// Only [`HeapMdError::Io`].
    pub fn salvage_binary(path: impl AsRef<Path>) -> Result<(Self, SalvageStats), HeapMdError> {
        BinaryTraceReader::salvage(std::fs::File::open(path)?)
    }

    /// Saves in the chosen on-disk format ([`save_stream`](Trace::save_stream)
    /// for JSONL, [`save_binary`](Trace::save_binary) for binary).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn save_format(
        &self,
        path: impl AsRef<Path>,
        format: StreamFormat,
    ) -> Result<(), HeapMdError> {
        match format {
            StreamFormat::Jsonl => self.save_stream(path),
            StreamFormat::Binary => self.save_binary(path),
        }
    }
}

// ---------------------------------------------------------------------
// Artifact sniffing
// ---------------------------------------------------------------------

/// What a file's leading magic bytes say it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Block-based binary trace (`HMDB1`).
    BinaryTrace,
    /// CRC-framed JSONL trace stream (`HMDT1`).
    JsonlTrace,
    /// Whole-document JSON trace (legacy `Trace::save`).
    JsonTrace,
    /// CRC-framed incident bundle (`HMDI1`).
    IncidentBundle,
    /// None of the known magics.
    Unknown,
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArtifactKind::BinaryTrace => "binary trace (HMDB1)",
            ArtifactKind::JsonlTrace => "framed JSONL trace (HMDT1)",
            ArtifactKind::JsonTrace => "JSON trace",
            ArtifactKind::IncidentBundle => "incident bundle (HMDI1)",
            ArtifactKind::Unknown => "unknown artifact",
        };
        f.write_str(s)
    }
}

/// Classifies a byte prefix by magic. Needs at most the first 6 bytes.
pub fn sniff_bytes(prefix: &[u8]) -> ArtifactKind {
    if prefix.starts_with(BINARY_MAGIC) {
        return ArtifactKind::BinaryTrace;
    }
    if prefix.starts_with(crate::trace_stream::STREAM_MAGIC.as_bytes()) {
        return ArtifactKind::JsonlTrace;
    }
    if prefix.starts_with(crate::incident::INCIDENT_MAGIC.as_bytes()) {
        return ArtifactKind::IncidentBundle;
    }
    if prefix
        .iter()
        .find(|b| !b.is_ascii_whitespace())
        .is_some_and(|&b| b == b'{')
    {
        return ArtifactKind::JsonTrace;
    }
    ArtifactKind::Unknown
}

/// Classifies the file at `path` by its magic bytes — never by its
/// extension.
///
/// # Errors
///
/// Returns [`HeapMdError::Io`] when the file cannot be read.
pub fn sniff_file(path: impl AsRef<Path>) -> Result<ArtifactKind, HeapMdError> {
    let mut prefix = [0u8; 6];
    let mut f = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < prefix.len() {
        let n = f.read(&mut prefix[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(sniff_bytes(&prefix[..filled]))
}

/// Loads a trace from `path`, auto-detecting binary, framed JSONL, or
/// plain JSON by magic bytes. In salvage mode a damaged binary or
/// JSONL stream yields what its format's salvage recovers, together
/// with the stats; complete artifacts return `None` stats.
///
/// # Errors
///
/// [`HeapMdError::Io`] when unreadable, [`HeapMdError::Corrupt`] /
/// [`HeapMdError::Serde`] on strict-mode damage, and
/// [`HeapMdError::InvalidInput`] naming the sniffed kind when the file
/// is not a trace at all.
pub fn load_trace_auto(
    path: impl AsRef<Path>,
    salvage: bool,
) -> Result<(Trace, Option<SalvageStats>), HeapMdError> {
    let path = path.as_ref();
    match sniff_file(path)? {
        ArtifactKind::BinaryTrace => {
            if salvage {
                let (trace, stats) = Trace::salvage_binary(path)?;
                Ok((trace, Some(stats)))
            } else {
                Ok((Trace::load_binary(path)?, None))
            }
        }
        ArtifactKind::JsonlTrace => {
            if salvage {
                let (trace, stats) = Trace::salvage_stream(path)?;
                Ok((trace, Some(stats)))
            } else {
                Ok((Trace::load_stream(path)?, None))
            }
        }
        ArtifactKind::JsonTrace => Ok((Trace::load(path)?, None)),
        other => Err(HeapMdError::InvalidInput(format!(
            "{} is not a trace: magic identifies {other}",
            path.display()
        ))),
    }
}

// ---------------------------------------------------------------------
// Sampling metadata payloads
// ---------------------------------------------------------------------

/// Tag prefix of a sampling-outcome meta payload. Meta blocks are
/// opaque by contract; readers key on this tag and ignore payloads they
/// do not recognize, so future meta kinds coexist with old readers.
const SAMPLING_META_TAG: &[u8; 4] = b"SMPL";

/// Encodes a [`SamplingInfo`] as a tagged meta-block payload (see
/// [`BinaryTraceWriter::write_meta`]).
pub fn encode_sampling_meta(info: &SamplingInfo) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + 4 * 10);
    payload.extend_from_slice(SAMPLING_META_TAG);
    put_varint(&mut payload, info.hot_threshold);
    put_varint(&mut payload, info.decimation);
    put_varint(&mut payload, info.kept_stores);
    put_varint(&mut payload, info.total_stores);
    payload
}

/// Decodes a sampling-outcome meta payload. `Ok(None)` for payloads
/// carrying some other (unrecognized) tag — those are not corruption.
///
/// # Errors
///
/// Returns a reason string when the payload carries the sampling tag
/// but is malformed.
pub(crate) fn decode_sampling_meta(payload: &[u8]) -> Result<Option<SamplingInfo>, String> {
    if payload.len() < 4 || &payload[..4] != SAMPLING_META_TAG {
        return Ok(None);
    }
    let mut pos = 4usize;
    let hot_threshold = get_varint(payload, &mut pos)?;
    let decimation = get_varint(payload, &mut pos)?;
    let kept_stores = get_varint(payload, &mut pos)?;
    let total_stores = get_varint(payload, &mut pos)?;
    if pos != payload.len() {
        return Err("sampling meta payload carries trailing bytes".into());
    }
    if decimation == 0 {
        return Err("sampling meta declares decimation 0".into());
    }
    if kept_stores > total_stores {
        return Err(format!(
            "sampling meta declares {kept_stores} kept of {total_stores} total stores"
        ));
    }
    Ok(Some(SamplingInfo {
        hot_threshold,
        decimation,
        kept_stores,
        total_stores,
    }))
}

// ---------------------------------------------------------------------
// Meta container (CRC-protected checkpoint payloads)
// ---------------------------------------------------------------------

/// Wraps an opaque payload in the binary container: header + one meta
/// block + footer. Gives non-trace artifacts (training checkpoints)
/// the same CRC + version protection as traces.
pub fn encode_meta_container(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(BINARY_MAGIC);
    out.push(BINARY_FORMAT_VERSION);
    out.push(0);
    let index_offset_entry = out.len() as u64;
    put_block(&mut out, KIND_META, 1, payload);
    let index_offset = out.len() as u64;
    let index = BlockIndex {
        blocks: vec![BlockEntry {
            offset: index_offset_entry,
            kind: KIND_META,
            count: 1,
        }],
        total_events: 0,
        total_fn_enters: 0,
    };
    let block = encode_index_block(&index);
    out.extend_from_slice(&block);
    out.extend_from_slice(&encode_footer(index_offset));
    out
}

/// Unwraps a meta container written by [`encode_meta_container`],
/// returning the payload.
///
/// # Errors
///
/// Returns [`HeapMdError::Corrupt`] on any framing or CRC violation.
pub fn decode_meta_container(bytes: &[u8]) -> Result<Vec<u8>, HeapMdError> {
    check_header(bytes)?;
    let (kind, count, payload, _) =
        parse_block(bytes, 8).map_err(|reason| HeapMdError::corrupt(8, reason))?;
    if kind != KIND_META || count != 1 {
        return Err(HeapMdError::corrupt(
            8,
            format!("expected one meta block, found kind {kind} count {count}"),
        ));
    }
    // The footer/index are advisory for a single-block container, but a
    // valid one must still parse — truncation is damage, not a variant.
    parse_footer(bytes).map_err(|reason| HeapMdError::corrupt(bytes.len() as u64, reason))?;
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------------
// Pipelined replay / check
// ---------------------------------------------------------------------

/// Drives `consume` with decoded event blocks while a decoder thread
/// works ahead over a bounded channel. Buffers are recycled through a
/// return channel, so steady state allocates nothing per block.
fn pipeline_blocks<E: Send>(
    image: &BinaryTraceImage,
    mut consume: impl FnMut(&[HeapEvent]) -> Result<(), E>,
) -> Result<(), HeapMdError>
where
    HeapMdError: From<E>,
{
    let (full_tx, full_rx) = mpsc::sync_channel::<Vec<HeapEvent>>(PIPELINE_DEPTH);
    let (empty_tx, empty_rx) = mpsc::channel::<Vec<HeapEvent>>();
    for _ in 0..=PIPELINE_DEPTH {
        empty_tx
            .send(Vec::with_capacity(EVENTS_PER_BLOCK))
            .expect("receiver is alive");
    }
    std::thread::scope(|scope| -> Result<(), HeapMdError> {
        let decoder = scope.spawn(move || -> Result<(), HeapMdError> {
            for entry in image.event_blocks() {
                let mut buf = empty_rx.recv().expect("ingest side holds the sender");
                image.decode_block_into(entry, &mut buf)?;
                if full_tx.send(buf).is_err() {
                    // Ingestion bailed; its error wins.
                    return Ok(());
                }
            }
            Ok(())
        });
        let mut ingest_result: Result<(), HeapMdError> = Ok(());
        for buf in full_rx {
            if ingest_result.is_ok() {
                ingest_result = consume(&buf).map_err(HeapMdError::from);
            }
            // Keep draining (and recycling) so the decoder never blocks
            // on a full channel after an ingest error.
            let _ = empty_tx.send(buf);
        }
        decoder.join().expect("decoder thread panicked")?;
        ingest_result
    })
}

/// Replays a binary trace image end to end — decoder thread + graph
/// ingestion pipeline — recomputing the metric report under
/// `settings`, exactly as [`Trace::replay`] would on the decoded
/// events.
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] on block damage,
/// [`HeapMdError::InvalidInput`] on out-of-table function ids.
pub fn replay_binary(
    image: &BinaryTraceImage,
    settings: &Settings,
    run: impl Into<String>,
) -> Result<MetricReport, HeapMdError> {
    let functions = image.functions()?;
    let table_len = functions.len();
    let rate = image.sampling()?.map_or(1.0, |s| s.rate());
    let mut replayer = Replayer::new(settings.clone(), &functions);
    pipeline_blocks(image, |events| -> Result<(), HeapMdError> {
        if table_len > 0 {
            validate_block_function_ids(events, table_len)?;
        }
        replayer.ingest_batch(events);
        Ok(())
    })?;
    Ok(MetricReport::with_sample_rate(
        run,
        replayer.take_samples(),
        rate,
    ))
}

/// Replays a binary trace image on the calling thread: each block
/// decodes into one reused buffer and is ingested immediately — no
/// decoder thread, no channel hand-off.
///
/// On machines with spare cores the pipelined [`replay_binary`] hides
/// decode behind ingest; on saturated or single-core hosts the fused
/// loop wins because it spends nothing on synchronization. This is the
/// `--shards 1` engine of the sharded replay driver.
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] / [`HeapMdError::InvalidInput`], exactly as
/// [`replay_binary`].
pub fn replay_binary_fused(
    image: &BinaryTraceImage,
    settings: &Settings,
    run: impl Into<String>,
) -> Result<MetricReport, HeapMdError> {
    let functions = image.functions()?;
    let table_len = functions.len();
    let rate = image.sampling()?.map_or(1.0, |s| s.rate());
    let mut replayer = Replayer::new(settings.clone(), &functions);
    let mut buf = Vec::with_capacity(EVENTS_PER_BLOCK);
    for entry in image.event_blocks() {
        image.decode_block_into(entry, &mut buf)?;
        if table_len > 0 {
            validate_block_function_ids(&buf, table_len)?;
        }
        replayer.ingest_batch(&buf);
    }
    Ok(MetricReport::with_sample_rate(
        run,
        replayer.take_samples(),
        rate,
    ))
}

/// [`replay_binary_fused`] with a live [`swat::SampledIngest`] filter
/// in front of graph ingestion: re-samples the (unsampled) recorded
/// stream under `config`, exactly as a production process monitoring
/// behind the filter would have seen it. Returns the report — whose
/// `sample_rate` is the *measured* rate — plus the full
/// [`SamplingInfo`].
///
/// The result is bit-identical to recording the trace through a
/// sampled [`crate::Process`] and replaying that artifact: with
/// `decimation == 1` it matches [`replay_binary_fused`] sample for
/// sample.
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] / [`HeapMdError::InvalidInput`], exactly as
/// [`replay_binary_fused`].
pub fn replay_binary_fused_sampled(
    image: &BinaryTraceImage,
    settings: &Settings,
    run: impl Into<String>,
    config: SamplerConfig,
) -> Result<(MetricReport, SamplingInfo), HeapMdError> {
    let functions = image.functions()?;
    let table_len = functions.len();
    let mut replayer = Replayer::new(settings.clone(), &functions);
    replayer.enable_sampling(config);
    let mut buf = Vec::with_capacity(EVENTS_PER_BLOCK);
    for entry in image.event_blocks() {
        image.decode_block_into(entry, &mut buf)?;
        if table_len > 0 {
            validate_block_function_ids(&buf, table_len)?;
        }
        replayer.ingest_batch(&buf);
    }
    let info = replayer
        .sampling_info()
        .expect("sampling was enabled above");
    let samples = replayer.take_samples();
    Ok((MetricReport::with_sample_rate(run, samples, info.rate()), info))
}

/// Checks a binary trace image against `model` post-mortem through the
/// same pipeline. The trailing index supplies the total `FnEnter`
/// count, so the startup-skip alignment of [`Trace::check`] holds
/// without a decode pre-pass.
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] / [`HeapMdError::InvalidInput`].
pub fn check_binary(
    image: &BinaryTraceImage,
    model: &HeapModel,
    settings: &Settings,
) -> Result<Vec<BugReport>, HeapMdError> {
    check_binary_sharded(image, model, settings, 1)
}

/// [`check_binary`] over a sharded graph image: the replayer's heap
/// graph is partitioned into `shards` address-range shards (`<= 1` is
/// the classic single-slab layout). Detection runs inline on the
/// replay thread either way — the detector observes every event — and
/// verdicts are bit-identical at every shard count, so a pool checking
/// fewer traces than it has job slots can hand its idle capacity to
/// intra-trace shards without perturbing results.
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] / [`HeapMdError::InvalidInput`].
pub fn check_binary_sharded(
    image: &BinaryTraceImage,
    model: &HeapModel,
    settings: &Settings,
    shards: usize,
) -> Result<Vec<BugReport>, HeapMdError> {
    let functions = image.functions()?;
    let table_len = functions.len();
    let total_samples = (image.index().total_fn_enters / settings.frq) as usize;
    let mut settings = settings.clone();
    settings.warmup_samples = settings
        .warmup_samples
        .max(settings.trim_count(total_samples));
    let mut detector = crate::detector::AnomalyDetector::new(model.clone(), settings.clone());
    let mut replayer = Replayer::with_shards(settings, &functions, shards);
    // An already-decimated recording carries its measured rate in a
    // meta block; the detector widens its ranges by it.
    replayer.set_rate_override(image.sampling()?.map_or(1.0, |s| s.rate()));
    pipeline_blocks(image, |events| -> Result<(), HeapMdError> {
        if table_len > 0 {
            validate_block_function_ids(events, table_len)?;
        }
        let mut monitors: [&mut dyn crate::monitor::Monitor; 1] = [&mut detector];
        for ev in events {
            replayer.step(ev, &mut monitors);
        }
        Ok(())
    })?;
    let mut monitors: [&mut dyn crate::monitor::Monitor; 1] = [&mut detector];
    replayer.finish(&mut monitors);
    Ok(detector.take_bugs())
}

/// [`check_binary_sharded`] with a live [`swat::SampledIngest`] filter
/// re-sampling the (unsampled) stream under `config` before detection:
/// the production-overhead verdict for a full-fidelity recording. The
/// detector observes the measured effective rate as it evolves and
/// widens its calibrated ranges accordingly. With `decimation == 1`
/// the verdicts are bit-identical to [`check_binary_sharded`].
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] / [`HeapMdError::InvalidInput`].
pub fn check_binary_sharded_sampled(
    image: &BinaryTraceImage,
    model: &HeapModel,
    settings: &Settings,
    shards: usize,
    config: SamplerConfig,
) -> Result<(Vec<BugReport>, SamplingInfo), HeapMdError> {
    let functions = image.functions()?;
    let table_len = functions.len();
    let total_samples = (image.index().total_fn_enters / settings.frq) as usize;
    let mut settings = settings.clone();
    settings.warmup_samples = settings
        .warmup_samples
        .max(settings.trim_count(total_samples));
    let mut detector = crate::detector::AnomalyDetector::new(model.clone(), settings.clone());
    let mut replayer = Replayer::with_shards(settings, &functions, shards);
    replayer.enable_sampling(config);
    pipeline_blocks(image, |events| -> Result<(), HeapMdError> {
        if table_len > 0 {
            validate_block_function_ids(events, table_len)?;
        }
        let mut monitors: [&mut dyn crate::monitor::Monitor; 1] = [&mut detector];
        for ev in events {
            replayer.step(ev, &mut monitors);
        }
        Ok(())
    })?;
    let mut monitors: [&mut dyn crate::monitor::Monitor; 1] = [&mut detector];
    replayer.finish(&mut monitors);
    let info = replayer
        .sampling_info()
        .expect("sampling was enabled above");
    Ok((detector.take_bugs(), info))
}

pub(crate) fn validate_block_function_ids(
    events: &[HeapEvent],
    table_len: usize,
) -> Result<(), HeapMdError> {
    for ev in events {
        let func = match *ev {
            HeapEvent::FnEnter { func } | HeapEvent::FnExit { func } => func,
            _ => continue,
        };
        if func as usize >= table_len {
            return Err(HeapMdError::InvalidInput(format!(
                "event references function id {func}, but the trace interns \
                 only {table_len} function names"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Multi-trace checking pool
// ---------------------------------------------------------------------

/// Checks `traces` against `model` on up to `jobs` scoped worker
/// threads, returning per-trace results **in input order** regardless
/// of scheduling — the same determinism discipline as
/// `ModelBuilder::add_runs_parallel`: each worker writes into slots
/// addressed by input index, and no result is observed out of order.
///
/// A failing trace yields its error in its slot; it never aborts the
/// other checks.
pub fn check_traces_parallel(
    traces: &[Trace],
    model: &HeapModel,
    settings: &Settings,
    jobs: usize,
) -> Vec<Result<Vec<BugReport>, HeapMdError>> {
    run_pool(traces.len(), jobs, |i| traces[i].check(model, settings))
}

/// Loads (auto-detecting format) and checks N trace files across a
/// scoped pool, merging results in input order. With `salvage`, a
/// damaged stream contributes whatever its format's salvage recovers.
///
/// When the pool has more job slots than traces, the spare capacity is
/// not left idle: each binary strict check splits its graph image into
/// `jobs / n` intra-trace shards (see [`check_binary_sharded`]).
/// Verdicts are shard-invariant and results still land by input index,
/// so the idle-pool split never perturbs output order or content.
pub fn check_paths_parallel(
    paths: &[std::path::PathBuf],
    model: &HeapModel,
    settings: &Settings,
    jobs: usize,
    salvage: bool,
) -> Vec<Result<Vec<BugReport>, HeapMdError>> {
    check_paths_parallel_sharded(paths, model, settings, jobs, salvage, 0)
}

/// [`check_paths_parallel`] with an explicit per-trace shard count:
/// `0` keeps the automatic idle-capacity split, any other value forces
/// that many intra-trace shards on every binary strict check.
pub fn check_paths_parallel_sharded(
    paths: &[std::path::PathBuf],
    model: &HeapModel,
    settings: &Settings,
    jobs: usize,
    salvage: bool,
    shards: usize,
) -> Vec<Result<Vec<BugReport>, HeapMdError>> {
    let n = paths.len();
    let per_trace_shards = if shards > 0 {
        shards
    } else if n > 0 && jobs > n {
        jobs / n
    } else {
        1
    };
    if per_trace_shards > 1 {
        heapmd_obs::gauge_set!("check_pool_trace_shards", per_trace_shards as i64);
    }
    run_pool(n, jobs, |i| {
        let path = &paths[i];
        // Binary strict checks go through the pipelined engine (the
        // decoder overlaps the detector); everything else decodes to an
        // in-memory trace first.
        if !salvage && sniff_file(path)? == ArtifactKind::BinaryTrace {
            let image = BinaryTraceImage::open_path(path)?;
            return check_binary_sharded(&image, model, settings, per_trace_shards);
        }
        let (trace, _) = load_trace_auto(path, salvage)?;
        trace.check(model, settings)
    })
}

/// Chunked scoped-thread fan-out with input-order merge: worker `w`
/// owns a contiguous slot range, results land by index.
fn run_pool<T: Send>(n: usize, jobs: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = jobs.max(1).min(n.max(1));
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(work(i));
        }
    } else {
        let clock = heapmd_obs::throughput::stage_clock();
        let chunk = n.div_ceil(workers);
        let work = &work;
        std::thread::scope(|scope| {
            for (w, slots) in results.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(work(w * chunk + j));
                    }
                });
            }
        });
        if let Some(t0) = clock {
            heapmd_obs::throughput::record_stage(
                "check_pool",
                n as u64,
                t0.elapsed().as_nanos() as u64,
            );
            heapmd_obs::gauge_set!("check_pool_jobs", workers as i64);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

// ---------------------------------------------------------------------
// Wire reader (live streams)
// ---------------------------------------------------------------------

/// One decoded frame from a live binary trace stream (see
/// [`WireReader`]).
#[derive(Debug)]
pub enum WireFrame {
    /// A block of heap events.
    Events(Vec<HeapEvent>),
    /// The interned function-name table (written at stream finish).
    Functions(Vec<String>),
    /// A metadata block: the raw (CRC-verified) payload. Replay needs
    /// nothing from it, but the serving layer decodes recognized tags
    /// (e.g. the sampling outcome via [`encode_sampling_meta`]).
    Meta(Vec<u8>),
    /// The trailing index plus a verified footer: the clean end of the
    /// stream. No further frames follow.
    End(BlockIndex),
}

/// Incremental frame-at-a-time reader for `.hmdt` bytes arriving over a
/// socket (the `heapmd serve` wire format).
///
/// Unlike [`BinaryTraceImage`], which wants the whole file, this reads
/// exactly one length-framed block per [`next_frame`](Self::next_frame)
/// call, CRC-checking each before decoding, so a daemon can replay a
/// tenant's stream while the tenant is still running. Any structural
/// damage — truncation, a flipped bit, a bogus length — surfaces as
/// [`HeapMdError::Corrupt`] with the stream offset, never a panic, so
/// the serving layer can evict exactly the offending stream.
pub struct WireReader<R: Read> {
    inner: R,
    consumed: u64,
    header_done: bool,
    finished: bool,
    /// When teeing, every byte [`fill`](Self::fill) consumes is also
    /// appended here — how the serving session layer captures the raw
    /// block bytes it journals.
    tee: Option<Vec<u8>>,
}

impl<R: Read> WireReader<R> {
    /// Wraps a byte stream positioned at the 8-byte `.hmdt` header.
    pub fn new(inner: R) -> Self {
        WireReader {
            inner,
            consumed: 0,
            header_done: false,
            finished: false,
            tee: None,
        }
    }

    /// Wraps a byte stream that resumes mid-trace: the header was
    /// consumed in an earlier incarnation of the stream, and the next
    /// block starts at logical offset `offset`. Offsets embedded in the
    /// trailing index keep validating as if the stream had never been
    /// interrupted — the session layer of `heapmd serve` reconnects
    /// this way.
    pub fn resume(inner: R, offset: u64) -> Self {
        WireReader {
            inner,
            consumed: offset,
            header_done: true,
            finished: false,
            tee: None,
        }
    }

    /// Bytes consumed from the stream so far.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }

    /// Whether the stream reached its verified end frame.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Mutable access to the wrapped stream, for protocols that
    /// interleave out-of-band bytes (sequence numbers, acks) between
    /// frames. Bytes moved through it do not count as consumed.
    pub(crate) fn stream_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Rewinds the logical offset to `offset` (a frame boundary), as
    /// when a retransmitted duplicate frame is read and discarded.
    pub(crate) fn rewind(&mut self, offset: u64) {
        self.consumed = offset;
    }

    fn fill(&mut self, buf: &mut [u8]) -> Result<(), HeapMdError> {
        self.inner.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                HeapMdError::corrupt(self.consumed, "stream truncated")
            }
            _ => HeapMdError::from(e),
        })?;
        self.consumed += buf.len() as u64;
        if let Some(tee) = &mut self.tee {
            tee.extend_from_slice(buf);
        }
        Ok(())
    }

    /// Like [`next_frame`](Self::next_frame), additionally returning
    /// the frame's raw wire bytes (block header + payload, plus the
    /// footer for the end frame) so the caller can journal them
    /// verbatim.
    ///
    /// # Errors
    ///
    /// Same as [`next_frame`](Self::next_frame).
    pub fn next_frame_raw(&mut self) -> Result<(WireFrame, Vec<u8>), HeapMdError> {
        self.tee = Some(Vec::new());
        let result = self.next_frame();
        let raw = self.tee.take().unwrap_or_default();
        result.map(|frame| (frame, raw))
    }

    /// Reads, verifies, and decodes the next frame.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] on transport failure, [`HeapMdError::Corrupt`]
    /// on structural damage or on any read past [`WireFrame::End`].
    pub fn next_frame(&mut self) -> Result<WireFrame, HeapMdError> {
        if self.finished {
            return Err(HeapMdError::corrupt(
                self.consumed,
                "read past end of stream",
            ));
        }
        if !self.header_done {
            let mut header = [0u8; 8];
            self.fill(&mut header)?;
            check_header(&header)?;
            self.header_done = true;
        }
        let block_start = self.consumed;
        let mut head = [0u8; BLOCK_HEADER_LEN];
        self.fill(&mut head)?;
        if head[..4] != BLOCK_MAGIC {
            return Err(HeapMdError::corrupt(block_start, "bad block magic"));
        }
        let kind = head[4];
        let count = u32::from_le_bytes(head[5..9].try_into().unwrap());
        let len = u32::from_le_bytes(head[9..13].try_into().unwrap());
        let declared_crc = u32::from_le_bytes(head[13..17].try_into().unwrap());
        if len > MAX_BLOCK_LEN {
            return Err(HeapMdError::corrupt(
                block_start,
                format!("block length {len} exceeds cap {MAX_BLOCK_LEN}"),
            ));
        }
        if !(KIND_EVENTS..=KIND_META).contains(&kind) {
            return Err(HeapMdError::corrupt(
                block_start,
                format!("unknown block kind {kind}"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.fill(&mut payload)?;
        let actual = crc32(&payload);
        if actual != declared_crc {
            return Err(HeapMdError::corrupt(
                block_start,
                format!(
                    "block checksum mismatch: declared {declared_crc:08x}, computed {actual:08x}"
                ),
            ));
        }
        match kind {
            KIND_EVENTS => {
                let mut events = Vec::with_capacity(count as usize);
                decode_events_payload(&payload, count, &mut events)
                    .map_err(|r| HeapMdError::corrupt(block_start, r))?;
                Ok(WireFrame::Events(events))
            }
            KIND_FUNCTIONS => decode_functions_payload(&payload, count)
                .map(WireFrame::Functions)
                .map_err(|r| HeapMdError::corrupt(block_start, r)),
            KIND_META => Ok(WireFrame::Meta(payload)),
            _ => {
                let index = decode_index_payload(&payload, count)
                    .map_err(|r| HeapMdError::corrupt(block_start, r))?;
                let mut footer = [0u8; FOOTER_LEN];
                self.fill(&mut footer)?;
                let index_offset =
                    parse_footer(&footer).map_err(|r| HeapMdError::corrupt(block_start, r))?;
                if index_offset != block_start {
                    return Err(HeapMdError::corrupt(
                        block_start,
                        format!(
                            "footer points at index offset {index_offset}, stream has it at {block_start}"
                        ),
                    ));
                }
                self.finished = true;
                Ok(WireFrame::End(index))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    fn settings(frq: u64) -> Settings {
        Settings::builder().frq(frq).build().unwrap()
    }

    fn sample_trace(n: usize) -> Trace {
        let mut p = Process::new(settings(5));
        p.enable_trace();
        let mut prev = None;
        for i in 0..n {
            p.enter("build");
            let node = p.malloc(16 + (i % 3) * 8, "node").unwrap();
            if let Some(prev) = prev {
                p.write_ptr(node.offset(8), prev).unwrap();
            }
            if i % 7 == 0 {
                p.write_scalar(node).unwrap();
            }
            prev = Some(node);
            p.leave();
        }
        let mut trace = p.take_trace().unwrap();
        trace.set_functions(vec!["build".into()]);
        trace
    }

    #[test]
    fn varints_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn binary_round_trips_bit_identically() {
        let trace = sample_trace(500);
        let bytes = trace.encode_binary();
        let back = Trace::decode_binary(&bytes).unwrap();
        assert_eq!(back, trace);
        // Compact: the binary form must be far smaller than JSON.
        let json = trace.to_json().unwrap();
        assert!(
            bytes.len() * 4 < json.len(),
            "binary {} bytes vs json {} bytes",
            bytes.len(),
            json.len()
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new();
        let back = Trace::decode_binary(&trace.encode_binary()).unwrap();
        assert!(back.is_empty());
        assert!(back.functions().is_empty());
    }

    #[test]
    fn multi_block_traces_round_trip() {
        // > EVENTS_PER_BLOCK events forces at least two event blocks.
        let trace = sample_trace(EVENTS_PER_BLOCK / 2 + 200);
        assert!(trace.len() > EVENTS_PER_BLOCK);
        let bytes = trace.encode_binary();
        let image = BinaryTraceImage::open(bytes).unwrap();
        assert!(image.event_blocks().count() >= 2);
        assert_eq!(image.index().total_events, trace.len() as u64);
        assert_eq!(image.to_trace().unwrap(), trace);
    }

    #[test]
    fn index_counts_fn_enters() {
        let trace = sample_trace(100);
        let expect = trace
            .events()
            .iter()
            .filter(|e| matches!(e, HeapEvent::FnEnter { .. }))
            .count() as u64;
        let image = BinaryTraceImage::open(trace.encode_binary()).unwrap();
        assert_eq!(image.index().total_fn_enters, expect);
    }

    #[test]
    fn truncated_binary_fails_strict_and_salvages_blocks() {
        let trace = sample_trace(EVENTS_PER_BLOCK);
        let bytes = trace.encode_binary();
        let cut = bytes.len() * 2 / 3;
        let damaged = &bytes[..cut];
        assert!(matches!(
            Trace::decode_binary(damaged),
            Err(HeapMdError::Corrupt { .. })
        ));
        let (salvaged, stats) = BinaryTraceReader::salvage(damaged).unwrap();
        assert!(!stats.complete);
        assert!(stats.corruption.is_some());
        assert!(!salvaged.is_empty(), "intact leading blocks recovered");
        assert_eq!(
            salvaged.events(),
            &trace.events()[..salvaged.len()],
            "recovered events are a prefix (damage hit the tail)"
        );
    }

    #[test]
    fn mid_stream_damage_recovers_blocks_after_the_hole() {
        let trace = sample_trace(3 * EVENTS_PER_BLOCK / 2);
        let bytes = trace.encode_binary();
        let image = BinaryTraceImage::open(bytes.clone()).unwrap();
        let blocks: Vec<BlockEntry> = image.event_blocks().copied().collect();
        assert!(blocks.len() >= 2, "need multiple blocks for this test");
        // Corrupt one byte inside the FIRST event block's payload.
        let mut damaged = bytes.clone();
        damaged[blocks[0].offset as usize + BLOCK_HEADER_LEN + 10] ^= 0xFF;
        let (salvaged, stats) = BinaryTraceReader::salvage(&damaged[..]).unwrap();
        assert!(!stats.complete);
        // Everything but the first block survives: later blocks decode
        // independently thanks to per-block delta state.
        let lost = blocks[0].count as usize;
        assert_eq!(salvaged.len(), trace.len() - lost);
        assert_eq!(salvaged.events(), &trace.events()[lost..]);
        assert_eq!(salvaged.functions(), trace.functions());
    }

    #[test]
    fn garbage_salvages_to_empty_without_panicking() {
        let (trace, stats) = BinaryTraceReader::salvage(&b"not a binary trace"[..]).unwrap();
        assert!(trace.is_empty());
        assert!(!stats.complete);
        assert!(stats.corruption.is_some());
    }

    #[test]
    fn future_version_is_rejected() {
        let trace = sample_trace(20);
        let mut bytes = trace.encode_binary();
        bytes[6] = BINARY_FORMAT_VERSION + 1;
        assert!(matches!(
            Trace::decode_binary(&bytes),
            Err(HeapMdError::Corrupt { .. })
        ));
    }

    #[test]
    fn save_and_load_binary_files_round_trip() {
        let trace = sample_trace(50);
        let dir = std::env::temp_dir().join("heapmd-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hmdt");
        trace.save_binary(&path).unwrap();
        assert_eq!(sniff_file(&path).unwrap(), ArtifactKind::BinaryTrace);
        let back = Trace::load_binary(&path).unwrap();
        assert_eq!(back, trace);
        let (salvaged, stats) = Trace::salvage_binary(&path).unwrap();
        assert_eq!(salvaged, trace);
        assert!(stats.complete);
        let (auto, stats) = load_trace_auto(&path, false).unwrap();
        assert_eq!(auto, trace);
        assert!(stats.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sniffing_distinguishes_every_format() {
        assert_eq!(sniff_bytes(b"HMDB1\n\x01\x00"), ArtifactKind::BinaryTrace);
        assert_eq!(sniff_bytes(b"HMDT1 000"), ArtifactKind::JsonlTrace);
        assert_eq!(sniff_bytes(b"HMDI1 000"), ArtifactKind::IncidentBundle);
        assert_eq!(sniff_bytes(b"  {\"ev\":1}"), ArtifactKind::JsonTrace);
        assert_eq!(sniff_bytes(b"ELF\x7f"), ArtifactKind::Unknown);
        assert_eq!(sniff_bytes(b""), ArtifactKind::Unknown);
    }

    #[test]
    fn load_trace_auto_rejects_non_traces_with_typed_error() {
        let dir = std::env::temp_dir().join("heapmd-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle-like");
        std::fs::write(&path, b"HMDI1 00000001 00000000 x\n").unwrap();
        assert!(matches!(
            load_trace_auto(&path, false),
            Err(HeapMdError::InvalidInput(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_replay_matches_in_memory_replay() {
        let trace = sample_trace(EVENTS_PER_BLOCK + 300);
        let settings = settings(5);
        let expected = trace.replay(&settings, "mem").unwrap();
        let image = BinaryTraceImage::open(trace.encode_binary()).unwrap();
        let piped = replay_binary(&image, &settings, "piped").unwrap();
        assert_eq!(expected.samples, piped.samples);
    }

    #[test]
    fn pipelined_check_matches_in_memory_check() {
        use crate::model::{HeapModel, StableMetric, MODEL_FORMAT_VERSION};
        use heap_graph::MetricKind;

        let model = HeapModel {
            version: MODEL_FORMAT_VERSION,
            program: "t".into(),
            settings: Settings::default(),
            stable: vec![StableMetric {
                kind: MetricKind::Roots,
                min: 0.0,
                max: 5.0,
                avg_change: 0.0,
                std_change: 0.5,
                stable_runs: 3,
                total_runs: 3,
            }],
            unstable: vec![],
            locally_stable: vec![],
            candidate_stable: vec![],
            candidate_unstable: vec![],
            sample_rate: 1.0,
            training_runs: 3,
        };
        let settings = Settings::builder()
            .frq(5)
            .warmup_samples(1)
            .build()
            .unwrap();
        // Buggy run: isolated nodes only (Roots = 100 > 5).
        let mut p = Process::new(settings.clone());
        p.enable_trace();
        for _ in 0..EVENTS_PER_BLOCK {
            p.enter("loop");
            p.malloc(16, "iso").unwrap();
            p.leave();
        }
        let trace = p.take_trace().unwrap();
        let expected = trace.check(&model, &settings).unwrap();
        assert!(!expected.is_empty());
        let image = BinaryTraceImage::open(trace.encode_binary()).unwrap();
        let piped = check_binary(&image, &model, &settings).unwrap();
        assert_eq!(expected, piped);
    }

    #[test]
    fn out_of_table_function_ids_are_invalid_input_in_pipeline() {
        let mut trace = sample_trace(20);
        trace.push(HeapEvent::FnEnter { func: 999 });
        let image = BinaryTraceImage::open(trace.encode_binary()).unwrap();
        assert!(matches!(
            replay_binary(&image, &settings(5), "bad"),
            Err(HeapMdError::InvalidInput(_))
        ));
    }

    #[test]
    fn check_pool_merges_in_input_order() {
        use crate::model::{HeapModel, StableMetric, MODEL_FORMAT_VERSION};
        use heap_graph::MetricKind;

        let model = HeapModel {
            version: MODEL_FORMAT_VERSION,
            program: "t".into(),
            settings: Settings::default(),
            stable: vec![StableMetric {
                kind: MetricKind::Roots,
                min: 0.0,
                max: 5.0,
                avg_change: 0.0,
                std_change: 0.5,
                stable_runs: 3,
                total_runs: 3,
            }],
            unstable: vec![],
            locally_stable: vec![],
            candidate_stable: vec![],
            candidate_unstable: vec![],
            sample_rate: 1.0,
            training_runs: 3,
        };
        let settings = Settings::builder()
            .frq(5)
            .warmup_samples(1)
            .build()
            .unwrap();
        // Alternate clean (linked) and buggy (isolated) traces so the
        // expected verdicts differ per index.
        let traces: Vec<Trace> = (0..6)
            .map(|i| {
                let mut p = Process::new(settings.clone());
                p.enable_trace();
                let mut prev = None;
                for _ in 0..60 {
                    p.enter("loop");
                    let node = p.malloc(16, "n").unwrap();
                    if i % 2 == 0 {
                        if let Some(prev) = prev {
                            p.write_ptr(node.offset(8), prev).unwrap();
                        }
                        prev = Some(node);
                    }
                    p.leave();
                }
                p.take_trace().unwrap()
            })
            .collect();
        let sequential: Vec<_> = traces
            .iter()
            .map(|t| t.check(&model, &settings).unwrap())
            .collect();
        for jobs in [1, 2, 8] {
            let pooled = check_traces_parallel(&traces, &model, &settings, jobs);
            let pooled: Vec<_> = pooled.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(pooled, sequential, "jobs={jobs} must merge in order");
        }
    }

    #[test]
    fn meta_container_round_trips_and_detects_damage() {
        let payload = br#"{"hello":"world","n":42}"#;
        let bytes = encode_meta_container(payload);
        assert_eq!(sniff_bytes(&bytes), ArtifactKind::BinaryTrace);
        assert_eq!(decode_meta_container(&bytes).unwrap(), payload);
        for i in [9usize, bytes.len() / 2, bytes.len() - 2] {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x04;
            assert!(
                matches!(
                    decode_meta_container(&damaged),
                    Err(HeapMdError::Corrupt { .. })
                ),
                "flip at byte {i} must be caught"
            );
        }
    }

    #[test]
    fn stream_format_parses_flag_values() {
        assert_eq!(StreamFormat::parse("binary").unwrap(), StreamFormat::Binary);
        assert_eq!(StreamFormat::parse("jsonl").unwrap(), StreamFormat::Jsonl);
        assert!(StreamFormat::parse("yaml").is_err());
    }

    #[test]
    fn wire_reader_replays_a_stream_frame_by_frame() {
        let trace = sample_trace(EVENTS_PER_BLOCK / 2 + 200);
        let bytes = trace.encode_binary();
        let mut reader = WireReader::new(&bytes[..]);
        let mut events = Vec::new();
        let mut functions = Vec::new();
        let index = loop {
            match reader.next_frame().expect("intact stream") {
                WireFrame::Events(mut v) => events.append(&mut v),
                WireFrame::Functions(f) => functions = f,
                WireFrame::Meta(_) => {}
                WireFrame::End(index) => break index,
            }
        };
        assert!(reader.is_finished());
        assert_eq!(events, trace.events());
        assert_eq!(functions, trace.functions());
        assert_eq!(index.total_events, trace.len() as u64);
        assert_eq!(reader.bytes_consumed(), bytes.len() as u64);
        assert!(
            reader.next_frame().is_err(),
            "reading past End must error, not loop"
        );
    }

    #[test]
    fn wire_reader_rejects_truncation_and_bit_flips_without_panicking() {
        let trace = sample_trace(300);
        let bytes = trace.encode_binary();
        // Truncate at every prefix length that cuts a structure short.
        for cut in [3usize, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut reader = WireReader::new(&bytes[..cut.min(bytes.len())]);
            let err = loop {
                match reader.next_frame() {
                    Ok(WireFrame::End(_)) => panic!("truncated stream reported a clean end"),
                    Ok(_) => continue,
                    Err(e) => break e,
                }
            };
            assert!(
                matches!(err, HeapMdError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
        // Flip one bit at a spread of offsets; every damaged stream
        // must end in Corrupt (bits in skipped regions may still decode
        // — those stop at the footer offset check at the latest).
        for pos in (0..bytes.len()).step_by(bytes.len() / 13 + 1) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let mut reader = WireReader::new(&bad[..]);
            for _ in 0..1000 {
                match reader.next_frame() {
                    Ok(WireFrame::End(_)) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
        }
    }
}
