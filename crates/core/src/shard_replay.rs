//! Sharded single-trace replay: parallel degree accounting behind a
//! sequential router.
//!
//! The heap-graph's *relational* state (address resolution, slot
//! re-binding, dangling bookkeeping) is serially entangled — event N's
//! effect depends on the exact graph left by event N-1, across shard
//! boundaries. Its *counting* state (per-shard degree histograms) is
//! not: histogram updates commute into per-shard streams that can be
//! applied by independent workers and merged exactly at metric
//! computation points (see `DESIGN.md` §13).
//!
//! This driver exploits that split. The calling thread is the
//! **router**: it decodes `.hmdt` blocks (zero-copy from the mmap'd
//! image), applies every event to a detached [`ShardedGraph`], and
//! ships the buffered per-shard [`DegreeOp`] batches over bounded
//! channels to one worker thread per shard. Workers own their shard's
//! [`DegreeHistogram`] and record per-shard busy time through the
//! `shard_worker_{i}` observability stage counters. At every metric
//! computation point the router runs a **barrier merge**: it flushes
//! pending ops, collects each worker's histogram, merges them (exact —
//! shards partition the node set), installs the merge, and samples.
//!
//! Samples are bit-identical to [`replay_binary_fused`] at every shard
//! count: per-shard op order equals router order, the barrier drains
//! every queue before reading, and node/edge/dangling counts never
//! leave the router.

use std::sync::mpsc;

use heap_graph::{DegreeHistogram, DegreeOp, ShardedGraph, MAX_SHARDS};
use sim_heap::HeapEvent;

use crate::error::HeapMdError;
use crate::report::{MetricReport, MetricSample};
use crate::settings::Settings;
use crate::trace_codec::{
    replay_binary_fused, validate_block_function_ids, BinaryTraceImage, EVENTS_PER_BLOCK,
};

/// Bound of each per-shard op channel, in batches. Deep enough to keep
/// workers busy across a decode stall; shallow enough that a slow
/// worker exerts backpressure instead of ballooning memory.
const SHARD_CHANNEL_DEPTH: usize = 4;

enum ShardMsg {
    /// A batch of degree ops to fold into the worker's histogram.
    Ops(Vec<DegreeOp>),
    /// Barrier: send the current histogram back to the router.
    Report,
}

/// Replays a binary trace image through the sharded ingestion pipeline:
/// router-decoded blocks, per-shard degree workers, barrier merges at
/// metric computation points.
///
/// `shards <= 1` delegates to the fused single-slab engine
/// ([`replay_binary_fused`]); shard counts above the supported maximum
/// are clamped. The report is bit-identical at every shard count.
///
/// # Errors
///
/// [`HeapMdError::Corrupt`] on block damage,
/// [`HeapMdError::InvalidInput`] on out-of-table function ids.
pub fn replay_binary_sharded(
    image: &BinaryTraceImage,
    settings: &Settings,
    run: impl Into<String>,
    shards: usize,
) -> Result<MetricReport, HeapMdError> {
    if shards <= 1 {
        return replay_binary_fused(image, settings, run);
    }
    let n = shards.min(MAX_SHARDS);
    let functions = image.functions()?;
    let table_len = functions.len();
    let run = run.into();
    let frq = settings.frq;

    std::thread::scope(|scope| -> Result<MetricReport, HeapMdError> {
        let mut op_txs = Vec::with_capacity(n);
        let mut hist_rxs = Vec::with_capacity(n);
        for w in 0..n {
            let (op_tx, op_rx) = mpsc::sync_channel::<ShardMsg>(SHARD_CHANNEL_DEPTH);
            let (hist_tx, hist_rx) = mpsc::channel::<DegreeHistogram>();
            scope.spawn(move || {
                let mut hist = DegreeHistogram::new();
                let stage = format!("shard_worker_{w}");
                while let Ok(msg) = op_rx.recv() {
                    match msg {
                        ShardMsg::Ops(ops) => {
                            let clock = heapmd_obs::throughput::stage_clock();
                            for op in &ops {
                                op.apply(&mut hist);
                            }
                            if let Some(t0) = clock {
                                heapmd_obs::throughput::record_stage(
                                    &stage,
                                    ops.len() as u64,
                                    t0.elapsed().as_nanos() as u64,
                                );
                            }
                        }
                        ShardMsg::Report => {
                            if hist_tx.send(hist.clone()).is_err() {
                                return; // router bailed on an error
                            }
                        }
                    }
                }
            });
            op_txs.push(op_tx);
            hist_rxs.push(hist_rx);
        }

        let mut graph = ShardedGraph::new_detached(n);
        let mut fn_entries: u64 = 0;
        let mut ingested: u64 = 0;
        let mut samples: Vec<MetricSample> = Vec::new();
        let mut buf: Vec<HeapEvent> = Vec::with_capacity(EVENTS_PER_BLOCK);

        let result = (|| -> Result<(), HeapMdError> {
            for entry in image.event_blocks() {
                image.decode_block_into(entry, &mut buf)?;
                if table_len > 0 {
                    validate_block_function_ids(&buf, table_len)?;
                }
                // Replayer::ingest_batch, detached flavor: graph spans
                // between function entries, sample on frq boundaries.
                let base = ingested;
                let mut batch_start = 0usize;
                for (i, ev) in buf.iter().enumerate() {
                    if let HeapEvent::FnEnter { .. } = ev {
                        graph.apply_batch(&buf[batch_start..i]);
                        batch_start = i + 1;
                        fn_entries += 1;
                        if fn_entries.is_multiple_of(frq) {
                            barrier_merge(&mut graph, &op_txs, &hist_rxs);
                            let ext = graph.extended_metrics();
                            samples.push(MetricSample {
                                seq: samples.len(),
                                fn_entries,
                                tick: base + i as u64 + 1,
                                metrics: graph.metrics(),
                                nodes: ext.nodes,
                                edges: ext.edges,
                                dangling: ext.dangling_slots,
                                candidates: Some(graph.candidates()),
                            });
                        }
                    }
                }
                graph.apply_batch(&buf[batch_start..]);
                ingested = base + buf.len() as u64;
                // Ship the block's remaining ops so workers run ahead
                // of the next decode.
                flush_ops(&mut graph, &op_txs);
            }
            Ok(())
        })();
        drop(op_txs); // workers drain their queues and exit
        result?;
        let rate = image.sampling()?.map_or(1.0, |s| s.rate());
        Ok(MetricReport::with_sample_rate(run, samples, rate))
    })
}

/// Sends any buffered per-shard op batches to their workers.
fn flush_ops(graph: &mut ShardedGraph, op_txs: &[mpsc::SyncSender<ShardMsg>]) {
    for (sh, ops) in graph.take_pending_ops().into_iter().enumerate() {
        if !ops.is_empty() {
            op_txs[sh]
                .send(ShardMsg::Ops(ops))
                .expect("shard worker outlives the router");
        }
    }
}

/// Barrier at a metric computation point: flush every queue, collect
/// every worker's histogram, install the exact merge.
fn barrier_merge(
    graph: &mut ShardedGraph,
    op_txs: &[mpsc::SyncSender<ShardMsg>],
    hist_rxs: &[mpsc::Receiver<DegreeHistogram>],
) {
    for (sh, ops) in graph.take_pending_ops().into_iter().enumerate() {
        if !ops.is_empty() {
            op_txs[sh]
                .send(ShardMsg::Ops(ops))
                .expect("shard worker outlives the router");
        }
        op_txs[sh]
            .send(ShardMsg::Report)
            .expect("shard worker outlives the router");
    }
    let mut merged = DegreeHistogram::new();
    for rx in hist_rxs {
        merged.merge(&rx.recv().expect("shard worker outlives the router"));
    }
    graph.install_merged_histogram(merged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use crate::trace::Trace;

    fn churn_trace(frq: u64) -> (Trace, Settings) {
        let settings = Settings::builder()
            .frq(frq)
            .build()
            .expect("valid settings");
        let mut p = Process::new(settings.clone());
        p.enable_trace();
        let mut ring: Vec<sim_heap::Addr> = Vec::new();
        for i in 0..600usize {
            p.enter(if i % 3 == 0 { "grow" } else { "link" });
            let a = p.malloc(24 + (i % 5) * 8, "node").expect("alloc");
            if let Some(&prev) = ring.last() {
                p.write_ptr(a.offset(8), prev).expect("link");
            }
            ring.push(a);
            if i % 4 == 3 {
                let victim = ring.remove(ring.len() / 2);
                p.free(victim).expect("free");
            }
            p.leave();
        }
        let mut trace = p.take_trace().expect("tracing enabled");
        let names: Vec<String> = (0..p.functions().len())
            .map(|i| {
                p.functions()
                    .name(crate::callstack::FuncId(i as u32))
                    .to_string()
            })
            .collect();
        trace.set_functions(names);
        (trace, settings)
    }

    #[test]
    fn sharded_replay_is_bit_identical_to_fused() {
        let (trace, settings) = churn_trace(10);
        let image = BinaryTraceImage::open(trace.encode_binary()).expect("encode");
        let fused = replay_binary_fused(&image, &settings, "run").expect("fused");
        for shards in [2usize, 3, 8] {
            let sharded = replay_binary_sharded(&image, &settings, "run", shards).expect("sharded");
            assert_eq!(
                sharded.samples, fused.samples,
                "shards={shards} diverged from fused replay"
            );
        }
    }

    #[test]
    fn shard_count_one_uses_fused_engine() {
        let (trace, settings) = churn_trace(25);
        let image = BinaryTraceImage::open(trace.encode_binary()).expect("encode");
        let a = replay_binary_sharded(&image, &settings, "run", 1).expect("one");
        let b = replay_binary_fused(&image, &settings, "run").expect("fused");
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn oversized_shard_count_is_clamped_not_rejected() {
        let (trace, settings) = churn_trace(50);
        let image = BinaryTraceImage::open(trace.encode_binary()).expect("encode");
        let big = replay_binary_sharded(&image, &settings, "run", MAX_SHARDS * 4).expect("big");
        let fused = replay_binary_fused(&image, &settings, "run").expect("fused");
        assert_eq!(big.samples, fused.samples);
    }
}
