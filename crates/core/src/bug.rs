//! Bug reports and the paper's bug taxonomy (§4.1, Figures 8 and 9).

use heap_graph::MetricKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which calibrated bound an anomaly involves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Below the calibrated minimum (or pinned at it).
    BelowMin,
    /// Above the calibrated maximum (or pinned at it).
    AboveMax,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::BelowMin => "below calibrated minimum",
            Direction::AboveMax => "above calibrated maximum",
        })
    }
}

/// The anomaly that triggered a report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A globally stable metric left its calibrated range — the *heap
    /// anomaly* class HeapMD is designed to target.
    RangeViolation {
        /// Which bound was crossed.
        direction: Direction,
    },
    /// A stable metric settled at an extreme of its calibrated range
    /// straight out of startup — the paper's *poorly disguised* class
    /// (its one observed instance was the oct-tree that became an
    /// oct-DAG).
    PoorlyDisguised {
        /// Which extreme the metric is pinned at.
        extreme: Direction,
    },
    /// A metric that was unstable during training stayed stable during
    /// checking — the paper's *pathological* class (never observed by
    /// the authors, but detectable).
    UnexpectedStability,
    /// A locally stable metric's value fell outside every calibrated
    /// phase band (the §2.1 locally-stable-model extension).
    LocalRangeViolation,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyKind::RangeViolation { direction } => {
                write!(f, "range violation ({direction})")
            }
            AnomalyKind::PoorlyDisguised { extreme } => {
                write!(f, "poorly disguised anomaly (pinned {extreme})")
            }
            AnomalyKind::UnexpectedStability => f.write_str("unexpected metric stability"),
            AnomalyKind::LocalRangeViolation => {
                f.write_str("value outside every calibrated phase band")
            }
        }
    }
}

/// Phase of a logged call-stack relative to the range crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogPhase {
    /// Logged while the metric approached an extreme (armed logging).
    Before,
    /// Logged at the sample that crossed the bound.
    During,
    /// Logged after the crossing, while the excursion continued.
    After,
}

/// One call-stack snapshot from the circular log buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackLogEntry {
    /// Heap tick when the snapshot was taken.
    pub tick: u64,
    /// Call stack, outermost first, as function names.
    pub stack: Vec<String>,
    /// A one-line description of the event that triggered the snapshot.
    pub event: String,
    /// When the snapshot was taken relative to the crossing.
    pub phase: LogPhase,
}

/// A bug report raised by the anomaly detector.
///
/// Carries the violated metric, the observed value against the
/// calibrated range, and the call-stack context logged around the
/// crossing — the paper's mechanism for pinpointing the responsible
/// function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugReport {
    /// The metric that misbehaved.
    pub metric: MetricKind,
    /// What kind of anomaly was seen.
    pub kind: AnomalyKind,
    /// The metric's value at detection time.
    pub value: f64,
    /// The calibrated `[min, max]` range.
    pub range: (f64, f64),
    /// Sample index (metric computation point) of the detection.
    pub sample_seq: usize,
    /// Cumulative function entries at detection.
    pub fn_entries: u64,
    /// Effective store-sampling rate at detection, in `(0, 1]`: the
    /// minimum of the checked stream's rate and the model's
    /// calibration-time rate. `1.0` (the default for pre-sampling
    /// artifacts) means every store was observed and `range` carries no
    /// confidence widening.
    #[serde(default = "default_report_sample_rate")]
    pub sample_rate: f64,
    /// How far outside the accepted `range` the value strayed, in units
    /// of that (sampling-widened) band's full width — the
    /// scale-independent severity a production-overhead deployment
    /// alerts on. `0.0` for anomaly kinds without a crossing.
    #[serde(default)]
    pub band_distance: f64,
    /// Call-stack context before/during/after the crossing.
    pub context: Vec<StackLogEntry>,
}

fn default_report_sample_rate() -> f64 {
    1.0
}

/// Bitwise float equality: an [`AnomalyKind::UnexpectedStability`]
/// report carries a `(NaN, NaN)` range, and IEEE `NaN != NaN` would
/// make two byte-identical reports compare unequal (breaking the
/// serve daemon's verdict-equivalence checks).
impl PartialEq for BugReport {
    fn eq(&self, other: &Self) -> bool {
        self.metric == other.metric
            && self.kind == other.kind
            && self.value.to_bits() == other.value.to_bits()
            && self.range.0.to_bits() == other.range.0.to_bits()
            && self.range.1.to_bits() == other.range.1.to_bits()
            && self.sample_seq == other.sample_seq
            && self.fn_entries == other.fn_entries
            && self.sample_rate.to_bits() == other.sample_rate.to_bits()
            && self.band_distance.to_bits() == other.band_distance.to_bits()
            && self.context == other.context
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} — value {:.2} vs calibrated [{:.2}, {:.2}] at sample {}",
            self.metric, self.kind, self.value, self.range.0, self.range.1, self.sample_seq
        )?;
        if self.sample_rate < 1.0 {
            write!(
                f,
                " (sampled at {:.3}, {:.2} band-widths out)",
                self.sample_rate, self.band_distance
            )?;
        }
        if let Some(entry) = self.context.iter().find(|e| e.phase == LogPhase::During) {
            if let Some(top) = entry.stack.last() {
                write!(f, " (in {top})")?;
            }
        }
        Ok(())
    }
}

impl AnomalyKind {
    /// Snake-case tag for structured events.
    pub fn slug(&self) -> &'static str {
        match self {
            AnomalyKind::RangeViolation { .. } => "range_violation",
            AnomalyKind::PoorlyDisguised { .. } => "poorly_disguised",
            AnomalyKind::UnexpectedStability => "unexpected_stability",
            AnomalyKind::LocalRangeViolation => "local_range_violation",
        }
    }
}

impl Direction {
    fn slug(self) -> &'static str {
        match self {
            Direction::BelowMin => "below_min",
            Direction::AboveMax => "above_max",
        }
    }
}

/// Emits an `anomaly` obs event (and bumps `heapmd_anomaly_total`) for
/// a freshly raised report. `source` names the checker that raised it
/// (`"detector"` or `"online"`). Events are a live view: the offline
/// detector's shutdown trim may later drop a report whose event already
/// fired.
pub(crate) fn emit_anomaly_event(bug: &BugReport, source: &str) {
    heapmd_obs::count!("heapmd_anomaly_total");
    heapmd_obs::export::emit_event("anomaly", |o| {
        o.field_str("source", source)
            .field_str("metric", bug.metric.short_name())
            .field_str("kind", bug.kind.slug());
        match bug.kind {
            AnomalyKind::RangeViolation { direction } => {
                o.field_str("direction", direction.slug());
            }
            AnomalyKind::PoorlyDisguised { extreme } => {
                o.field_str("direction", extreme.slug());
            }
            _ => {}
        }
        o.field_f64("value", bug.value)
            .field_f64("range_lo", bug.range.0)
            .field_f64("range_hi", bug.range.1)
            .field_u64("sample_seq", bug.sample_seq as u64)
            .field_u64("fn_entries", bug.fn_entries)
            .field_u64("context_entries", bug.context.len() as u64);
        if bug.sample_rate < 1.0 {
            o.field_f64("sample_rate", bug.sample_rate)
                .field_f64("band_distance", bug.band_distance);
        }
    });
}

impl BugReport {
    /// Function names appearing in the logged context, deduplicated,
    /// innermost frames first within each snapshot. These are the
    /// candidates for the bug's root cause.
    pub fn implicated_functions(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for entry in &self.context {
            for name in entry.stack.iter().rev() {
                if seen.insert(name.clone()) {
                    out.push(name.clone());
                }
            }
        }
        out
    }
}

/// The root-cause categories of Figures 8 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugCategory {
    /// Omitted/miscopied line in a data-structure operation (Figure 8,
    /// "programming typos"); typically manifests as a memory leak.
    ProgrammingTypo,
    /// Erroneous manipulation of shared state (Figure 8); typically
    /// manifests as dangling pointers.
    SharedState,
    /// Violation of an (unwritten) data-structure invariant (Figure 8);
    /// malformed but pointer-correct structures.
    DataStructureInvariant,
    /// Logic errors that only indirectly perturb the heap-graph
    /// (Figure 9): atypical graphs, pathological hash functions,
    /// single-child trees.
    Indirect,
}

impl fmt::Display for BugCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BugCategory::ProgrammingTypo => "programming typo",
            BugCategory::SharedState => "shared state",
            BugCategory::DataStructureInvariant => "data structure invariant",
            BugCategory::Indirect => "indirect",
        })
    }
}

/// The paper's detectability classes (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionClass {
    /// No appreciable effect on degree metrics — undetectable.
    Invisible,
    /// Affects metrics but stays inside calibrated ranges — undetectable.
    WellDisguised,
    /// A stable metric pinned at an extreme value.
    PoorlyDisguised,
    /// A normally-unstable metric becomes stable.
    Pathological,
    /// A stable metric leaves its calibrated range — HeapMD's target.
    HeapAnomaly,
}

impl DetectionClass {
    /// Whether HeapMD can, in principle, detect bugs of this class.
    pub fn detectable(self) -> bool {
        !matches!(
            self,
            DetectionClass::Invisible | DetectionClass::WellDisguised
        )
    }
}

impl fmt::Display for DetectionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DetectionClass::Invisible => "invisible",
            DetectionClass::WellDisguised => "well disguised",
            DetectionClass::PoorlyDisguised => "poorly disguised",
            DetectionClass::Pathological => "pathological",
            DetectionClass::HeapAnomaly => "heap anomaly",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BugReport {
        BugReport {
            metric: MetricKind::Indeg1,
            kind: AnomalyKind::RangeViolation {
                direction: Direction::AboveMax,
            },
            value: 25.3,
            range: (13.2, 18.5),
            sample_seq: 41,
            fn_entries: 4_100,
            sample_rate: 1.0,
            band_distance: 0.0,
            context: vec![
                StackLogEntry {
                    tick: 90,
                    stack: vec!["main".into(), "TreeInsert".into()],
                    event: "alloc 40B".into(),
                    phase: LogPhase::Before,
                },
                StackLogEntry {
                    tick: 100,
                    stack: vec!["main".into(), "TreeInsert".into(), "LinkChild".into()],
                    event: "ptr write".into(),
                    phase: LogPhase::During,
                },
            ],
        }
    }

    #[test]
    fn display_carries_the_essentials() {
        let s = report().to_string();
        assert!(s.contains("Indeg=1"));
        assert!(s.contains("25.30"));
        assert!(s.contains("[13.20, 18.50]"));
        assert!(s.contains("LinkChild"), "root-cause frame surfaces: {s}");
    }

    #[test]
    fn implicated_functions_dedup_innermost_first() {
        let funcs = report().implicated_functions();
        assert_eq!(funcs[0], "TreeInsert");
        assert_eq!(funcs.iter().filter(|f| *f == "main").count(), 1);
        assert!(funcs.contains(&"LinkChild".to_string()));
    }

    #[test]
    fn detectability_classes() {
        assert!(!DetectionClass::Invisible.detectable());
        assert!(!DetectionClass::WellDisguised.detectable());
        assert!(DetectionClass::PoorlyDisguised.detectable());
        assert!(DetectionClass::Pathological.detectable());
        assert!(DetectionClass::HeapAnomaly.detectable());
    }

    #[test]
    fn reports_round_trip_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: BugReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn display_names_for_taxonomy() {
        assert_eq!(BugCategory::SharedState.to_string(), "shared state");
        assert_eq!(DetectionClass::HeapAnomaly.to_string(), "heap anomaly");
        assert_eq!(
            AnomalyKind::UnexpectedStability.to_string(),
            "unexpected metric stability"
        );
    }
}
