//! The `Settings` file of the paper's architecture (Figure 2).

use crate::error::HeapMdError;
use serde::{Deserialize, Serialize};

/// Configuration shared by the execution logger, the metric summarizer,
/// and the anomaly detector.
///
/// Defaults follow the paper's reported choices: metrics are computed
/// once every `frq = 100 000` function entries, the first and last 10 %
/// of metric computation points are attributed to startup/shutdown and
/// ignored, a metric is stable in a run when its average per-step change
/// is within ±1 % and the standard deviation of change is below 5, and a
/// metric is globally stable for the program when it is stable on at
/// least 40 % of training inputs.
///
/// Construct via [`Settings::builder`]; invalid combinations are
/// rejected at build time.
///
/// # Example
///
/// ```
/// use heapmd::Settings;
///
/// # fn main() -> Result<(), heapmd::HeapMdError> {
/// let s = Settings::builder().frq(1_000).trim_frac(0.10).build()?;
/// assert_eq!(s.frq, 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settings {
    /// Metric computation period: one sample per `frq` function entries.
    /// The paper used 100 000 for its (much larger) binaries.
    pub frq: u64,
    /// Fraction of metric computation points at each end of a run
    /// attributed to startup/shutdown and excluded from stability
    /// analysis (paper: 0.10).
    pub trim_frac: f64,
    /// Stability threshold on the mean per-step percentage change
    /// (paper: ±1 %).
    pub avg_change_threshold: f64,
    /// Stability threshold on the standard deviation of the per-step
    /// percentage change (paper: 5).
    pub std_change_threshold: f64,
    /// Fraction of training inputs on which a metric must be stable to
    /// be deemed globally stable (paper: 0.40).
    pub stable_input_frac: f64,
    /// Minimum post-trim samples for a run to participate in stability
    /// classification.
    pub min_samples: usize,
    /// Fraction of a stable metric's range width treated as "near the
    /// extreme": approaching within this margin (with a slope toward the
    /// extreme) arms call-stack logging.
    pub near_edge_frac: f64,
    /// Capacity of the circular call-stack log buffer.
    pub callstack_capacity: usize,
    /// Samples the online checker skips as startup before enforcing
    /// ranges (the online analogue of `trim_frac`, which needs the whole
    /// run).
    pub warmup_samples: usize,
    /// Absolute slack (percentage points) added to each side of a
    /// calibrated range during checking. The paper calibrates on ≥ 25
    /// inputs, which widens its min/max organically; smaller training
    /// sets need explicit slack to avoid hair-trigger false positives.
    /// Set to 0 for the paper's strict min/max semantics.
    pub range_margin: f64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            frq: 100_000,
            trim_frac: 0.10,
            avg_change_threshold: 1.0,
            std_change_threshold: 5.0,
            stable_input_frac: 0.40,
            min_samples: 5,
            near_edge_frac: 0.05,
            callstack_capacity: 64,
            warmup_samples: 5,
            range_margin: 0.5,
        }
    }
}

impl Settings {
    /// Starts building a settings value from the paper defaults.
    pub fn builder() -> SettingsBuilder {
        SettingsBuilder {
            inner: Settings::default(),
        }
    }

    /// Re-runs the builder's validation on an already constructed (or
    /// deserialized) settings value — a checkpoint or model file can
    /// carry settings that never went through the builder.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::InvalidSettings`] (see
    /// [`SettingsBuilder::build`]).
    pub fn validate(&self) -> Result<(), HeapMdError> {
        SettingsBuilder {
            inner: self.clone(),
        }
        .build()
        .map(|_| ())
    }

    /// Number of leading/trailing samples to trim from a run of `n`
    /// metric computation points.
    pub fn trim_count(&self, n: usize) -> usize {
        (n as f64 * self.trim_frac).floor() as usize
    }
}

/// Builder for [`Settings`].
#[derive(Debug, Clone)]
pub struct SettingsBuilder {
    inner: Settings,
}

impl SettingsBuilder {
    /// Sets the metric computation period (function entries per sample).
    pub fn frq(mut self, frq: u64) -> Self {
        self.inner.frq = frq;
        self
    }

    /// Sets the startup/shutdown trim fraction.
    pub fn trim_frac(mut self, f: f64) -> Self {
        self.inner.trim_frac = f;
        self
    }

    /// Sets the mean-change stability threshold (percent).
    pub fn avg_change_threshold(mut self, t: f64) -> Self {
        self.inner.avg_change_threshold = t;
        self
    }

    /// Sets the change standard-deviation stability threshold.
    pub fn std_change_threshold(mut self, t: f64) -> Self {
        self.inner.std_change_threshold = t;
        self
    }

    /// Sets the fraction of training inputs required stable.
    pub fn stable_input_frac(mut self, f: f64) -> Self {
        self.inner.stable_input_frac = f;
        self
    }

    /// Sets the minimum post-trim samples per classified run.
    pub fn min_samples(mut self, n: usize) -> Self {
        self.inner.min_samples = n;
        self
    }

    /// Sets the near-extreme margin fraction for call-stack logging.
    pub fn near_edge_frac(mut self, f: f64) -> Self {
        self.inner.near_edge_frac = f;
        self
    }

    /// Sets the circular call-stack buffer capacity.
    pub fn callstack_capacity(mut self, n: usize) -> Self {
        self.inner.callstack_capacity = n;
        self
    }

    /// Sets the number of online warmup samples.
    pub fn warmup_samples(mut self, n: usize) -> Self {
        self.inner.warmup_samples = n;
        self
    }

    /// Sets the checking range slack (percentage points per side).
    pub fn range_margin(mut self, m: f64) -> Self {
        self.inner.range_margin = m;
        self
    }

    /// Validates and produces the settings.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::InvalidSettings`] when `frq` is zero, a
    /// fraction lies outside `[0, 0.5)` (trim) or `(0, 1]` (stable
    /// inputs) or `[0, 0.5]` (near edge), or thresholds are negative.
    pub fn build(self) -> Result<Settings, HeapMdError> {
        let s = self.inner;
        fn bad(msg: &str) -> Result<Settings, HeapMdError> {
            Err(HeapMdError::InvalidSettings(msg.to_string()))
        }
        if s.frq == 0 {
            return bad("frq must be positive");
        }
        if !(0.0..0.5).contains(&s.trim_frac) {
            return bad("trim_frac must lie in [0, 0.5)");
        }
        if s.avg_change_threshold < 0.0 || s.std_change_threshold < 0.0 {
            return bad("stability thresholds must be non-negative");
        }
        if !(0.0..=1.0).contains(&s.stable_input_frac) || s.stable_input_frac == 0.0 {
            return bad("stable_input_frac must lie in (0, 1]");
        }
        if !(0.0..=0.5).contains(&s.near_edge_frac) {
            return bad("near_edge_frac must lie in [0, 0.5]");
        }
        if s.callstack_capacity == 0 {
            return bad("callstack_capacity must be positive");
        }
        if s.range_margin < 0.0 {
            return bad("range_margin must be non-negative");
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = Settings::default();
        assert_eq!(s.frq, 100_000);
        assert_eq!(s.trim_frac, 0.10);
        assert_eq!(s.avg_change_threshold, 1.0);
        assert_eq!(s.std_change_threshold, 5.0);
        assert_eq!(s.stable_input_frac, 0.40);
    }

    #[test]
    fn builder_overrides_fields() {
        let s = Settings::builder()
            .frq(500)
            .warmup_samples(7)
            .build()
            .unwrap();
        assert_eq!(s.frq, 500);
        assert_eq!(s.warmup_samples, 7);
        assert_eq!(s.trim_frac, 0.10, "untouched fields keep defaults");
    }

    #[test]
    fn invalid_settings_rejected() {
        assert!(Settings::builder().frq(0).build().is_err());
        assert!(Settings::builder().trim_frac(0.5).build().is_err());
        assert!(Settings::builder().trim_frac(-0.1).build().is_err());
        assert!(Settings::builder().stable_input_frac(0.0).build().is_err());
        assert!(Settings::builder().stable_input_frac(1.5).build().is_err());
        assert!(Settings::builder().near_edge_frac(0.6).build().is_err());
        assert!(Settings::builder()
            .avg_change_threshold(-1.0)
            .build()
            .is_err());
        assert!(Settings::builder().callstack_capacity(0).build().is_err());
        assert!(Settings::builder().range_margin(-0.1).build().is_err());
    }

    #[test]
    fn trim_count_floors() {
        let s = Settings::default();
        assert_eq!(s.trim_count(100), 10);
        assert_eq!(s.trim_count(99), 9);
        assert_eq!(s.trim_count(5), 0);
    }

    #[test]
    fn settings_round_trip_json() {
        let s = Settings::builder().frq(42).build().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Settings = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
