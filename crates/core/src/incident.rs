//! Incident bundles: the durable flight-recorder artifact.
//!
//! The paper's detector logs call stacks into a circular buffer while a
//! stable metric drifts toward a calibrated bound (§3.2), so a report
//! can show context before, during, and after the crossing — but that
//! context, the metric time series, and the heap-graph shape around the
//! crossing were transient in this reproduction: computed, printed, and
//! thrown away. An [`IncidentBundle`] freezes all of it the moment an
//! anomaly fires, so a single incident at scale can be triaged offline
//! (`heapmd inspect`) without rerunning the workload.
//!
//! # Wire format
//!
//! Same length-framed, CRC-checked JSONL as the trace stream, under its
//! own magic:
//!
//! ```text
//! HMDI1 <len:08x> <crc:08x> <payload-json>\n
//! ```
//!
//! A healthy bundle is `Header`, one `Meta`, zero or more `Stack` /
//! `Series` records, at most one `Degrees`, then an `End { records }`
//! trailer counting everything before it. Splitting the bundle across
//! records is deliberate: a single bit flip damages one record, and
//! [`IncidentBundle::salvage_bytes`] resynchronizes at the next line
//! that starts with the magic, so the rest of the bundle survives.
//!
//! Bundles are written via [`crate::persist::write_atomic`], so a crash
//! mid-write leaves either the previous artifact or none — never a
//! torn file.

use crate::bug::{AnomalyKind, BugReport, StackLogEntry};
use crate::error::HeapMdError;
use crate::trace_stream::{frame_with_magic, parse_frame};
use heap_graph::{DegreeHistogram, MetricKind};
use heapmd_obs::SeriesSnapshot;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Magic prefix identifying a version-1 incident-bundle record.
pub const INCIDENT_MAGIC: &str = "HMDI1";

/// Current incident-bundle format version. Readers reject bundles from
/// the future; older versions are upgraded on read (v1 bundles lack the
/// full-resolution degree distributions, which default to empty).
pub const INCIDENT_FORMAT_VERSION: u32 = 2;

/// Highest degree bucket captured per direction in [`DegreeSnapshot`]
/// (degrees past it are summed into the last bucket).
pub const DEGREE_BUCKETS: usize = 9;

/// One record in a bundle. Externally tagged, struct variants only
/// (the vendored serde stand-in round-trips those faithfully).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum BundleRecord {
    /// First record of every bundle.
    Header {
        /// Bundle format version.
        format: u32,
    },
    /// The incident's identity: what fired, where, against what range.
    Meta {
        /// The metadata payload.
        meta: IncidentMeta,
    },
    /// One armed-window call-stack snapshot.
    Stack {
        /// The circular-buffer entry.
        entry: StackLogEntry,
    },
    /// One recorded metric/rate time series.
    Series {
        /// The series payload.
        series: SeriesData,
    },
    /// Heap-graph degree histogram at detection time.
    Degrees {
        /// The degree snapshot.
        degrees: DegreeSnapshot,
    },
    /// Clean end-of-bundle trailer.
    End {
        /// Number of records that should precede this trailer.
        records: u64,
    },
}

/// The incident's identity and calibration context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentMeta {
    /// Bundle format version (absent in hand-written files ⇒ 0).
    #[serde(default)]
    pub version: u32,
    /// Which checker raised the incident (`detector` or `online`).
    pub source: String,
    /// The metric that misbehaved.
    pub metric: MetricKind,
    /// The anomaly classification.
    pub kind: AnomalyKind,
    /// The metric's value at detection time.
    pub value: f64,
    /// The calibrated `[min, max]` range it violated.
    pub range: (f64, f64),
    /// Per-sample slope at the crossing (the adverse-drift signal that
    /// armed logging).
    pub slope: f64,
    /// Sample index (metric computation point) of the detection.
    pub sample_seq: u64,
    /// Cumulative function entries at detection.
    pub fn_entries: u64,
    /// Sample index at which armed logging began, when the detector
    /// armed before firing.
    pub armed_at_seq: Option<u64>,
    /// Total metric computation points seen by the checker at capture.
    pub samples_seen: u64,
}

/// One captured time series (a [`SeriesSnapshot`] in serializable form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesData {
    /// Series name, e.g. `metric.Indeg=1` or `rate.allocs`.
    pub name: String,
    /// Downsampling stride at capture (1 = every point retained).
    pub stride: u64,
    /// Points ever appended to the series before downsampling.
    pub seen: u64,
    /// Retained `(x, y)` points, oldest first.
    pub points: Vec<(u64, f64)>,
}

impl From<&SeriesSnapshot> for SeriesData {
    fn from(s: &SeriesSnapshot) -> Self {
        SeriesData {
            name: s.name.clone(),
            stride: s.stride,
            seen: s.seen,
            points: s.points.clone(),
        }
    }
}

/// Compact copy of the heap-graph degree histogram at detection time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSnapshot {
    /// Live nodes in the graph.
    pub nodes: u64,
    /// Nodes with indegree `d` for `d in 0..DEGREE_BUCKETS-1`; the last
    /// bucket sums all higher degrees.
    pub indeg: Vec<u64>,
    /// Same, for outdegree.
    pub outdeg: Vec<u64>,
    /// Nodes whose indegree equals their outdegree.
    pub in_eq_out: u64,
    /// Full-resolution indegree distribution as sparse ascending
    /// `(degree, node count)` pairs — no overflow bucket, so `inspect`
    /// can rebuild the exact weighted degree-frequency distribution
    /// (entropy, tail mass). Empty in v1 bundles.
    #[serde(default)]
    pub indeg_full: Vec<(u32, u64)>,
    /// Same, for outdegree.
    #[serde(default)]
    pub outdeg_full: Vec<(u32, u64)>,
}

impl DegreeSnapshot {
    /// Captures the current histogram: the bucketed view (degrees past
    /// [`DEGREE_BUCKETS`] sum into the final slot) plus the sparse
    /// full-resolution distributions.
    pub fn capture(h: &DegreeHistogram) -> Self {
        let bucket = |count_at: &dyn Fn(usize) -> u64| -> Vec<u64> {
            let mut v: Vec<u64> = (0..DEGREE_BUCKETS - 1).map(count_at).collect();
            let covered: u64 = v.iter().sum();
            v.push(h.nodes().saturating_sub(covered));
            v
        };
        let sparse = |counts: &[u64]| -> Vec<(u32, u64)> {
            counts
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(d, &n)| (d as u32, n))
                .collect()
        };
        DegreeSnapshot {
            nodes: h.nodes(),
            indeg: bucket(&|d| h.with_indegree(d as u32)),
            outdeg: bucket(&|d| h.with_outdegree(d as u32)),
            in_eq_out: h.in_eq_out(),
            indeg_full: sparse(h.indegree_counts()),
            outdeg_full: sparse(h.outdegree_counts()),
        }
    }

    /// Rebuilds the dense per-degree count vector from one of the
    /// sparse full-resolution distributions (empty pairs ⇒ empty vec).
    pub fn dense_counts(pairs: &[(u32, u64)]) -> Vec<u64> {
        let Some(&(max, _)) = pairs.last() else {
            return Vec::new();
        };
        let mut counts = vec![0u64; max as usize + 1];
        for &(d, n) in pairs {
            counts[d as usize] = n;
        }
        counts
    }
}

/// A complete incident: metadata, armed-window stacks, recorded series,
/// and the degree histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentBundle {
    /// What fired and against which calibration.
    pub meta: IncidentMeta,
    /// Armed-window call stacks, oldest first.
    pub stacks: Vec<StackLogEntry>,
    /// Recorded metric/rate series (empty when no flight recorder was
    /// attached).
    pub series: Vec<SeriesData>,
    /// Degree histogram at detection, when captured.
    pub degrees: Option<DegreeSnapshot>,
}

/// What a bundle salvage recovered, and what it had to give up.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleSalvageStats {
    /// Valid records consumed (header and trailer included).
    pub records: u64,
    /// Records lost to damage (resync skips).
    pub skipped: u64,
    /// Total bytes in the artifact.
    pub total_bytes: u64,
    /// `true` when every record parsed and the `End` trailer matched.
    pub complete: bool,
    /// Byte offset and description of the first damage, when any.
    pub corruption: Option<(u64, String)>,
}

impl IncidentBundle {
    /// Builds a bundle from a detector report plus its capture context.
    #[allow(clippy::too_many_arguments)]
    pub fn from_report(
        source: &str,
        bug: &BugReport,
        slope: f64,
        armed_at_seq: Option<u64>,
        samples_seen: u64,
        series: Vec<SeriesData>,
        degrees: Option<DegreeSnapshot>,
    ) -> Self {
        IncidentBundle {
            meta: IncidentMeta {
                version: INCIDENT_FORMAT_VERSION,
                source: source.to_string(),
                metric: bug.metric,
                kind: bug.kind,
                value: bug.value,
                range: bug.range,
                slope,
                sample_seq: bug.sample_seq as u64,
                fn_entries: bug.fn_entries,
                armed_at_seq,
                samples_seen,
            },
            stacks: bug.context.clone(),
            series,
            degrees,
        }
    }

    /// Functions implicated by the armed-window stacks, innermost
    /// first, deduplicated — the same digest as
    /// [`crate::BugReport::implicated_functions`].
    pub fn implicated_functions(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for entry in &self.stacks {
            for name in entry.stack.iter().rev() {
                if seen.insert(name.clone()) {
                    out.push(name.clone());
                }
            }
        }
        out
    }

    /// Structural validation: version, finite calibration, ordered
    /// range.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Corrupt`] naming the offending field.
    pub fn validate(&self) -> Result<(), HeapMdError> {
        let m = &self.meta;
        if m.version > INCIDENT_FORMAT_VERSION {
            return Err(HeapMdError::corrupt(
                0,
                format!(
                    "incident bundle version {} is newer than supported {INCIDENT_FORMAT_VERSION}",
                    m.version
                ),
            ));
        }
        if !m.value.is_finite() || !m.slope.is_finite() {
            return Err(HeapMdError::corrupt(0, "non-finite value or slope"));
        }
        if !m.range.0.is_finite() || !m.range.1.is_finite() || m.range.0 > m.range.1 {
            return Err(HeapMdError::corrupt(
                0,
                format!("invalid calibrated range [{}, {}]", m.range.0, m.range.1),
            ));
        }
        Ok(())
    }

    fn records(&self) -> Vec<BundleRecord> {
        let mut out = Vec::with_capacity(3 + self.stacks.len() + self.series.len());
        out.push(BundleRecord::Header {
            format: INCIDENT_FORMAT_VERSION,
        });
        out.push(BundleRecord::Meta {
            meta: self.meta.clone(),
        });
        for entry in &self.stacks {
            out.push(BundleRecord::Stack {
                entry: entry.clone(),
            });
        }
        for series in &self.series {
            out.push(BundleRecord::Series {
                series: series.clone(),
            });
        }
        if let Some(degrees) = &self.degrees {
            out.push(BundleRecord::Degrees {
                degrees: degrees.clone(),
            });
        }
        out
    }

    /// Renders the bundle into its framed on-disk bytes.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Serde`] if a record fails to serialize.
    pub fn to_bytes(&self) -> Result<Vec<u8>, HeapMdError> {
        let records = self.records();
        let mut out = String::new();
        for record in &records {
            out.push_str(&frame_with_magic(
                INCIDENT_MAGIC,
                &serde_json::to_string(record)?,
            ));
        }
        out.push_str(&frame_with_magic(
            INCIDENT_MAGIC,
            &serde_json::to_string(&BundleRecord::End {
                records: records.len() as u64,
            })?,
        ));
        Ok(out.into_bytes())
    }

    /// Validates and writes the bundle to `path` atomically (tmp
    /// sibling + rename via [`crate::persist::write_atomic`]).
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Corrupt`] from validation, [`HeapMdError::Serde`]
    /// / [`HeapMdError::Io`] from rendering and writing.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HeapMdError> {
        self.validate()?;
        crate::persist::write_atomic(path, &self.to_bytes()?)?;
        Ok(())
    }

    /// Strictly parses a complete, undamaged bundle.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Corrupt`] (with the byte offset of the damage) on
    /// any framing, checksum, or structural violation, a missing `Meta`,
    /// or a miscounting/missing `End` trailer.
    pub fn from_bytes_strict(bytes: &[u8]) -> Result<Self, HeapMdError> {
        let (bundle, stats) = Self::salvage_bytes(bytes);
        if let Some((offset, reason)) = stats.corruption {
            return Err(HeapMdError::Corrupt { offset, reason });
        }
        if !stats.complete {
            return Err(HeapMdError::corrupt(
                stats.total_bytes,
                "bundle truncated before End trailer",
            ));
        }
        let bundle = bundle.ok_or_else(|| HeapMdError::corrupt(0, "bundle has no Meta record"))?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Strictly loads a bundle from `path`.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] on read failure; otherwise as
    /// [`Self::from_bytes_strict`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        Self::from_bytes_strict(&std::fs::read(path)?)
    }

    /// Recovers whatever records survive in a damaged bundle.
    ///
    /// Unlike the trace stream's prefix salvage, bundle salvage
    /// *resynchronizes*: after a bad record it scans for the next line
    /// starting with the magic and keeps going, so one flipped bit
    /// costs one record, not the rest of the artifact. Returns `None`
    /// for the bundle only when no `Meta` record could be recovered.
    pub fn salvage_bytes(bytes: &[u8]) -> (Option<Self>, BundleSalvageStats) {
        let mut meta: Option<IncidentMeta> = None;
        let mut stacks = Vec::new();
        let mut series = Vec::new();
        let mut degrees = None;
        let mut records: u64 = 0;
        let mut skipped: u64 = 0;
        let mut complete = false;
        let mut corruption: Option<(u64, String)> = None;
        let mut pos = 0usize;

        while pos < bytes.len() {
            let parsed = parse_frame(INCIDENT_MAGIC, bytes, pos).and_then(|(payload, next)| {
                serde_json::from_str::<BundleRecord>(payload)
                    .map(|r| (r, next))
                    .map_err(|e| format!("payload JSON: {e}"))
            });
            match parsed {
                Ok((record, next)) => {
                    pos = next;
                    match record {
                        BundleRecord::Header { format } => {
                            if format > INCIDENT_FORMAT_VERSION {
                                corruption.get_or_insert((
                                    pos as u64,
                                    format!("unsupported bundle format {format}"),
                                ));
                                break;
                            }
                            records += 1;
                        }
                        BundleRecord::Meta { meta: m } => {
                            meta = Some(m);
                            records += 1;
                        }
                        BundleRecord::Stack { entry } => {
                            stacks.push(entry);
                            records += 1;
                        }
                        BundleRecord::Series { series: s } => {
                            series.push(s);
                            records += 1;
                        }
                        BundleRecord::Degrees { degrees: d } => {
                            degrees = Some(d);
                            records += 1;
                        }
                        BundleRecord::End { records: declared } => {
                            if declared == records && corruption.is_none() && pos == bytes.len() {
                                complete = true;
                            } else if declared != records {
                                corruption.get_or_insert((
                                    pos as u64,
                                    format!(
                                        "End trailer declares {declared} records, \
                                         bundle carries {records}"
                                    ),
                                ));
                            } else if pos != bytes.len() {
                                corruption.get_or_insert((
                                    pos as u64,
                                    "trailing bytes after End trailer".into(),
                                ));
                            }
                            break;
                        }
                    }
                }
                Err(reason) => {
                    corruption.get_or_insert((pos as u64, reason));
                    skipped += 1;
                    match resync(bytes, pos) {
                        Some(next) => pos = next,
                        None => break,
                    }
                }
            }
        }

        let bundle = meta.map(|meta| IncidentBundle {
            meta,
            stacks,
            series,
            degrees,
        });
        (
            bundle,
            BundleSalvageStats {
                records,
                skipped,
                total_bytes: bytes.len() as u64,
                complete,
                corruption,
            },
        )
    }

    /// Salvages a bundle from `path`, reporting recovery stats through
    /// `heapmd-obs` (`heapmd_incident_salvage_*`).
    ///
    /// # Errors
    ///
    /// Only [`HeapMdError::Io`]; damage is described in the returned
    /// stats instead of failing the read.
    pub fn salvage(
        path: impl AsRef<Path>,
    ) -> Result<(Option<Self>, BundleSalvageStats), HeapMdError> {
        let (bundle, stats) = Self::salvage_bytes(&std::fs::read(path)?);
        heapmd_obs::count!("heapmd_incident_salvage_runs_total");
        if !stats.complete {
            heapmd_obs::count!("heapmd_incident_salvage_incomplete_total");
            heapmd_obs::count!(
                "heapmd_incident_salvage_skipped_records_total",
                stats.skipped
            );
        }
        Ok((bundle, stats))
    }
}

/// Finds the start of the next record line at or after `pos + 1`: the
/// next occurrence of the magic immediately following a newline.
fn resync(bytes: &[u8], pos: usize) -> Option<usize> {
    let magic = INCIDENT_MAGIC.as_bytes();
    let mut i = pos + 1;
    while i + magic.len() <= bytes.len() {
        if bytes[i - 1] == b'\n' && bytes[i..].starts_with(magic) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// A directory sink for incident bundles with deterministic filenames.
///
/// Bundles land as `<prefix>-incident-<n>-<metric>.hmdi` (zero-padded
/// ordinal, slugged metric name), written atomically. The log never
/// fails the pipeline: write errors are counted, warned, and returned,
/// but callers are expected to keep running.
#[derive(Debug, Clone)]
pub struct IncidentLog {
    dir: PathBuf,
    prefix: String,
    written: Vec<PathBuf>,
}

impl IncidentLog {
    /// A log writing into `dir` under `prefix`.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> Self {
        IncidentLog {
            dir: dir.into(),
            prefix: prefix.into(),
            written: Vec::new(),
        }
    }

    /// Writes `bundle` as the next numbered file in the directory
    /// (creating it if needed) and emits an `incident` obs event.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] / [`HeapMdError::Serde`] /
    /// [`HeapMdError::Corrupt`] from validation and writing.
    pub fn write(&mut self, bundle: &IncidentBundle) -> Result<PathBuf, HeapMdError> {
        std::fs::create_dir_all(&self.dir)?;
        let name = format!(
            "{}-incident-{:03}-{}.hmdi",
            self.prefix,
            self.written.len(),
            slug(bundle.meta.metric.short_name())
        );
        let path = self.dir.join(name);
        bundle.save(&path)?;
        self.written.push(path.clone());
        heapmd_obs::count!("heapmd_incidents_written_total");
        heapmd_obs::export::emit_event("incident", |o| {
            o.field_str("path", &path.to_string_lossy())
                .field_str("source", &bundle.meta.source)
                .field_str("metric", bundle.meta.metric.short_name())
                .field_str("kind", bundle.meta.kind.slug())
                .field_f64("value", bundle.meta.value)
                .field_u64("sample_seq", bundle.meta.sample_seq)
                .field_u64("stacks", bundle.stacks.len() as u64)
                .field_u64("series", bundle.series.len() as u64);
        });
        Ok(path)
    }

    /// Paths written so far, in write order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.written
    }
}

/// Lowercases and maps non-alphanumerics to `_` (e.g. `Indeg=1` →
/// `indeg_1`) for filenames.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bug::{Direction, LogPhase};

    fn sample_bundle() -> IncidentBundle {
        IncidentBundle {
            meta: IncidentMeta {
                version: INCIDENT_FORMAT_VERSION,
                source: "detector".into(),
                metric: MetricKind::Indeg1,
                kind: AnomalyKind::RangeViolation {
                    direction: Direction::AboveMax,
                },
                value: 27.5,
                range: (12.0, 19.5),
                slope: 0.75,
                sample_seq: 41,
                fn_entries: 4_100,
                armed_at_seq: Some(38),
                samples_seen: 44,
            },
            stacks: vec![
                StackLogEntry {
                    tick: 90,
                    stack: vec!["main".into(), "TreeInsert".into()],
                    event: "alloc 40B".into(),
                    phase: LogPhase::Before,
                },
                StackLogEntry {
                    tick: 100,
                    stack: vec!["main".into(), "TreeInsert".into(), "LinkChild".into()],
                    event: "ptr write".into(),
                    phase: LogPhase::During,
                },
            ],
            series: vec![
                SeriesData {
                    name: "metric.Indeg=1".into(),
                    stride: 2,
                    seen: 44,
                    points: vec![(0, 14.0), (2, 15.5), (4, 21.0), (6, 27.5)],
                },
                SeriesData {
                    name: "rate.allocs".into(),
                    stride: 1,
                    seen: 44,
                    points: vec![(0, 8.0), (1, 9.0)],
                },
            ],
            degrees: Some(DegreeSnapshot {
                nodes: 120,
                indeg: vec![10, 60, 30, 10, 5, 3, 1, 1, 0],
                outdeg: vec![20, 70, 20, 5, 3, 1, 1, 0, 0],
                in_eq_out: 44,
                indeg_full: vec![
                    (0, 10),
                    (1, 60),
                    (2, 30),
                    (3, 10),
                    (4, 5),
                    (5, 3),
                    (6, 1),
                    (12, 1),
                ],
                outdeg_full: vec![(0, 20), (1, 70), (2, 20), (3, 5), (4, 3), (5, 1), (6, 1)],
            }),
        }
    }

    #[test]
    fn bundle_round_trips_through_bytes() {
        let b = sample_bundle();
        let bytes = b.to_bytes().unwrap();
        let back = IncidentBundle::from_bytes_strict(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn bundle_round_trips_through_atomic_file() {
        let b = sample_bundle();
        let dir = std::env::temp_dir().join("heapmd-incident-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.hmdi");
        b.save(&path).unwrap();
        assert_eq!(IncidentBundle::load(&path).unwrap(), b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_bit_flip_salvages_or_errors_cleanly() {
        let b = sample_bundle();
        let bytes = b.to_bytes().unwrap();
        for byte in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 0x04;
            // Strict must reject or return an equal bundle (a flip in a
            // JSON f64's unused digits can round-trip equal; anything
            // else must be caught by the CRC).
            if let Ok(parsed) = IncidentBundle::from_bytes_strict(&damaged) {
                assert_eq!(parsed, b, "undetected corruption at byte {byte}");
                continue;
            }
            // Salvage never panics and loses at most the damaged
            // record: the other records all survive.
            let (salvaged, stats) = IncidentBundle::salvage_bytes(&damaged);
            assert!(stats.corruption.is_some(), "flip at {byte} left no trace");
            assert!(stats.skipped <= 2, "flip at {byte} lost {}", stats.skipped);
            if let Some(s) = salvaged {
                // A flipped record terminator can hide the start of the
                // following record too, so up to two records may go.
                let total = 1 + s.stacks.len() + s.series.len() + usize::from(s.degrees.is_some());
                assert!(total >= 4, "flip at {byte} lost too much: {total}");
            }
        }
    }

    #[test]
    fn salvage_recovers_series_when_a_stack_record_is_destroyed() {
        let b = sample_bundle();
        let bytes = b.to_bytes().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // Destroy the first Stack record's payload thoroughly.
        let damaged = text.replacen("alloc 40B", "XXXXX 40B", 1);
        let (salvaged, stats) = IncidentBundle::salvage_bytes(damaged.as_bytes());
        let s = salvaged.expect("meta survives");
        assert_eq!(s.meta, b.meta);
        assert_eq!(s.series, b.series);
        assert_eq!(s.degrees, b.degrees);
        assert_eq!(s.stacks.len(), 1, "only the damaged stack is lost");
        assert_eq!(stats.skipped, 1);
        assert!(!stats.complete);
    }

    #[test]
    fn truncated_bundle_fails_strict_but_salvages() {
        let b = sample_bundle();
        let bytes = b.to_bytes().unwrap();
        let damaged = &bytes[..bytes.len() * 3 / 4];
        assert!(matches!(
            IncidentBundle::from_bytes_strict(damaged),
            Err(HeapMdError::Corrupt { .. })
        ));
        let (salvaged, stats) = IncidentBundle::salvage_bytes(damaged);
        assert!(salvaged.is_some());
        assert!(!stats.complete);
    }

    #[test]
    fn v1_bundles_without_full_distributions_still_load() {
        // Reproduce a v1 writer: take the current frames, strip the v2
        // full-resolution fields from each payload, stamp version 1,
        // and re-frame (the CRC covers the edited payload).
        let mut b = sample_bundle();
        if let Some(d) = &mut b.degrees {
            d.indeg_full.clear();
            d.outdeg_full.clear();
        }
        let bytes = b.to_bytes().unwrap();
        let mut v1 = String::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (payload, next) = parse_frame(INCIDENT_MAGIC, &bytes, pos).unwrap();
            let downgraded = payload
                .replace("\"indeg_full\":[],", "")
                .replace(",\"indeg_full\":[]", "")
                .replace("\"outdeg_full\":[],", "")
                .replace(",\"outdeg_full\":[]", "")
                .replace("\"format\":2", "\"format\":1")
                .replace("\"version\":2", "\"version\":1");
            v1.push_str(&frame_with_magic(INCIDENT_MAGIC, &downgraded));
            pos = next;
        }
        assert!(
            !v1.contains("indeg_full"),
            "v1 image still carries v2 fields"
        );
        let back = IncidentBundle::from_bytes_strict(v1.as_bytes()).unwrap();
        assert_eq!(back.meta.version, 1);
        let d = back.degrees.expect("bucketed degrees survive");
        assert_eq!(d.indeg, b.degrees.as_ref().unwrap().indeg);
        assert!(d.indeg_full.is_empty() && d.outdeg_full.is_empty());
    }

    #[test]
    fn dense_counts_rebuilds_sparse_pairs() {
        let pairs = vec![(1u32, 60u64), (3, 10), (12, 1)];
        let dense = DegreeSnapshot::dense_counts(&pairs);
        assert_eq!(dense.len(), 13);
        assert_eq!(dense[1], 60);
        assert_eq!(dense[2], 0);
        assert_eq!(dense[12], 1);
        assert!(DegreeSnapshot::dense_counts(&[]).is_empty());
    }

    #[test]
    fn future_version_is_rejected() {
        let mut b = sample_bundle();
        b.meta.version = INCIDENT_FORMAT_VERSION + 1;
        assert!(matches!(b.validate(), Err(HeapMdError::Corrupt { .. })));
        assert!(b.save(std::env::temp_dir().join("never.hmdi")).is_err());
    }

    #[test]
    fn non_finite_and_inverted_ranges_are_rejected() {
        let mut b = sample_bundle();
        b.meta.value = f64::NAN;
        assert!(b.validate().is_err());
        let mut b = sample_bundle();
        b.meta.range = (5.0, 1.0);
        assert!(b.validate().is_err());
        let mut b = sample_bundle();
        b.meta.slope = f64::INFINITY;
        assert!(b.validate().is_err());
    }

    #[test]
    fn empty_input_has_no_meta_and_is_incomplete() {
        let (bundle, stats) = IncidentBundle::salvage_bytes(b"");
        assert!(bundle.is_none());
        assert!(!stats.complete);
        assert!(matches!(
            IncidentBundle::from_bytes_strict(b""),
            Err(HeapMdError::Corrupt { .. })
        ));
    }

    #[test]
    fn incident_log_writes_numbered_slugged_files() {
        let dir =
            std::env::temp_dir().join(format!("heapmd-incident-log-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut log = IncidentLog::new(&dir, "check");
        let b = sample_bundle();
        let p0 = log.write(&b).unwrap();
        let p1 = log.write(&b).unwrap();
        assert!(p0.ends_with("check-incident-000-indeg_1.hmdi"));
        assert!(p1.ends_with("check-incident-001-indeg_1.hmdi"));
        assert_eq!(log.paths().to_vec(), vec![p0.clone(), p1.clone()]);
        assert_eq!(IncidentBundle::load(&p0).unwrap(), b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degree_snapshot_buckets_cover_all_nodes() {
        use heap_graph::HeapGraph;
        use sim_heap::{Addr, ObjectId};
        let mut g = HeapGraph::new();
        for i in 0..10u64 {
            g.on_alloc(ObjectId(i), Addr::new(0x1000 + i * 64), 32);
        }
        for i in 1..10u64 {
            g.on_ptr_write(ObjectId(0), i * 8, Addr::new(0x1000 + i * 64));
        }
        let snap = DegreeSnapshot::capture(g.histogram());
        assert_eq!(snap.nodes, 10);
        assert_eq!(snap.indeg.len(), DEGREE_BUCKETS);
        assert_eq!(snap.outdeg.len(), DEGREE_BUCKETS);
        assert_eq!(snap.indeg.iter().sum::<u64>(), snap.nodes);
        assert_eq!(snap.outdeg.iter().sum::<u64>(), snap.nodes);
        // One hub with outdegree 9 (falls in the overflow bucket
        // tally), nine leaves with indegree 1.
        assert_eq!(snap.indeg[1], 9);
        assert_eq!(snap.outdeg[0], 9);
    }
}
