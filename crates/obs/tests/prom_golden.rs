//! Golden-file test for the Prometheus text exposition: the exact
//! bytes of a registry + fleet dump are pinned, so accidental format
//! drift (label escaping, histogram buckets, family ordering) fails
//! loudly instead of silently breaking scrapers.
//!
//! Regenerate deliberately with:
//! `UPDATE_GOLDEN=1 cargo test -p heapmd-obs --test prom_golden`

use heapmd_obs::fleet::{
    FleetRegistry, MetricGauge, MetricVerdict, RETRY_BACKOFF_BUCKETS_MS, STATUS_NEAR_EDGE,
    STATUS_OK, STATUS_OUT,
};
use heapmd_obs::Registry;
use std::path::Path;

/// A deterministic dump exercising the tricky corners: hostile metric
/// names (sanitized), hostile label values (escaped), custom histogram
/// buckets, negative gauges, exact float formatting.
fn render() -> String {
    let reg = Registry::new();
    reg.counter("heap events total!").add(7);
    reg.gauge("drift_gauge").set(-42);
    let hist = reg.histogram("frame_ns", &[100, 1000]);
    hist.observe(50);
    hist.observe(500);
    hist.observe(5000);
    // The session client's retry-backoff histogram, as recorded after
    // two jittered reconnect sleeps.
    let backoff = reg.histogram("heapmd_client_retry_backoff_ms", RETRY_BACKOFF_BUCKETS_MS);
    backoff.observe(75);
    backoff.observe(180);
    let mut out = reg.prometheus_text();

    let fleet = FleetRegistry::new();
    let quiet = fleet.connect("tenant-a");
    quiet.record_events(4096);
    quiet.record_sample();
    quiet.set_rate(2048);
    // tenant-a streams at a 25% store-sampling rate, so its accepted
    // bands carry the confidence widening.
    quiet.set_sample_rate(0.25);
    quiet.set_metrics(vec![
        MetricGauge {
            metric: "indeg1".to_string(),
            value: 1.5,
            distance: 0.0,
            band: 3.5,
            status: STATUS_OK,
        },
        MetricGauge {
            metric: "leaves".to_string(),
            value: 0.25,
            distance: 0.0,
            band: 1.25,
            status: STATUS_NEAR_EDGE,
        },
    ]);
    // Per-metric stability verdicts from the tenant's calibrated model:
    // a stable paper metric and an unstable candidate metric.
    quiet.set_verdicts(vec![
        MetricVerdict {
            metric: "paper.indeg1".to_string(),
            stable: true,
        },
        MetricVerdict {
            metric: "dist.in_entropy".to_string(),
            stable: false,
        },
    ]);
    // Hostile tenant name: quotes, backslash, newline — all must
    // travel as escaped label values.
    let hostile = fleet.connect("web \"eu\"\\1\n");
    // The hostile tenant dropped and resumed its session twice.
    fleet.record_reconnect();
    fleet.record_reconnect();
    hostile.record_resume();
    hostile.record_resume();
    hostile.record_events(16);
    hostile.record_sample();
    hostile.record_bugs(2);
    hostile.add_incidents(1);
    hostile.set_last_anomaly("indeg1 upper");
    hostile.set_metrics(vec![MetricGauge {
        metric: "indeg1".to_string(),
        value: 9.5,
        distance: 2.5,
        band: 0.5,
        status: STATUS_OUT,
    }]);
    let evictee = fleet.connect("slowpoke");
    fleet.evict(&evictee);
    fleet.record_protocol_error();

    let mut snap = fleet.snapshot();
    snap.uptime_s = 42; // pin the only wall-clock-dependent field
    out.push_str(&snap.prometheus_text());
    out
}

#[test]
fn prometheus_exposition_matches_golden() {
    let got = render();

    // Spot-check the properties the golden exists to protect, so a
    // legitimate regeneration still can't smuggle these away.
    assert!(
        got.contains("heap_events_total_ 7"),
        "sanitized name:\n{got}"
    );
    assert!(
        got.contains("tenant=\"web \\\"eu\\\"\\\\1\\n\""),
        "escaped label:\n{got}"
    );
    assert!(got.contains("frame_ns_bucket{le=\"100\"} 1"));
    assert!(got.contains("frame_ns_bucket{le=\"+Inf\"} 3"));
    assert!(got.contains("drift_gauge -42"));
    assert!(got.contains("heapmd_fleet_tenants_total 3"));
    assert!(got.contains("quantile=\"0.95\""));
    assert!(got.contains("heapmd_fleet_reconnects_total 2"));
    assert!(
        got.contains("heapmd_tenant_resumes_total{tenant=\"web \\\"eu\\\"\\\\1\\n\"} 2"),
        "per-tenant resume counter:\n{got}"
    );
    assert!(got.contains("heapmd_client_retry_backoff_ms_bucket{le=\"100\"} 1"));
    assert!(got.contains("heapmd_client_retry_backoff_ms_count 2"));
    assert!(
        got.contains(
            "heapmd_tenant_metric_stability{tenant=\"tenant-a\",metric=\"paper.indeg1\"} 1"
        ),
        "stability verdicts:\n{got}"
    );
    assert!(got.contains(
        "heapmd_tenant_metric_stability{tenant=\"tenant-a\",metric=\"dist.in_entropy\"} 0"
    ));

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/fleet_metrics.golden.prom");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "Prometheus exposition drifted from {}; regenerate with UPDATE_GOLDEN=1 if intended",
        path.display()
    );
}
