//! Fleet-level observability: per-tenant labeled stats and whole-fleet
//! rollups for the `heapmd serve` daemon.
//!
//! Unlike the process-global [`crate::Registry`], a [`FleetRegistry`]
//! is instantiable — the serving layer owns one per daemon and hands
//! [`TenantStats`] handles to whichever worker shard a tenant lands on.
//! Producers touch only relaxed atomics (plus a short mutex for the
//! per-metric gauge vector, updated once per metric computation point,
//! not per event); consumers take a [`FleetSnapshot`] and render it as
//! Prometheus text exposition, a tab-separated control dump (what
//! `heapmd top` polls), or a JSON-lines firehose.
//!
//! Rollup semantics: `connected` counts tenants with an open stream,
//! `anomalous` counts tenants whose verdict (live or final) raised at
//! least one report, `events_per_sec` sums the per-tenant windowed
//! rates, and the per-metric distance rollups take p50/p95/max of each
//! tenant's current distance-from-calibrated-range (0 inside the
//! range), nearest-rank over the tenants reporting that metric.

use crate::export::{escape_label_value, sanitize_metric_name};
use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Buckets (milliseconds) for the client retry-backoff histogram
/// (`heapmd_client_retry_backoff_ms`): covers the default policy's
/// 100 ms base through its 5 s ceiling.
pub const RETRY_BACKOFF_BUCKETS_MS: &[u64] = &[50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// Live metric is inside its calibrated range, away from the edges.
pub const STATUS_OK: u8 = 0;
/// Within the near-edge margin of a range extreme (the detector's
/// arming condition, minus the slope requirement).
pub const STATUS_NEAR_EDGE: u8 = 1;
/// Outside the calibrated range.
pub const STATUS_OUT: u8 = 2;

/// One dashboard glyph per live metric status: `.` in range, `!` near
/// an edge, `X` out of range.
pub fn status_glyph(status: u8) -> char {
    match status {
        STATUS_OK => '.',
        STATUS_NEAR_EDGE => '!',
        _ => 'X',
    }
}

/// Latest value of one stable metric for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricGauge {
    /// Metric name (e.g. `Outdeg=1`).
    pub metric: String,
    /// Most recent sampled value.
    pub value: f64,
    /// Distance outside the calibrated (margin-widened) range; 0 while
    /// inside it.
    pub distance: f64,
    /// Full width of the accepted band (`hi - lo`) after the range
    /// margin and any sampling-confidence widening. A sampled tenant
    /// carries a wider band than an unsampled one on the same model.
    pub band: f64,
    /// One of [`STATUS_OK`], [`STATUS_NEAR_EDGE`], [`STATUS_OUT`].
    pub status: u8,
}

/// Calibration-time stability verdict for one metric of one tenant's
/// model: which members of the candidate family earned a calibrated
/// range for this program, and which were rejected by the stability
/// filter.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    /// Metric id (e.g. `paper.roots`, `dist.in_entropy`).
    pub metric: String,
    /// True when the stability filter calibrated a range for it.
    pub stable: bool,
}

/// Per-tenant counters and gauges, shared between the connection
/// handler, the worker shard, and the exposition endpoints.
#[derive(Debug, Default)]
pub struct TenantStats {
    events_total: AtomicU64,
    samples_total: AtomicU64,
    range_crossings_total: AtomicU64,
    incidents_total: AtomicU64,
    bugs_total: AtomicU64,
    resumes_total: AtomicU64,
    events_per_sec: AtomicU64,
    queue_depth: AtomicU64,
    connected: AtomicBool,
    evicted: AtomicBool,
    armed: AtomicBool,
    anomalous: AtomicBool,
    /// `f64::to_bits` of the announced store-sampling rate; 0 (the
    /// atomic default) means "never announced" and reads as 1.0.
    sample_rate_bits: AtomicU64,
    last_anomaly: Mutex<String>,
    metrics: Mutex<Vec<MetricGauge>>,
    verdicts: Mutex<Vec<MetricVerdict>>,
}

impl TenantStats {
    /// Counts `n` ingested events.
    pub fn record_events(&self, n: u64) {
        self.events_total.fetch_add(n, Relaxed);
    }

    /// Counts one metric computation point.
    pub fn record_sample(&self) {
        self.samples_total.fetch_add(1, Relaxed);
    }

    /// Counts `n` in-range → out-of-range transitions.
    pub fn add_crossings(&self, n: u64) {
        self.range_crossings_total.fetch_add(n, Relaxed);
    }

    /// Counts `n` persisted incident bundles.
    pub fn add_incidents(&self, n: u64) {
        self.incidents_total.fetch_add(n, Relaxed);
    }

    /// Counts `n` bug reports from a verdict; any marks the tenant
    /// anomalous.
    pub fn record_bugs(&self, n: u64) {
        if n > 0 {
            self.bugs_total.fetch_add(n, Relaxed);
            self.anomalous.store(true, Relaxed);
        }
    }

    /// Counts one session resume (a reconnecting client continuing an
    /// interrupted stream from its last acked block).
    pub fn record_resume(&self) {
        self.resumes_total.fetch_add(1, Relaxed);
    }

    /// Updates the windowed ingest rate gauge.
    pub fn set_rate(&self, events_per_sec: u64) {
        self.events_per_sec.store(events_per_sec, Relaxed);
    }

    /// Updates the pending-events queue gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Relaxed);
    }

    /// Sets the live detector-arm emulation flag (any metric near an
    /// edge or out of range).
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Relaxed);
    }

    /// Records the effective store-sampling rate announced by the
    /// tenant's stream, in `(0, 1]` (`1.0` = every store observed).
    pub fn set_sample_rate(&self, rate: f64) {
        self.sample_rate_bits.store(rate.to_bits(), Relaxed);
    }

    /// The announced store-sampling rate; `1.0` until a stream
    /// announces one.
    pub fn sample_rate(&self) -> f64 {
        match self.sample_rate_bits.load(Relaxed) {
            0 => 1.0,
            bits => f64::from_bits(bits),
        }
    }

    /// Marks the tenant's stream open or closed.
    pub fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Relaxed);
    }

    /// Marks the tenant kicked out (slow consumer or corrupt stream).
    pub fn set_evicted(&self) {
        self.evicted.store(true, Relaxed);
        self.connected.store(false, Relaxed);
    }

    /// Records the most recent anomaly description (metric + direction).
    pub fn set_last_anomaly(&self, what: &str) {
        *self.last_anomaly.lock().unwrap() = what.to_string();
    }

    /// Replaces the per-metric live gauges.
    pub fn set_metrics(&self, gauges: Vec<MetricGauge>) {
        *self.metrics.lock().unwrap() = gauges;
    }

    /// Replaces the per-metric calibration verdicts (set once when the
    /// tenant's model is resolved; stable across the stream).
    pub fn set_verdicts(&self, verdicts: Vec<MetricVerdict>) {
        *self.verdicts.lock().unwrap() = verdicts;
    }

    /// Total events ingested.
    pub fn events(&self) -> u64 {
        self.events_total.load(Relaxed)
    }

    /// Whether the tenant's stream is currently open.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Relaxed)
    }

    /// Whether the tenant was evicted.
    pub fn is_evicted(&self) -> bool {
        self.evicted.load(Relaxed)
    }

    fn row(&self, name: &str) -> TenantRow {
        let metrics = self.metrics.lock().unwrap().clone();
        let glyphs = if metrics.is_empty() {
            "-".to_string()
        } else {
            metrics.iter().map(|m| status_glyph(m.status)).collect()
        };
        TenantRow {
            name: name.to_string(),
            events_total: self.events_total.load(Relaxed),
            events_per_sec: self.events_per_sec.load(Relaxed),
            samples_total: self.samples_total.load(Relaxed),
            range_crossings_total: self.range_crossings_total.load(Relaxed),
            incidents_total: self.incidents_total.load(Relaxed),
            bugs_total: self.bugs_total.load(Relaxed),
            resumes_total: self.resumes_total.load(Relaxed),
            queue_depth: self.queue_depth.load(Relaxed),
            connected: self.connected.load(Relaxed),
            evicted: self.evicted.load(Relaxed),
            armed: self.armed.load(Relaxed),
            anomalous: self.anomalous.load(Relaxed),
            sample_rate: self.sample_rate(),
            last_anomaly: self.last_anomaly.lock().unwrap().clone(),
            glyphs,
            metrics,
            verdicts: self.verdicts.lock().unwrap().clone(),
        }
    }
}

/// Point-in-time copy of one tenant's stats.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name (validated by the serving layer).
    pub name: String,
    /// Total events ingested.
    pub events_total: u64,
    /// Windowed ingest rate.
    pub events_per_sec: u64,
    /// Metric computation points observed live.
    pub samples_total: u64,
    /// In-range → out-of-range transitions observed live.
    pub range_crossings_total: u64,
    /// Incident bundles persisted for this tenant.
    pub incidents_total: u64,
    /// Bug reports raised by this tenant's verdicts.
    pub bugs_total: u64,
    /// Session resumes performed by this tenant's clients.
    pub resumes_total: u64,
    /// Events queued between the connection and its shard.
    pub queue_depth: u64,
    /// Stream currently open.
    pub connected: bool,
    /// Kicked for backpressure or a corrupt stream.
    pub evicted: bool,
    /// Live arm emulation (near-edge or out-of-range metric).
    pub armed: bool,
    /// At least one verdict raised a report.
    pub anomalous: bool,
    /// Announced store-sampling rate (`1.0` = unsampled stream).
    pub sample_rate: f64,
    /// Most recent anomaly description; empty if none.
    pub last_anomaly: String,
    /// One status glyph per stable metric (`-` before the first sample).
    pub glyphs: String,
    /// Per-metric live gauges.
    pub metrics: Vec<MetricGauge>,
    /// Per-metric calibration verdicts from the tenant's model.
    pub verdicts: Vec<MetricVerdict>,
}

impl TenantRow {
    /// One-word lifecycle status for dashboards.
    pub fn status(&self) -> &'static str {
        if self.evicted {
            "evicted"
        } else if self.connected {
            "live"
        } else {
            "done"
        }
    }
}

/// p50/p95/max of one metric's distance-from-range across tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceRollup {
    /// Metric name.
    pub metric: String,
    /// Median distance (nearest rank).
    pub p50: f64,
    /// 95th percentile distance (nearest rank).
    pub p95: f64,
    /// Worst distance.
    pub max: f64,
}

/// Point-in-time copy of the whole fleet: rollups plus one row per
/// tenant (name-sorted).
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Seconds since the registry was created.
    pub uptime_s: u64,
    /// Tenants with an open stream.
    pub connected: u64,
    /// Tenants with at least one anomaly report.
    pub anomalous: u64,
    /// Tenants evicted.
    pub evicted: u64,
    /// Tenants ever seen.
    pub tenants_total: u64,
    /// Events ingested across all tenants.
    pub events_total: u64,
    /// Sum of per-tenant windowed rates.
    pub events_per_sec: u64,
    /// Incident bundles persisted across all tenants.
    pub incidents_total: u64,
    /// Streams accepted over the daemon's lifetime.
    pub streams_total: u64,
    /// Evictions over the daemon's lifetime.
    pub evictions_total: u64,
    /// Reconnections into an existing session over the daemon's
    /// lifetime.
    pub reconnects_total: u64,
    /// Connections rejected before tenant registration.
    pub protocol_errors_total: u64,
    /// Per-metric distance rollups, metric-name-sorted.
    pub distance_rollups: Vec<DistanceRollup>,
    /// Per-tenant rows, name-sorted.
    pub tenants: Vec<TenantRow>,
}

/// The daemon-wide tenant registry (see the module docs).
#[derive(Debug)]
pub struct FleetRegistry {
    started: Instant,
    tenants: RwLock<BTreeMap<String, Arc<TenantStats>>>,
    streams_total: AtomicU64,
    evictions_total: AtomicU64,
    reconnects_total: AtomicU64,
    protocol_errors_total: AtomicU64,
}

impl Default for FleetRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetRegistry {
    /// An empty fleet.
    pub fn new() -> Self {
        FleetRegistry {
            started: Instant::now(),
            tenants: RwLock::new(BTreeMap::new()),
            streams_total: AtomicU64::new(0),
            evictions_total: AtomicU64::new(0),
            reconnects_total: AtomicU64::new(0),
            protocol_errors_total: AtomicU64::new(0),
        }
    }

    /// Registers a stream for `name` (creating the tenant on first
    /// sight), marks it connected, and returns its stats handle.
    pub fn connect(&self, name: &str) -> Arc<TenantStats> {
        self.streams_total.fetch_add(1, Relaxed);
        let stats = self.tenant(name);
        stats.set_connected(true);
        stats
    }

    /// Returns the stats handle for `name`, creating the tenant without
    /// registering a stream.
    pub fn tenant(&self, name: &str) -> Arc<TenantStats> {
        // Early return keeps the read guard's lifetime clear of the
        // write() below — an `if let .. else` would hold it across the
        // else branch and self-deadlock.
        if let Some(t) = self.tenants.read().unwrap().get(name) {
            return Arc::clone(t);
        }
        Arc::clone(
            self.tenants
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Kicks a tenant out: marks it evicted and counts the eviction.
    pub fn evict(&self, stats: &TenantStats) {
        stats.set_evicted();
        self.evictions_total.fetch_add(1, Relaxed);
    }

    /// Counts a client reconnecting into an existing session (the
    /// matching per-tenant resume is [`TenantStats::record_resume`]).
    pub fn record_reconnect(&self) {
        self.reconnects_total.fetch_add(1, Relaxed);
    }

    /// Counts a connection rejected before tenant registration (bad
    /// preamble, invalid tenant name).
    pub fn record_protocol_error(&self) {
        self.protocol_errors_total.fetch_add(1, Relaxed);
    }

    /// Snapshots every tenant and computes the fleet rollups.
    pub fn snapshot(&self) -> FleetSnapshot {
        let rows: Vec<TenantRow> = self
            .tenants
            .read()
            .unwrap()
            .iter()
            .map(|(name, t)| t.row(name))
            .collect();
        let mut by_metric: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for row in &rows {
            for m in &row.metrics {
                by_metric.entry(&m.metric).or_default().push(m.distance);
            }
        }
        let distance_rollups = by_metric
            .into_iter()
            .map(|(metric, mut dists)| {
                dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                DistanceRollup {
                    metric: metric.to_string(),
                    p50: nearest_rank(&dists, 0.50),
                    p95: nearest_rank(&dists, 0.95),
                    max: *dists.last().unwrap_or(&0.0),
                }
            })
            .collect();
        FleetSnapshot {
            uptime_s: self.started.elapsed().as_secs(),
            connected: rows.iter().filter(|r| r.connected).count() as u64,
            anomalous: rows.iter().filter(|r| r.anomalous).count() as u64,
            evicted: rows.iter().filter(|r| r.evicted).count() as u64,
            tenants_total: rows.len() as u64,
            events_total: rows.iter().map(|r| r.events_total).sum(),
            events_per_sec: rows
                .iter()
                .filter(|r| r.connected)
                .map(|r| r.events_per_sec)
                .sum(),
            incidents_total: rows.iter().map(|r| r.incidents_total).sum(),
            streams_total: self.streams_total.load(Relaxed),
            evictions_total: self.evictions_total.load(Relaxed),
            reconnects_total: self.reconnects_total.load(Relaxed),
            protocol_errors_total: self.protocol_errors_total.load(Relaxed),
            distance_rollups,
            tenants: rows,
        }
    }

    /// Renders the fleet section of the Prometheus exposition (see
    /// [`FleetSnapshot::prometheus_text`]).
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// Renders the control-socket dump (see [`FleetSnapshot::tsv`]).
    pub fn tsv(&self) -> String {
        self.snapshot().tsv()
    }

    /// Renders the JSON-lines firehose (see
    /// [`FleetSnapshot::firehose_jsonl`]).
    pub fn firehose_jsonl(&self) -> String {
        self.snapshot().firehose_jsonl()
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

impl FleetSnapshot {
    /// Renders the fleet rollups and per-tenant series in Prometheus
    /// text exposition format. Tenant and metric names travel as label
    /// values (escaped), so hostile names cannot corrupt the dump.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("heapmd_fleet_tenants_connected", self.connected),
            ("heapmd_fleet_tenants_anomalous", self.anomalous),
            ("heapmd_fleet_tenants_evicted", self.evicted),
            ("heapmd_fleet_tenants_total", self.tenants_total),
            ("heapmd_fleet_events_per_sec", self.events_per_sec),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, value) in [
            ("heapmd_fleet_events_total", self.events_total),
            ("heapmd_fleet_incidents_total", self.incidents_total),
            ("heapmd_fleet_streams_total", self.streams_total),
            ("heapmd_fleet_evictions_total", self.evictions_total),
            ("heapmd_fleet_reconnects_total", self.reconnects_total),
            (
                "heapmd_fleet_protocol_errors_total",
                self.protocol_errors_total,
            ),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        if !self.distance_rollups.is_empty() {
            let _ = writeln!(out, "# TYPE heapmd_fleet_metric_distance gauge");
            for r in &self.distance_rollups {
                let metric = escape_label_value(&r.metric);
                for (q, v) in [("0.5", r.p50), ("0.95", r.p95), ("max", r.max)] {
                    let _ = writeln!(
                        out,
                        "heapmd_fleet_metric_distance{{metric=\"{metric}\",quantile=\"{q}\"}} {v}"
                    );
                }
            }
        }
        if self.tenants.is_empty() {
            return out;
        }
        let family =
            |name: &str, kind: &str, value: &dyn Fn(&TenantRow) -> String, out: &mut String| {
                let name = sanitize_metric_name(name);
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for row in &self.tenants {
                    let _ = writeln!(
                        out,
                        "{name}{{tenant=\"{}\"}} {}",
                        escape_label_value(&row.name),
                        value(row)
                    );
                }
            };
        family(
            "heapmd_tenant_events_total",
            "counter",
            &|r| r.events_total.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_samples_total",
            "counter",
            &|r| r.samples_total.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_range_crossings_total",
            "counter",
            &|r| r.range_crossings_total.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_incidents_total",
            "counter",
            &|r| r.incidents_total.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_bugs_total",
            "counter",
            &|r| r.bugs_total.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_resumes_total",
            "counter",
            &|r| r.resumes_total.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_events_per_sec",
            "gauge",
            &|r| r.events_per_sec.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_queue_depth",
            "gauge",
            &|r| r.queue_depth.to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_connected",
            "gauge",
            &|r| u8::from(r.connected).to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_armed",
            "gauge",
            &|r| u8::from(r.armed).to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_anomalous",
            "gauge",
            &|r| u8::from(r.anomalous).to_string(),
            &mut out,
        );
        family(
            "heapmd_tenant_sample_rate",
            "gauge",
            &|r| r.sample_rate.to_string(),
            &mut out,
        );
        let with_metrics = self.tenants.iter().any(|r| !r.metrics.is_empty());
        if with_metrics {
            for (name, pick) in [
                ("heapmd_tenant_metric_value", 0u8),
                ("heapmd_tenant_metric_distance", 1u8),
                ("heapmd_tenant_metric_band", 2u8),
            ] {
                let _ = writeln!(out, "# TYPE {name} gauge");
                for row in &self.tenants {
                    let tenant = escape_label_value(&row.name);
                    for m in &row.metrics {
                        let v = match pick {
                            0 => m.value,
                            1 => m.distance,
                            _ => m.band,
                        };
                        let _ = writeln!(
                            out,
                            "{name}{{tenant=\"{tenant}\",metric=\"{}\"}} {v}",
                            escape_label_value(&m.metric)
                        );
                    }
                }
            }
        }
        if self.tenants.iter().any(|r| !r.verdicts.is_empty()) {
            let _ = writeln!(out, "# TYPE heapmd_tenant_metric_stability gauge");
            for row in &self.tenants {
                let tenant = escape_label_value(&row.name);
                for v in &row.verdicts {
                    let _ = writeln!(
                        out,
                        "heapmd_tenant_metric_stability{{tenant=\"{tenant}\",metric=\"{}\"}} {}",
                        escape_label_value(&v.metric),
                        u8::from(v.stable)
                    );
                }
            }
        }
        out
    }

    /// Renders the tab-separated control dump `heapmd top` polls:
    ///
    /// ```text
    /// fleet <uptime_s> <connected> <anomalous> <tenants> <events> <events/s> <incidents> <evictions>
    /// metric <name> <p50> <p95> <max>
    /// tenant <name> <events> <events/s> <samples> <crossings> <incidents> <bugs> <status> <anomalous> <glyphs> <last_anomaly|->
    /// ```
    ///
    /// Tab/newline bytes cannot appear in the variable columns: tenant
    /// names are charset-validated by the serving layer and metric
    /// names come from [`MetricKind::short_name`]-style constants; both
    /// are additionally stripped here as defense in depth.
    pub fn tsv(&self) -> String {
        fn cell(s: &str) -> String {
            s.chars()
                .map(|c| if c == '\t' || c == '\n' { '_' } else { c })
                .collect()
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.uptime_s,
            self.connected,
            self.anomalous,
            self.tenants_total,
            self.events_total,
            self.events_per_sec,
            self.incidents_total,
            self.evictions_total,
        );
        for r in &self.distance_rollups {
            let _ = writeln!(
                out,
                "metric\t{}\t{}\t{}\t{}",
                cell(&r.metric),
                r.p50,
                r.p95,
                r.max
            );
        }
        for t in &self.tenants {
            let anomaly = if t.last_anomaly.is_empty() {
                "-"
            } else {
                &t.last_anomaly
            };
            let _ = writeln!(
                out,
                "tenant\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                cell(&t.name),
                t.events_total,
                t.events_per_sec,
                t.samples_total,
                t.range_crossings_total,
                t.incidents_total,
                t.bugs_total,
                t.status(),
                u8::from(t.anomalous),
                cell(&t.glyphs),
                cell(anomaly),
            );
        }
        out
    }

    /// Renders the snapshot as a JSON-lines firehose: one `fleet` line
    /// followed by one `tenant` line per tenant.
    pub fn firehose_jsonl(&self) -> String {
        let mut out = String::new();
        let mut fleet = JsonObject::new();
        fleet
            .field_str("type", "fleet")
            .field_u64("uptime_s", self.uptime_s)
            .field_u64("tenants_connected", self.connected)
            .field_u64("tenants_anomalous", self.anomalous)
            .field_u64("tenants_total", self.tenants_total)
            .field_u64("events_total", self.events_total)
            .field_u64("events_per_sec", self.events_per_sec)
            .field_u64("incidents_total", self.incidents_total)
            .field_u64("streams_total", self.streams_total)
            .field_u64("evictions_total", self.evictions_total)
            .field_u64("reconnects_total", self.reconnects_total);
        out.push_str(&fleet.finish());
        out.push('\n');
        for r in &self.distance_rollups {
            let mut line = JsonObject::new();
            line.field_str("type", "metric_rollup")
                .field_str("metric", &r.metric)
                .field_f64("p50", r.p50)
                .field_f64("p95", r.p95)
                .field_f64("max", r.max);
            out.push_str(&line.finish());
            out.push('\n');
        }
        for t in &self.tenants {
            let mut line = JsonObject::new();
            line.field_str("type", "tenant")
                .field_str("name", &t.name)
                .field_u64("events_total", t.events_total)
                .field_u64("events_per_sec", t.events_per_sec)
                .field_u64("samples_total", t.samples_total)
                .field_u64("range_crossings_total", t.range_crossings_total)
                .field_u64("incidents_total", t.incidents_total)
                .field_u64("bugs_total", t.bugs_total)
                .field_u64("resumes_total", t.resumes_total)
                .field_str("status", t.status())
                .field_bool("armed", t.armed)
                .field_bool("anomalous", t.anomalous)
                .field_f64("sample_rate", t.sample_rate)
                .field_f64(
                    "band_max",
                    t.metrics.iter().fold(0.0, |acc, m| m.band.max(acc)),
                )
                .field_str("glyphs", &t.glyphs)
                .field_str("last_anomaly", &t.last_anomaly);
            out.push_str(&line.finish());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges() -> Vec<MetricGauge> {
        vec![
            MetricGauge {
                metric: "Outdeg=1".into(),
                value: 40.0,
                distance: 0.0,
                band: 12.0,
                status: STATUS_OK,
            },
            MetricGauge {
                metric: "In=Out".into(),
                value: 9.0,
                distance: 2.5,
                band: 4.0,
                status: STATUS_OUT,
            },
        ]
    }

    #[test]
    fn rollups_aggregate_across_tenants() {
        let fleet = FleetRegistry::new();
        let a = fleet.connect("a");
        a.record_events(100);
        a.set_rate(50);
        a.set_metrics(gauges());
        a.record_bugs(2);
        let b = fleet.connect("b");
        b.record_events(40);
        b.set_rate(25);
        b.set_metrics(vec![MetricGauge {
            metric: "In=Out".into(),
            value: 5.0,
            distance: 0.5,
            band: 4.0,
            status: STATUS_OUT,
        }]);
        let snap = fleet.snapshot();
        assert_eq!(snap.tenants_total, 2);
        assert_eq!(snap.connected, 2);
        assert_eq!(snap.anomalous, 1);
        assert_eq!(snap.events_total, 140);
        assert_eq!(snap.events_per_sec, 75);
        assert_eq!(snap.streams_total, 2);
        let ineqout = snap
            .distance_rollups
            .iter()
            .find(|r| r.metric == "In=Out")
            .unwrap();
        assert_eq!(ineqout.max, 2.5);
        assert_eq!(ineqout.p50, 0.5, "nearest rank of [0.5, 2.5] at q=0.5");
    }

    #[test]
    fn eviction_disconnects_and_counts() {
        let fleet = FleetRegistry::new();
        let a = fleet.connect("slow");
        assert!(a.is_connected());
        fleet.evict(&a);
        assert!(!a.is_connected());
        assert!(a.is_evicted());
        let snap = fleet.snapshot();
        assert_eq!(snap.evictions_total, 1);
        assert_eq!(snap.evicted, 1);
        assert_eq!(snap.connected, 0);
        assert_eq!(snap.tenants[0].status(), "evicted");
    }

    #[test]
    fn prometheus_text_labels_and_escapes() {
        let fleet = FleetRegistry::new();
        let t = fleet.connect("api\"eu\\1");
        t.record_events(7);
        t.set_metrics(gauges());
        let text = fleet.prometheus_text();
        assert!(text.contains("# TYPE heapmd_tenant_events_total counter"));
        assert!(text.contains("heapmd_tenant_events_total{tenant=\"api\\\"eu\\\\1\"} 7"));
        assert!(text.contains(
            "heapmd_tenant_metric_distance{tenant=\"api\\\"eu\\\\1\",metric=\"In=Out\"} 2.5"
        ));
        assert!(
            text.contains("heapmd_fleet_metric_distance{metric=\"In=Out\",quantile=\"max\"} 2.5")
        );
        assert!(text.contains("heapmd_fleet_tenants_connected 1"));
    }

    #[test]
    fn tsv_and_firehose_render_every_tenant() {
        let fleet = FleetRegistry::new();
        let t = fleet.connect("web");
        t.record_events(3);
        t.set_metrics(gauges());
        t.set_last_anomaly("In=Out above range");
        let tsv = fleet.tsv();
        assert!(tsv.starts_with("fleet\t"));
        assert!(tsv.contains("tenant\tweb\t3\t"));
        assert!(tsv.contains(".X"), "glyphs rendered: {tsv}");
        let jsonl = fleet.firehose_jsonl();
        assert!(jsonl.lines().next().unwrap().contains("\"type\":\"fleet\""));
        assert!(jsonl.contains("\"name\":\"web\""));
        assert!(jsonl.contains("\"glyphs\":\".X\""));
    }

    #[test]
    fn glyphs_cover_all_statuses() {
        assert_eq!(status_glyph(STATUS_OK), '.');
        assert_eq!(status_glyph(STATUS_NEAR_EDGE), '!');
        assert_eq!(status_glyph(STATUS_OUT), 'X');
    }
}
