//! Scope guards that time a region and record the result on drop.
//!
//! Both guards are built to be constructed unconditionally at the top
//! of an instrumented function: when observability is disabled they
//! hold no clock reading and their `Drop` is a no-op, so the only fast-
//! path cost is the single relaxed load the caller (usually the
//! `timer!`/`span!` macros) performs to decide which variant to build.

use crate::registry::Histogram;
use crate::trace_event::{self, SpanCtx};
use std::sync::Arc;
use std::time::Instant;

/// Records elapsed nanoseconds into a [`Histogram`] when dropped.
#[must_use = "a timer measures until it is dropped; binding to _ drops immediately"]
pub struct MaybeTimer {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl MaybeTimer {
    /// A live timer; starts the clock now.
    pub fn started(histogram: Arc<Histogram>) -> Self {
        MaybeTimer {
            inner: Some((histogram, Instant::now())),
        }
    }

    /// A disabled timer; drop does nothing.
    pub fn off() -> Self {
        MaybeTimer { inner: None }
    }
}

impl Drop for MaybeTimer {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.inner.take() {
            histogram.observe(saturating_nanos(start));
        }
    }
}

/// A named region: on drop, emits a `span` event (with the measured
/// duration, span/parent ids, and thread id) to the JSONL sink when one
/// is active, logs the region at trace level, and — when
/// [`crate::trace_event::set_collecting`] is on — buffers the finished
/// span for Chrome trace-event export.
#[must_use = "a span measures until it is dropped; binding to _ drops immediately"]
pub struct Span {
    inner: Option<(&'static str, Instant, SpanCtx)>,
}

impl Span {
    /// Starts a live span over `name`, assigning it a process-unique
    /// id linked to the span currently open on this thread.
    pub fn started(name: &'static str) -> Self {
        let ctx = trace_event::enter();
        Span {
            inner: Some((name, Instant::now(), ctx)),
        }
    }

    /// A disabled span; drop does nothing.
    pub fn off() -> Self {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start, ctx)) = self.inner.take() {
            let end = Instant::now();
            trace_event::exit(&ctx, name, start, end);
            let nanos = saturating_nanos(start);
            crate::export::emit_event("span", |o| {
                o.field_str("name", name)
                    .field_u64("dur_ns", nanos)
                    .field_u64("span_id", ctx.id)
                    .field_u64("tid", ctx.tid);
                if let Some(p) = ctx.parent {
                    o.field_u64("parent_id", p);
                }
            });
            crate::trace!("span {name} took {nanos}ns");
        }
    }
}

fn saturating_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Histogram;

    #[test]
    fn live_timer_records_one_observation() {
        let h = Arc::new(Histogram::new(&[1_000_000_000]));
        {
            let _t = MaybeTimer::started(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn off_timer_records_nothing() {
        let h = Arc::new(Histogram::new(&[1_000_000_000]));
        {
            let _t = MaybeTimer::off();
        }
        assert_eq!(h.count(), 0);
    }
}
