//! Exporters: the JSON-lines event/heartbeat stream and the
//! Prometheus-style text exposition dump.
//!
//! The JSONL sink is process-global: installing one (usually via the
//! CLI's `--obs-out` flag) flips an atomic so producers can skip event
//! construction entirely when nothing is listening. Every event is one
//! JSON object per line with at least `type` and `ts_ms` fields.

use crate::json::JsonObject;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Whether a JSONL sink is installed. Producers should check this (it
/// is one relaxed load) before building an event payload.
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Relaxed)
}

/// Installs `writer` as the process-global JSONL sink, replacing (and
/// flushing) any previous one.
pub fn set_sink(writer: Box<dyn Write + Send>) {
    let mut guard = SINK.lock().unwrap();
    if let Some(old) = guard.as_mut() {
        let _ = old.flush();
    }
    *guard = Some(writer);
    SINK_ACTIVE.store(true, Relaxed);
}

/// Creates (truncating) `path` and installs it as the JSONL sink.
pub fn set_sink_file(path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    set_sink(Box::new(io::BufWriter::new(file)));
    Ok(())
}

/// Flushes and removes the sink, if any.
pub fn clear_sink() {
    SINK_ACTIVE.store(false, Relaxed);
    let mut guard = SINK.lock().unwrap();
    if let Some(old) = guard.as_mut() {
        let _ = old.flush();
    }
    *guard = None;
}

/// Flushes the sink without removing it.
pub fn flush_sink() {
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        let _ = sink.flush();
    }
}

fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Emits one event of the given `kind` to the sink, if one is active.
/// `fill` adds the payload fields; `type` and `ts_ms` are added for it.
/// Write errors deactivate the sink rather than propagate — telemetry
/// must never take down the pipeline it observes.
pub fn emit_event(kind: &str, fill: impl FnOnce(&mut JsonObject)) {
    if !sink_active() {
        return;
    }
    let mut event = JsonObject::new();
    event
        .field_str("type", kind)
        .field_u64("ts_ms", unix_millis());
    fill(&mut event);
    let mut line = event.finish();
    line.push('\n');

    let mut guard = SINK.lock().unwrap();
    let Some(sink) = guard.as_mut() else {
        return;
    };
    if sink.write_all(line.as_bytes()).is_err() {
        SINK_ACTIVE.store(false, Relaxed);
        *guard = None;
    }
}

/// Emits a `counters` event carrying the final totals of every counter
/// and gauge in the global registry (histograms travel in the
/// Prometheus dump, which keeps their bucket detail).
pub fn emit_counters_event() {
    if !sink_active() {
        return;
    }
    let snapshot = crate::registry().snapshot();
    emit_event("counters", |o| {
        let mut counters = JsonObject::new();
        for (name, total) in &snapshot.counters {
            counters.field_u64(name, *total);
        }
        o.field_raw("counters", &counters.finish());
        let mut gauges = JsonObject::new();
        for (name, value) in &snapshot.gauges {
            gauges.field_i64(name, *value);
        }
        o.field_raw("gauges", &gauges.finish());
    });
}

/// Renders the global registry in Prometheus text exposition format.
pub fn prometheus_text() -> String {
    crate::registry().prometheus_text()
}

/// Writes the Prometheus text exposition of the global registry to
/// `path` (truncating).
pub fn write_prometheus_file(path: &Path) -> io::Result<()> {
    std::fs::write(path, prometheus_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handle that appends into a shared buffer.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_reach_the_sink_one_per_line() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        set_sink(Box::new(SharedBuf(Arc::clone(&buf))));
        assert!(sink_active());
        emit_event("unit_test_evt", |o| {
            o.field_u64("n", 1);
        });
        emit_event("unit_test_evt", |o| {
            o.field_u64("n", 2);
        });
        clear_sink();
        assert!(!sink_active());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"unit_test_evt\",\"ts_ms\":"));
        assert!(lines[0].ends_with(",\"n\":1}"));
        assert!(lines[1].ends_with(",\"n\":2}"));
    }

    #[test]
    fn no_sink_means_no_work_and_no_panic() {
        clear_sink();
        emit_event("dropped", |o| {
            o.field_u64("n", 3);
        });
    }
}
