//! Exporters: the JSON-lines event/heartbeat stream and the
//! Prometheus-style text exposition dump.
//!
//! The JSONL sink is process-global: installing one (usually via the
//! CLI's `--obs-out` flag) flips an atomic so producers can skip event
//! construction entirely when nothing is listening. Every event is one
//! JSON object per line with at least `type` and `ts_ms` fields.

use crate::json::JsonObject;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK_DEGRADED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Attempts per sink write/flush before the exporter gives up on the
/// sink and degrades to counters-only operation.
const SINK_ATTEMPTS: u32 = 3;
/// Base backoff between attempts; doubles per retry (1 ms, 2 ms).
const SINK_BACKOFF_MS: u64 = 1;

/// Whether a JSONL sink is installed. Producers should check this (it
/// is one relaxed load) before building an event payload.
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Relaxed)
}

/// Whether the sink was dropped because of persistent write failures.
/// The in-memory registry keeps accumulating, so a final Prometheus
/// dump (or [`prometheus_text`]) still reports complete counters.
#[inline]
pub fn sink_degraded() -> bool {
    SINK_DEGRADED.load(Relaxed)
}

/// Retries `op` with doubling backoff. `io::Write::write_all` already
/// absorbs `ErrorKind::Interrupted`, so every error reaching this loop
/// costs one attempt.
fn with_retry(mut op: impl FnMut() -> io::Result<()>) -> io::Result<()> {
    let mut last = None;
    for attempt in 0..SINK_ATTEMPTS {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) => {
                crate::registry()
                    .counter("heapmd_obs_sink_retries_total")
                    .inc();
                last = Some(e);
                if attempt + 1 < SINK_ATTEMPTS {
                    std::thread::sleep(std::time::Duration::from_millis(
                        SINK_BACKOFF_MS << attempt,
                    ));
                }
            }
        }
    }
    Err(last.expect("SINK_ATTEMPTS > 0"))
}

/// Drops the sink after a persistent failure, downgrading to
/// counters-only operation instead of aborting (or erroring out of) the
/// pipeline being observed.
fn degrade(guard: &mut Option<Box<dyn Write + Send>>, err: &io::Error) {
    SINK_ACTIVE.store(false, Relaxed);
    SINK_DEGRADED.store(true, Relaxed);
    *guard = None;
    crate::registry()
        .counter("heapmd_obs_sink_errors_total")
        .inc();
    eprintln!("heapmd-obs: event sink failed permanently ({err}); continuing with counters only");
}

/// Installs `writer` as the process-global JSONL sink, replacing (and
/// flushing) any previous one.
pub fn set_sink(writer: Box<dyn Write + Send>) {
    let mut guard = SINK.lock().unwrap();
    if let Some(old) = guard.as_mut() {
        let _ = old.flush();
    }
    *guard = Some(writer);
    SINK_DEGRADED.store(false, Relaxed);
    SINK_ACTIVE.store(true, Relaxed);
}

/// Creates (truncating) `path` and installs it as the JSONL sink.
pub fn set_sink_file(path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    set_sink(Box::new(io::BufWriter::new(file)));
    Ok(())
}

/// Flushes and removes the sink, if any.
pub fn clear_sink() {
    SINK_ACTIVE.store(false, Relaxed);
    let mut guard = SINK.lock().unwrap();
    if let Some(old) = guard.as_mut() {
        let _ = old.flush();
    }
    *guard = None;
}

/// Flushes the sink without removing it. Flush failures are retried
/// with bounded backoff; a persistent failure degrades the exporter to
/// counters-only (see [`sink_degraded`]).
pub fn flush_sink() {
    let mut guard = SINK.lock().unwrap();
    if let Some(sink) = guard.as_mut() {
        if let Err(e) = with_retry(|| sink.flush()) {
            degrade(&mut guard, &e);
        }
    }
}

fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Emits one event of the given `kind` to the sink, if one is active.
/// `fill` adds the payload fields; `type` and `ts_ms` are added for it.
/// Write errors are retried with bounded backoff; a sink that keeps
/// failing is dropped and the exporter degrades to counters-only —
/// telemetry must never take down the pipeline it observes.
pub fn emit_event(kind: &str, fill: impl FnOnce(&mut JsonObject)) {
    if !sink_active() {
        return;
    }
    let mut event = JsonObject::new();
    event
        .field_str("type", kind)
        .field_u64("ts_ms", unix_millis());
    fill(&mut event);
    let mut line = event.finish();
    line.push('\n');

    let mut guard = SINK.lock().unwrap();
    let Some(sink) = guard.as_mut() else {
        return;
    };
    if let Err(e) = with_retry(|| sink.write_all(line.as_bytes())) {
        degrade(&mut guard, &e);
    }
}

/// Emits a `counters` event carrying the final totals of every counter
/// and gauge in the global registry (histograms travel in the
/// Prometheus dump, which keeps their bucket detail).
pub fn emit_counters_event() {
    if !sink_active() {
        return;
    }
    let snapshot = crate::registry().snapshot();
    emit_event("counters", |o| {
        let mut counters = JsonObject::new();
        for (name, total) in &snapshot.counters {
            counters.field_u64(name, *total);
        }
        o.field_raw("counters", &counters.finish());
        let mut gauges = JsonObject::new();
        for (name, value) in &snapshot.gauges {
            gauges.field_i64(name, *value);
        }
        o.field_raw("gauges", &gauges.finish());
    });
}

/// Rewrites `name` into a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, and a
/// leading digit gets a `_` prefix. Empty input becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes `value` for use inside a Prometheus label value (the part
/// between the quotes): backslash, double quote, and line feed get
/// backslash escapes per the text exposition format.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// Anchors the process uptime gauge. Long-running entry points (the
/// `heapmd` CLI, the serve daemon) call this once at startup; every
/// later dump then carries `heapmd_uptime_seconds`. Idempotent — the
/// first call wins.
pub fn mark_process_start() {
    let _ = PROCESS_START.get_or_init(Instant::now);
}

/// Seconds since [`mark_process_start`]; `None` if it was never called.
pub fn uptime_seconds() -> Option<u64> {
    PROCESS_START.get().map(|t| t.elapsed().as_secs())
}

/// Build identity and exporter-health series appended to every dump:
/// `heapmd_build_info` (the conventional always-1 gauge carrying the
/// version as a label), `heapmd_uptime_seconds` when the entry point
/// marked its start, and `heapmd_obs_sink_degraded` so a final dump
/// records that the JSONL sink died mid-run even when nothing scraped
/// the live process.
pub fn runtime_info_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# TYPE heapmd_build_info gauge\nheapmd_build_info{{version=\"{}\"}} 1",
        escape_label_value(env!("CARGO_PKG_VERSION"))
    );
    if let Some(secs) = uptime_seconds() {
        let _ = writeln!(
            out,
            "# TYPE heapmd_uptime_seconds gauge\nheapmd_uptime_seconds {secs}"
        );
    }
    let _ = writeln!(
        out,
        "# TYPE heapmd_obs_sink_degraded gauge\nheapmd_obs_sink_degraded {}",
        u8::from(sink_degraded())
    );
    out
}

/// Renders the global registry in Prometheus text exposition format,
/// followed by the build/runtime series of [`runtime_info_text`].
pub fn prometheus_text() -> String {
    let mut out = crate::registry().prometheus_text();
    out.push_str(&runtime_info_text());
    out
}

/// Writes the Prometheus text exposition of the global registry to
/// `path` (truncating).
pub fn write_prometheus_file(path: &Path) -> io::Result<()> {
    std::fs::write(path, prometheus_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Serializes tests that touch the process-global sink.
    static SINK_TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn sink_test_guard() -> std::sync::MutexGuard<'static, ()> {
        SINK_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A `Write` handle that appends into a shared buffer.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_reach_the_sink_one_per_line() {
        let _guard = sink_test_guard();
        let buf = Arc::new(StdMutex::new(Vec::new()));
        set_sink(Box::new(SharedBuf(Arc::clone(&buf))));
        assert!(sink_active());
        emit_event("unit_test_evt", |o| {
            o.field_u64("n", 1);
        });
        emit_event("unit_test_evt", |o| {
            o.field_u64("n", 2);
        });
        clear_sink();
        assert!(!sink_active());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"unit_test_evt\",\"ts_ms\":"));
        assert!(lines[0].ends_with(",\"n\":1}"));
        assert!(lines[1].ends_with(",\"n\":2}"));
    }

    #[test]
    fn no_sink_means_no_work_and_no_panic() {
        let _guard = sink_test_guard();
        clear_sink();
        emit_event("dropped", |o| {
            o.field_u64("n", 3);
        });
    }

    /// Fails a fixed number of writes, then recovers.
    struct FlakySink {
        failures_left: Arc<StdMutex<u32>>,
        out: Arc<StdMutex<Vec<u8>>>,
    }

    impl Write for FlakySink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let mut left = self.failures_left.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Err(io::Error::other("transient"));
            }
            self.out.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn transient_write_failures_are_retried() {
        let _guard = sink_test_guard();
        let out = Arc::new(StdMutex::new(Vec::new()));
        set_sink(Box::new(FlakySink {
            failures_left: Arc::new(StdMutex::new(SINK_ATTEMPTS - 1)),
            out: Arc::clone(&out),
        }));
        emit_event("retried_evt", |o| {
            o.field_u64("n", 7);
        });
        assert!(sink_active(), "sink survived transient failures");
        assert!(!sink_degraded());
        clear_sink();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"retried_evt\""), "event landed: {text:?}");
    }

    #[test]
    fn metric_names_are_sanitized_to_exposition_grammar() {
        assert_eq!(
            sanitize_metric_name("heapmd_events_total"),
            "heapmd_events_total"
        );
        assert_eq!(sanitize_metric_name("ns:sub_total"), "ns:sub_total");
        assert_eq!(
            sanitize_metric_name("evil name\"with\\junk"),
            "evil_name_with_junk"
        );
        assert_eq!(sanitize_metric_name("dots.and-dashes"), "dots_and_dashes");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("line\nbreak"), "line_break");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three specials in one value"
        );
    }

    #[test]
    fn prometheus_dump_is_line_safe_for_hostile_names() {
        let _guard = sink_test_guard();
        crate::registry().counter("bad\nname\"x").inc();
        let text = prometheus_text();
        assert!(text.contains("# TYPE bad_name_x counter"));
        assert!(text.contains("bad_name_x 1"));
        assert!(
            !text.contains("bad\nname"),
            "raw hostile name must not leak into the dump"
        );
    }

    #[test]
    fn runtime_info_rides_every_prometheus_dump() {
        let _guard = sink_test_guard();
        let text = prometheus_text();
        assert!(
            text.contains("# TYPE heapmd_build_info gauge\nheapmd_build_info{version=\""),
            "build info present: {text}"
        );
        assert!(text.contains("# TYPE heapmd_obs_sink_degraded gauge\nheapmd_obs_sink_degraded "));
        mark_process_start();
        assert!(prometheus_text().contains("\nheapmd_uptime_seconds "));
    }

    #[test]
    fn degraded_sink_is_visible_in_the_final_dump() {
        let _guard = sink_test_guard();
        set_sink(Box::new(FlakySink {
            failures_left: Arc::new(StdMutex::new(u32::MAX)),
            out: Arc::new(StdMutex::new(Vec::new())),
        }));
        emit_event("doomed_for_dump", |o| {
            o.field_u64("n", 1);
        });
        assert!(sink_degraded());
        assert!(prometheus_text().contains("heapmd_obs_sink_degraded 1"));
        set_sink(Box::new(SharedBuf(Arc::new(StdMutex::new(Vec::new())))));
        assert!(prometheus_text().contains("heapmd_obs_sink_degraded 0"));
        clear_sink();
    }

    #[test]
    fn persistent_write_failure_degrades_to_counters_only() {
        let _guard = sink_test_guard();
        let out = Arc::new(StdMutex::new(Vec::new()));
        set_sink(Box::new(FlakySink {
            failures_left: Arc::new(StdMutex::new(u32::MAX)),
            out: Arc::clone(&out),
        }));
        let errors_before = crate::registry()
            .counter("heapmd_obs_sink_errors_total")
            .get();
        emit_event("doomed_evt", |o| {
            o.field_u64("n", 1);
        });
        assert!(!sink_active(), "persistently failing sink was dropped");
        assert!(sink_degraded());
        assert_eq!(
            crate::registry()
                .counter("heapmd_obs_sink_errors_total")
                .get(),
            errors_before + 1
        );
        // Counters-only mode: the registry still works end to end.
        crate::registry().counter("degraded_mode_probe").inc();
        assert!(prometheus_text().contains("degraded_mode_probe"));
        // A fresh sink clears the degraded state.
        set_sink(Box::new(SharedBuf(Arc::new(StdMutex::new(Vec::new())))));
        assert!(!sink_degraded());
        clear_sink();
    }
}
