//! Per-stage throughput instrumentation for batch-shaped work.
//!
//! Hot-path stages (graph batch apply, trace replay, parallel training)
//! process events in batches; per-event instrumentation at those rates
//! would cost more than the work it measures. This module records one
//! set of instruments per *batch* instead:
//!
//! - `{stage}_events_total` / `{stage}_batches_total` counters,
//! - a `{stage}_busy_ns_total` counter (cumulative time inside the
//!   stage, so a Prometheus scraper can derive true rates from two
//!   counter samples: `rate(events_total) / rate(busy_ns_total)`),
//! - a `{stage}_batch_ns` latency histogram,
//! - `{stage}_ns_per_event` and `{stage}_events_per_sec` gauges holding
//!   the most recent batch's rates.
//!
//! Stage names are dynamic, so handles are resolved through the
//! registry on every call — callers must gate on [`stage_clock`] (or
//! [`crate::obs_enabled`]) so disabled runs pay only a relaxed load.
//!
//! ```
//! let clock = heapmd_obs::throughput::stage_clock();
//! let events = 10_000u64; // ... process the batch ...
//! if let Some(t0) = clock {
//!     let ns = t0.elapsed().as_nanos() as u64;
//!     heapmd_obs::throughput::record_stage("demo_stage", events, ns);
//! }
//! ```

use crate::registry::DEFAULT_LATENCY_BOUNDS_NS;
use crate::{obs_enabled, registry};
use std::time::Instant;

/// Starts a batch clock if observability is enabled; `None` otherwise.
///
/// The `Option` doubles as the "should I record?" flag so disabled runs
/// never read the clock.
#[inline]
pub fn stage_clock() -> Option<Instant> {
    obs_enabled().then(Instant::now)
}

/// Records one processed batch for `stage`: `events` events completed
/// in `elapsed_ns` nanoseconds.
///
/// No-op when observability is disabled or `events` is zero.
pub fn record_stage(stage: &str, events: u64, elapsed_ns: u64) {
    if !obs_enabled() || events == 0 {
        return;
    }
    let reg = registry();
    reg.counter(&format!("{stage}_events_total")).add(events);
    reg.counter(&format!("{stage}_batches_total")).inc();
    reg.counter(&format!("{stage}_busy_ns_total"))
        .add(elapsed_ns);
    reg.histogram(&format!("{stage}_batch_ns"), DEFAULT_LATENCY_BOUNDS_NS)
        .observe(elapsed_ns);
    reg.gauge(&format!("{stage}_ns_per_event"))
        .set((elapsed_ns / events) as i64);
    if elapsed_ns > 0 {
        let per_sec = (events as u128 * 1_000_000_000) / elapsed_ns as u128;
        reg.gauge(&format!("{stage}_events_per_sec"))
            .set(per_sec.min(i64::MAX as u128) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        assert!(stage_clock().is_none());
        record_stage("tp_test_off", 100, 1_000);
        assert_eq!(registry().counter("tp_test_off_events_total").get(), 0);
    }

    #[test]
    fn enabled_records_rates() {
        set_enabled(true);
        record_stage("tp_test_on", 1_000, 2_000_000); // 2µs/event
        set_enabled(false);
        assert_eq!(registry().counter("tp_test_on_events_total").get(), 1_000);
        assert_eq!(registry().counter("tp_test_on_batches_total").get(), 1);
        assert_eq!(
            registry().counter("tp_test_on_busy_ns_total").get(),
            2_000_000
        );
        assert_eq!(registry().gauge("tp_test_on_ns_per_event").get(), 2_000);
        assert_eq!(registry().gauge("tp_test_on_events_per_sec").get(), 500_000);
    }

    #[test]
    fn zero_events_is_noop() {
        set_enabled(true);
        record_stage("tp_test_zero", 0, 5_000);
        set_enabled(false);
        assert_eq!(registry().counter("tp_test_zero_batches_total").get(), 0);
    }
}
