//! Named metric instruments: atomic counters, gauges, and fixed-bucket
//! latency histograms, collected in a process-global [`Registry`].
//!
//! Instruments are lock-free after creation (plain relaxed atomics);
//! the registry's maps are only locked on first lookup of a name, and
//! call sites are expected to cache the returned `Arc` handle (the
//! `counter!`/`timer!` macros in the crate root do exactly that).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A settable signed value (e.g. live objects, queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Default latency bucket upper bounds, in nanoseconds: roughly
/// logarithmic from 100 ns to 1 s, sized for the per-call costs seen in
/// this pipeline (edge resolution is tens of ns, a metric computation
/// over a large graph can run into milliseconds).
pub const DEFAULT_LATENCY_BOUNDS_NS: &[u64] = &[
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    1_000_000_000,
];

/// Fixed-bucket histogram of `u64` observations (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // one per bound, plus a final +Inf bucket
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Builds a histogram with the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Cumulative bucket counts as `(upper_bound, count_le_bound)`
    /// pairs; the final entry is the +Inf bucket (== total count).
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            acc += bucket.load(Relaxed);
            out.push((self.bounds.get(i).copied(), acc));
        }
        out
    }
}

/// Point-in-time copy of every instrument's state.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, total)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Per-histogram summaries, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Cumulative `(upper_bound, count)` pairs; `None` bound is +Inf.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// A process-global collection of named instruments.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Returns the histogram named `name`, creating it with `bounds` on
    /// first use (later callers get the existing instrument regardless
    /// of the bounds they pass).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshots every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.cumulative_buckets(),
                })
                .collect(),
        }
    }

    /// Renders every instrument in Prometheus text exposition format.
    /// Instrument names are sanitized to the exposition grammar and
    /// label values escaped (see [`crate::export::sanitize_metric_name`]
    /// and [`crate::export::escape_label_value`]), so a hostile or
    /// merely unusual instrument name cannot corrupt the dump.
    pub fn prometheus_text(&self) -> String {
        use crate::export::{escape_label_value, sanitize_metric_name};
        use std::fmt::Write as _;

        let snap = self.snapshot();
        let mut out = String::new();
        for (name, total) in &snap.counters {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {total}");
        }
        for (name, value) in &snap.gauges {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for h in &snap.histograms {
            let name = sanitize_metric_name(&h.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, count) in &h.buckets {
                let le = match bound {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {count}",
                    escape_label_value(&le)
                );
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("events_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("events_total").get(), 5);
        let g = r.gauge("depth");
        g.set(7);
        g.add(-3);
        assert_eq!(r.gauge("depth").get(), 4);
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounds_inclusive() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        // le="10" catches 5 and the exactly-10 observation.
        assert_eq!(
            h.cumulative_buckets(),
            vec![(Some(10), 2), (Some(100), 4), (Some(1000), 4), (None, 5)]
        );
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn prometheus_text_has_all_series() {
        let r = Registry::new();
        r.counter("ops_total").add(3);
        r.gauge("live").set(2);
        r.histogram("lat_ns", &[10, 20]).observe(15);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE ops_total counter\nops_total 3\n"));
        assert!(text.contains("# TYPE live gauge\nlive 2\n"));
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 0"));
        assert!(text.contains("lat_ns_bucket{le=\"20\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ns_sum 15"));
        assert!(text.contains("lat_ns_count 1"));
    }
}
