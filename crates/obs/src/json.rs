//! Minimal JSON object writer used by the exporters.
//!
//! The obs crate is zero-dependency by design (it sits underneath every
//! other crate in the workspace, including the serde stand-ins), so it
//! carries its own small serializer: enough to emit flat-ish event
//! objects with string/number/bool/raw fields, with the same output
//! conventions as the rest of the workspace (non-finite floats become
//! `null`, strings get standard escapes).

use std::fmt::Write as _;

/// Escapes `s` as JSON string contents (no surrounding quotes) into `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends a JSON rendering of `v`: non-finite values become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// An in-progress JSON object; fields render in insertion order.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is pre-rendered JSON (object, array, …).
    pub fn field_raw(&mut self, key: &str, raw_json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw_json);
        self
    }

    /// Adds an array-of-strings field.
    pub fn field_str_array<S: AsRef<str>>(&mut self, key: &str, values: &[S]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('"');
            escape_into(&mut self.buf, v.as_ref());
            self.buf.push('"');
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_order_with_escapes() {
        let mut o = JsonObject::new();
        o.field_str("msg", "a\"b\\c\nd")
            .field_u64("n", 7)
            .field_i64("i", -3)
            .field_f64("f", 1.5)
            .field_f64("nan", f64::NAN)
            .field_bool("ok", true)
            .field_raw("inner", "[1,2]")
            .field_str_array("stack", &["f", "g"]);
        assert_eq!(
            o.finish(),
            "{\"msg\":\"a\\\"b\\\\c\\nd\",\"n\":7,\"i\":-3,\"f\":1.5,\
             \"nan\":null,\"ok\":true,\"inner\":[1,2],\"stack\":[\"f\",\"g\"]}"
        );
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        let mut s = String::new();
        escape_into(&mut s, "\u{01}x");
        assert_eq!(s, "\\u0001x");
    }
}
