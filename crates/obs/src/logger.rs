//! Leveled structured logging for the pipeline.
//!
//! The active level comes from, in priority order: an explicit
//! [`set_log_level`] call (the CLI's `--log-level` flag), else the
//! `HEAPMD_LOG` environment variable, else the default of [`Level::Warn`].
//! Checking whether a level is enabled is a single relaxed atomic load
//! after first use.
//!
//! Log lines go to stderr as `[  12.345s] LEVEL target: message`; when a
//! JSONL sink is active (see [`crate::export`]) each line is mirrored
//! there as a `{"type":"log",...}` event so a run's diagnostics and its
//! metrics land in the same stream.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-invalidating problems.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// High-level lifecycle events.
    Info = 3,
    /// Per-phase detail.
    Debug = 4,
    /// Per-event firehose.
    Trace = 5,
}

impl Level {
    /// Fixed-width uppercase name for log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Lowercase name for structured events.
    pub fn as_lower_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name; `off`/`none` mean "log nothing".
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            other => Err(format!(
                "unknown log level `{other}` (expected off|error|warn|info|debug|trace)"
            )),
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;

static ACTIVE_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn active_level() -> u8 {
    let v = ACTIVE_LEVEL.load(Relaxed);
    if v != LEVEL_UNSET {
        return v;
    }
    let from_env = std::env::var("HEAPMD_LOG")
        .ok()
        .and_then(|s| Level::parse(&s).ok())
        .unwrap_or(Some(Level::Warn));
    let v = from_env.map_or(0, |l| l as u8);
    ACTIVE_LEVEL.store(v, Relaxed);
    v
}

/// Whether messages at `level` are currently emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= active_level()
}

/// Overrides the active level (`None` silences logging entirely);
/// takes precedence over `HEAPMD_LOG`.
pub fn set_log_level(level: Option<Level>) {
    ACTIVE_LEVEL.store(level.map_or(0, |l| l as u8), Relaxed);
}

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since the process first logged (or primed the clock).
pub fn uptime_secs() -> f64 {
    start_instant().elapsed().as_secs_f64()
}

/// Writes one already-formatted message. Called by the level macros —
/// use those instead of calling this directly.
pub fn log_emit(level: Level, target: &str, message: &str) {
    eprintln!(
        "[{:>9.3}s] {:5} {}: {}",
        uptime_secs(),
        level.as_str(),
        target,
        message
    );
    crate::export::emit_event("log", |o| {
        o.field_str("level", level.as_lower_str())
            .field_str("target", target)
            .field_str("msg", message);
    });
}

/// Logs at an explicit [`Level`].
#[macro_export]
macro_rules! log {
    ($level:expr, $($arg:tt)+) => {
        if $crate::log_enabled($level) {
            $crate::logger::log_emit($level, module_path!(), &format!($($arg)+));
        }
    };
}

/// Logs at [`Level::Error`](crate::Level::Error).
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Error, $($arg)+) };
}

/// Logs at [`Level::Warn`](crate::Level::Warn).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Warn, $($arg)+) };
}

/// Logs at [`Level::Info`](crate::Level::Info).
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Info, $($arg)+) };
}

/// Logs at [`Level::Debug`](crate::Level::Debug).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Debug, $($arg)+) };
}

/// Logs at [`Level::Trace`](crate::Level::Trace).
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Trace, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_names_and_off() {
        assert_eq!(Level::parse("ERROR"), Ok(Some(Level::Error)));
        assert_eq!(Level::parse("warning"), Ok(Some(Level::Warn)));
        assert_eq!(Level::parse(" trace "), Ok(Some(Level::Trace)));
        assert_eq!(Level::parse("off"), Ok(None));
        assert!(Level::parse("verbose").is_err());
    }

    #[test]
    fn explicit_level_controls_log_enabled() {
        set_log_level(Some(Level::Info));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        // Restore the default for other tests in this process.
        set_log_level(Some(Level::Warn));
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Trace);
        assert!(Level::Warn < Level::Info);
    }
}
