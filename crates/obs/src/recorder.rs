//! Bounded time-series capture for the flight recorder.
//!
//! A [`SeriesRecorder`] holds a small set of named series, each a
//! sequence of `(x, y)` points appended at metric computation points.
//! Every series is bounded: when a series reaches its capacity the
//! recorder *decimates* it — it keeps every other retained point and
//! doubles the record stride — so memory stays constant while the
//! retained points always span the whole run. This is the classic
//! deterministic variant of reservoir downsampling: after `k` doubling
//! rounds the series holds the points whose append index is a multiple
//! of `2^k`, evenly spaced from the first sample to (within one stride
//! of) the latest.
//!
//! The recorder is a plain data structure — it does not consult
//! [`crate::obs_enabled`]; the owner decides whether one exists at all
//! (e.g. `Process::enable_flight_recorder`). Recording a point is a
//! linear scan over the (few) series names plus a `Vec` push.

/// An owned copy of one recorded series, for embedding in artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name, e.g. `metric.out0` or `rate.allocs`.
    pub name: String,
    /// Current record stride: a point was retained every `stride`
    /// appends. 1 until the first decimation.
    pub stride: u64,
    /// Total points ever appended (before downsampling).
    pub seen: u64,
    /// The retained `(x, y)` points, oldest first.
    pub points: Vec<(u64, f64)>,
}

#[derive(Debug)]
struct Series {
    name: String,
    stride: u64,
    seen: u64,
    points: Vec<(u64, f64)>,
}

/// Constant-memory recorder of named `(x, y)` time series.
#[derive(Debug, Default)]
pub struct SeriesRecorder {
    capacity: usize,
    series: Vec<Series>,
}

impl SeriesRecorder {
    /// A recorder keeping at most `capacity_per_series` points per
    /// series (rounded up to 2; decimation needs an even window).
    pub fn new(capacity_per_series: usize) -> Self {
        SeriesRecorder {
            capacity: capacity_per_series.max(2),
            series: Vec::new(),
        }
    }

    /// Per-series retained-point bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `(x, y)` to the named series, creating it on first use.
    /// Non-finite `y` values are dropped (they cannot be serialized
    /// into artifacts and never carry range information).
    pub fn record(&mut self, name: &str, x: u64, y: f64) {
        if !y.is_finite() {
            return;
        }
        let capacity = self.capacity;
        let s = match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => s,
            None => {
                self.series.push(Series {
                    name: name.to_string(),
                    stride: 1,
                    seen: 0,
                    points: Vec::with_capacity(capacity),
                });
                self.series.last_mut().expect("just pushed")
            }
        };
        if s.seen % s.stride == 0 {
            if s.points.len() == capacity {
                // Keep every other retained point; the survivors are
                // exactly the appends at multiples of the new stride.
                let mut i = 0;
                s.points.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                s.stride *= 2;
            }
            if s.seen % s.stride == 0 {
                s.points.push((x, y));
            }
        }
        s.seen += 1;
    }

    /// Names of all series recorded so far, in first-recorded order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name.as_str()).collect()
    }

    /// The retained points of `name`, oldest first.
    pub fn points(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.points.as_slice())
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Owned copies of every series, for embedding in an incident
    /// bundle.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        self.series
            .iter()
            .map(|s| SeriesSnapshot {
                name: s.name.clone(),
                stride: s.stride,
                seen: s.seen,
                points: s.points.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity_then_decimates() {
        let mut r = SeriesRecorder::new(8);
        for i in 0..8u64 {
            r.record("m", i, i as f64);
        }
        assert_eq!(r.points("m").unwrap().len(), 8);
        // The 9th append triggers decimation: survivors are even
        // indices, stride doubles, and the new point (index 8) lands.
        r.record("m", 8, 8.0);
        let pts = r.points("m").unwrap();
        assert_eq!(pts, &[(0, 0.0), (2, 2.0), (4, 4.0), (6, 6.0), (8, 8.0)]);
    }

    #[test]
    fn long_runs_stay_bounded_and_span_the_run() {
        let mut r = SeriesRecorder::new(16);
        for i in 0..10_000u64 {
            r.record("m", i, i as f64);
        }
        let pts = r.points("m").unwrap();
        assert!(pts.len() <= 16, "capacity exceeded: {}", pts.len());
        assert!(pts.len() >= 8, "over-decimated: {}", pts.len());
        assert_eq!(pts[0], (0, 0.0), "first point must survive");
        let snap = &r.snapshot()[0];
        assert_eq!(snap.seen, 10_000);
        assert!(snap.stride.is_power_of_two());
        // Retained points are evenly spaced at the stride.
        for w in pts.windows(2) {
            assert_eq!(w[1].0 - w[0].0, snap.stride);
        }
        // The last retained point is within one stride of the end.
        assert!(10_000 - pts.last().unwrap().0 <= snap.stride);
    }

    #[test]
    fn series_are_independent() {
        let mut r = SeriesRecorder::new(4);
        for i in 0..100u64 {
            r.record("a", i, 1.0);
        }
        r.record("b", 0, 2.0);
        assert!(r.points("a").unwrap().len() <= 4);
        assert_eq!(r.points("b").unwrap(), &[(0, 2.0)]);
        assert_eq!(r.series_names(), vec!["a", "b"]);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut r = SeriesRecorder::new(4);
        r.record("m", 0, f64::NAN);
        r.record("m", 1, f64::INFINITY);
        assert!(r.is_empty());
        r.record("m", 2, 1.5);
        assert_eq!(r.points("m").unwrap(), &[(2, 1.5)]);
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let mut r = SeriesRecorder::new(0);
        for i in 0..50u64 {
            r.record("m", i, 0.0);
        }
        assert!(r.points("m").unwrap().len() <= 2);
    }

    #[test]
    fn decimation_is_deterministic() {
        let run = |n: u64| {
            let mut r = SeriesRecorder::new(8);
            for i in 0..n {
                r.record("m", i, (i * 3) as f64);
            }
            r.snapshot()
        };
        assert_eq!(run(1000), run(1000));
    }
}
