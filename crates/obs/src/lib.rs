//! `heapmd-obs`: zero-dependency tracing, metrics, and structured
//! logging for the HeapMD pipeline.
//!
//! The crate provides four pieces, all std-only:
//!
//! - a process-global [`Registry`] of named atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket latency [`Histogram`]s;
//! - lightweight scope guards ([`MaybeTimer`], [`Span`]) that time a
//!   region and record on drop;
//! - a leveled logger (`error!` … `trace!`) controlled by the
//!   `HEAPMD_LOG` environment variable or [`set_log_level`];
//! - two exporters: a JSON-lines event/heartbeat stream
//!   ([`export::set_sink_file`], [`export::emit_event`]) and a
//!   Prometheus-style text dump ([`export::prometheus_text`]);
//! - flight-recorder support: a bounded [`SeriesRecorder`] for metric
//!   time series and a span-tree collector with a Chrome trace-event
//!   exporter ([`trace_event::write_chrome_trace`]).
//!
//! # Cost model
//!
//! Instrumentation is **disabled by default**. Every fast-path macro
//! ([`count!`], [`timer!`], [`span!`], [`gauge_set!`]) first checks
//! [`obs_enabled`] — a single relaxed atomic load — and does nothing
//! else when observability is off. When enabled, instrument handles are
//! cached in per-call-site statics so steady-state cost is one atomic
//! add (counters) or one clock read plus an atomic add (timers); the
//! registry's locks are only touched the first time a call site runs.
//!
//! ```
//! heapmd_obs::set_enabled(true);
//! heapmd_obs::count!("demo_events_total");
//! {
//!     let _t = heapmd_obs::timer!("demo_phase_ns");
//!     // ... measured region ...
//! }
//! assert_eq!(heapmd_obs::registry().counter("demo_events_total").get(), 1);
//! heapmd_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]

pub mod export;
pub mod fleet;
pub mod json;
pub mod logger;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod throughput;
pub mod trace_event;

pub use fleet::{FleetRegistry, FleetSnapshot, MetricVerdict, TenantStats};
pub use logger::{log_enabled, set_log_level, Level};
pub use recorder::{SeriesRecorder, SeriesSnapshot};
pub use registry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
pub use span::{MaybeTimer, Span};

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric/trace collection is on. One relaxed load; this is
/// the entire fast-path cost of disabled instrumentation.
#[inline]
pub fn obs_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns metric/trace collection on or off. Logging is governed
/// separately by the log level.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// The process-global instrument registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Resolves (once per call site) and returns a `&'static Arc<Counter>`
/// for `name` from the global registry.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Increments the named counter (by `$n` if given) when observability
/// is enabled; a single relaxed load otherwise.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        if $crate::obs_enabled() {
            $crate::counter!($name).inc();
        }
    };
    ($name:expr, $n:expr) => {
        if $crate::obs_enabled() {
            $crate::counter!($name).add($n as u64);
        }
    };
}

/// Sets the named gauge when observability is enabled.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {
        if $crate::obs_enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::registry().gauge($name))
                .set($value as i64);
        }
    };
}

/// Starts a [`MaybeTimer`] over the named latency histogram (default
/// nanosecond buckets); disabled-mode cost is one relaxed load.
/// Bind the result: `let _t = timer!("phase_ns");`.
#[macro_export]
macro_rules! timer {
    ($name:expr) => {{
        if $crate::obs_enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            $crate::MaybeTimer::started(::std::sync::Arc::clone(HANDLE.get_or_init(|| {
                $crate::registry().histogram($name, $crate::registry::DEFAULT_LATENCY_BOUNDS_NS)
            })))
        } else {
            $crate::MaybeTimer::off()
        }
    }};
}

/// Starts a named [`Span`] that emits a `span` event (and a trace log
/// line) on drop; disabled-mode cost is one relaxed load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::obs_enabled() {
            $crate::Span::started($name)
        } else {
            $crate::Span::off()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_touch_nothing() {
        set_enabled(false);
        count!("lib_test_disabled_total");
        let _t = timer!("lib_test_disabled_ns");
        drop(_t);
        // The instruments were never created, so fresh handles read 0.
        assert_eq!(registry().counter("lib_test_disabled_total").get(), 0);
        assert_eq!(
            registry()
                .histogram("lib_test_disabled_ns", registry::DEFAULT_LATENCY_BOUNDS_NS)
                .count(),
            0
        );
    }

    #[test]
    fn enabled_macros_record() {
        set_enabled(true);
        count!("lib_test_enabled_total");
        count!("lib_test_enabled_total", 4);
        gauge_set!("lib_test_gauge", -2);
        {
            let _t = timer!("lib_test_enabled_ns");
        }
        set_enabled(false);
        assert_eq!(registry().counter("lib_test_enabled_total").get(), 5);
        assert_eq!(registry().gauge("lib_test_gauge").get(), -2);
        assert_eq!(
            registry()
                .histogram("lib_test_enabled_ns", registry::DEFAULT_LATENCY_BOUNDS_NS)
                .count(),
            1
        );
    }
}
