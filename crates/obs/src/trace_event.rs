//! Span-tree collection and Chrome trace-event export.
//!
//! Every live [`crate::Span`] is assigned a process-unique id, the id
//! of the span currently open on the same thread (its parent), and a
//! small per-thread id. When collection is switched on with
//! [`set_collecting`], finished spans are additionally appended to a
//! bounded in-memory buffer that [`chrome_trace_json`] renders in the
//! Chrome trace-event JSON format — the file `about:tracing` and
//! Perfetto open directly.
//!
//! Collection is off by default and independent of [`crate::obs_enabled`];
//! spans only exist while obs is enabled, so a full trace needs both
//! switches on. The buffer is bounded ([`EVENT_CAP`]); events past the
//! cap are counted in [`dropped_events`] rather than recorded, so a
//! runaway run degrades instead of exhausting memory.

use crate::json::JsonObject;
use std::cell::{Cell, RefCell};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Most finished spans retained for export; beyond this they are
/// counted as dropped.
pub const EVENT_CAP: usize = 65_536;

/// One finished span, in microseconds relative to the process trace
/// epoch (the first span ever started).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (the `span!` literal).
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Small dense thread id (1-based, assignment order).
    pub tid: u64,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

/// Identity handed to a live span at construction.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span on this thread, if any.
    pub parent: Option<u64>,
    /// Dense thread id.
    pub tid: u64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static COLLECTING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn events() -> &'static Mutex<Vec<SpanEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The instant all trace timestamps are relative to (first span start).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns span collection for Chrome export on or off.
pub fn set_collecting(on: bool) {
    COLLECTING.store(on, Relaxed);
}

/// Whether finished spans are being buffered for export.
pub fn collecting() -> bool {
    COLLECTING.load(Relaxed)
}

/// Spans dropped because the buffer was full.
pub fn dropped_events() -> u64 {
    DROPPED.load(Relaxed)
}

/// Finished spans currently buffered.
pub fn event_count() -> usize {
    events().lock().map(|e| e.len()).unwrap_or(0)
}

/// Empties the buffer and the dropped counter (tests, or between
/// exported runs).
pub fn clear_events() {
    if let Ok(mut e) = events().lock() {
        e.clear();
    }
    DROPPED.store(0, Relaxed);
}

/// Registers a span start on this thread: assigns its id, links it to
/// the currently open span, and pins the trace epoch.
pub(crate) fn enter() -> SpanCtx {
    let _ = epoch();
    let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
    let tid = TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Relaxed));
        }
        t.get()
    });
    let parent = OPEN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    SpanCtx { id, parent, tid }
}

/// Registers a span end: unwinds the thread's open stack and, when
/// collecting, buffers the finished event.
pub(crate) fn exit(ctx: &SpanCtx, name: &'static str, start: Instant, end: Instant) {
    OPEN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        // Spans are scope guards, so ends nest; still, tolerate an
        // out-of-order drop by removing the id wherever it sits.
        if s.last() == Some(&ctx.id) {
            s.pop();
        } else {
            s.retain(|&id| id != ctx.id);
        }
    });
    if !collecting() {
        return;
    }
    let e = epoch();
    let ev = SpanEvent {
        name,
        id: ctx.id,
        parent: ctx.parent,
        tid: ctx.tid,
        start_us: start.saturating_duration_since(e).as_micros() as u64,
        dur_us: end.saturating_duration_since(start).as_micros() as u64,
    };
    if let Ok(mut buf) = events().lock() {
        if buf.len() < EVENT_CAP {
            buf.push(ev);
        } else {
            DROPPED.fetch_add(1, Relaxed);
        }
    }
}

fn render_event(ev: &SpanEvent) -> String {
    let mut args = JsonObject::new();
    args.field_u64("id", ev.id);
    if let Some(p) = ev.parent {
        args.field_u64("parent", p);
    }
    let mut o = JsonObject::new();
    o.field_str("name", ev.name)
        .field_str("cat", "heapmd")
        .field_str("ph", "X")
        .field_u64("ts", ev.start_us)
        .field_u64("dur", ev.dur_us)
        .field_u64("pid", 1)
        .field_u64("tid", ev.tid)
        .field_raw("args", &args.finish());
    o.finish()
}

/// Renders the buffered spans as a Chrome trace-event JSON document
/// (`{"traceEvents":[…]}`) suitable for `about:tracing` / Perfetto.
pub fn chrome_trace_json() -> String {
    let mut body = String::from("{\"traceEvents\":[");
    if let Ok(buf) = events().lock() {
        let mut sorted: Vec<&SpanEvent> = buf.iter().collect();
        sorted.sort_by_key(|e| (e.start_us, e.id));
        for (i, ev) in sorted.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&render_event(ev));
        }
    }
    body.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":");
    let mut meta = JsonObject::new();
    meta.field_str("producer", "heapmd-obs")
        .field_u64("dropped_events", dropped_events());
    body.push_str(&meta.finish());
    body.push('}');
    body
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json().as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Collection state is process-global; serialize the tests that
    // toggle it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_carry_thread_ids() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_collecting(true);
        crate::set_enabled(true);
        {
            let _outer = crate::span!("te_outer");
            let _inner = crate::span!("te_inner");
        }
        crate::set_enabled(false);
        set_collecting(false);
        let buf = events().lock().unwrap();
        let inner = buf.iter().find(|e| e.name == "te_inner").unwrap();
        let outer = buf.iter().find(|e| e.name == "te_outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.tid >= 1);
        drop(buf);
        clear_events();
    }

    #[test]
    fn chrome_json_lists_events_with_complete_phase() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_collecting(true);
        crate::set_enabled(true);
        {
            let _s = crate::span!("te_export");
        }
        crate::set_enabled(false);
        set_collecting(false);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"te_export\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.ends_with('}'));
        clear_events();
    }

    #[test]
    fn buffer_is_bounded() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        {
            let mut buf = events().lock().unwrap();
            buf.resize(
                EVENT_CAP,
                SpanEvent {
                    name: "fill",
                    id: 0,
                    parent: None,
                    tid: 1,
                    start_us: 0,
                    dur_us: 0,
                },
            );
        }
        set_collecting(true);
        crate::set_enabled(true);
        {
            let _s = crate::span!("te_overflow");
        }
        crate::set_enabled(false);
        set_collecting(false);
        assert_eq!(event_count(), EVENT_CAP);
        assert!(dropped_events() >= 1);
        clear_events();
    }

    #[test]
    fn uncollected_spans_leave_no_events() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        crate::set_enabled(true);
        {
            let _s = crate::span!("te_uncollected");
        }
        crate::set_enabled(false);
        let buf = events().lock().unwrap();
        assert!(!buf.iter().any(|e| e.name == "te_uncollected"));
    }
}
