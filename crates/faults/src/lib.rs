//! # faults — deterministic fault injection for the HeapMD reproduction
//!
//! The paper evaluates HeapMD on real bugs in commercial code. This
//! reproduction injects mechanically equivalent bugs into the simulated
//! data structures (`sim-ds`) at specific call-sites, controlled by a
//! [`FaultPlan`]: a set of enabled [`FaultId`]s with deterministic
//! trigger schedules (fire always, every Nth time, after a warmup, up
//! to a limit).
//!
//! Determinism matters: the experiments train on clean runs and check
//! buggy ones, and the whole pipeline must be reproducible without
//! wall-clock or OS randomness.
//!
//! # Example
//!
//! ```
//! use faults::{FaultConfig, FaultId, FaultPlan};
//!
//! const SKIP_PREV: FaultId = FaultId("dlist.skip_prev_update");
//!
//! let mut plan = FaultPlan::new();
//! plan.enable(SKIP_PREV, FaultConfig::every(3).after(2));
//! // Consulted at the buggy call-site: two warmup consultations are
//! // skipped, then every 3rd consultation fires.
//! let fired: Vec<bool> = (0..9).map(|_| plan.fires(SKIP_PREV)).collect();
//! assert_eq!(fired, [false, false, false, false, true, false, false, true, false]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod net;

use serde::Serialize;
use std::collections::HashMap;
use std::fmt;

/// Identifier of one injectable fault, usually a `"structure.site"`
/// path such as `"dlist.skip_prev_update"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct FaultId(pub &'static str);

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The mechanical kind of an injected fault, mirroring the paper's
/// Figures 8 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FaultKind {
    /// Figure 11: an index typo overwrites a pointer without releasing
    /// (or re-linking) its old target — a leak.
    TypoLeak,
    /// A small, bounded leak (well-disguised: too few objects to move
    /// any metric).
    SmallLeak,
    /// Leaking objects that remain reachable (invisible to HeapMD,
    /// visible to staleness-based SWAT).
    ReachableLeak,
    /// Figure 12: freeing shared state (the head of a circular list)
    /// while another pointer still references it — a dangling pointer.
    SharedStateFree,
    /// Figure 1: a doubly-linked-list insert that does not update `prev`
    /// pointers — a data-structure invariant violation.
    SkipBackPointer,
    /// Figure 10's bug: newly inserted tree nodes missing parent
    /// pointers from their children.
    SkipParentPointer,
    /// An oct-tree construction mistake that aliases subtrees, producing
    /// an oct-DAG (the paper's one *poorly disguised* bug).
    AliasedSubtree,
    /// A B-tree split that forgets to link the new sibling.
    SkipSiblingLink,
    /// Figure 9: a pathological hash function collapsing keys into one
    /// bucket (an indirect "performance bug").
    DegenerateHash,
    /// Figure 9: tree vertexes end up with a single child instead of
    /// two (an indirect logic bug).
    SingleChildTree,
    /// Figure 9: a localization bug producing atypical graphs
    /// (represented as adjacency lists).
    AtypicalGraph,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::TypoLeak => "typo leak",
            FaultKind::SmallLeak => "small leak",
            FaultKind::ReachableLeak => "reachable leak",
            FaultKind::SharedStateFree => "shared-state free",
            FaultKind::SkipBackPointer => "skipped back-pointer",
            FaultKind::SkipParentPointer => "skipped parent pointer",
            FaultKind::AliasedSubtree => "aliased subtree",
            FaultKind::SkipSiblingLink => "skipped sibling link",
            FaultKind::DegenerateHash => "degenerate hash",
            FaultKind::SingleChildTree => "single-child tree",
            FaultKind::AtypicalGraph => "atypical graph",
        };
        f.write_str(name)
    }
}

/// When an enabled fault fires, relative to the sequence of times its
/// call-site consults the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultConfig {
    /// Fire on every `every`-th consultation (1 = every time).
    pub every: u64,
    /// Skip the first `after` consultations.
    pub after: u64,
    /// Stop firing after this many activations (`None` = unbounded).
    pub limit: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::always()
    }
}

impl FaultConfig {
    /// Fires on every consultation.
    pub fn always() -> Self {
        FaultConfig {
            every: 1,
            after: 0,
            limit: None,
        }
    }

    /// Fires on every `n`-th consultation.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultConfig {
            every: n,
            after: 0,
            limit: None,
        }
    }

    /// Skips the first `n` consultations.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Caps the number of activations.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }
}

/// Book-keeping for one enabled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
struct FaultState {
    config: FaultConfig,
    consultations: u64,
    activations: u64,
}

/// A set of enabled faults with deterministic schedules.
///
/// Call-sites in `sim-ds` consult the plan via [`fires`](Self::fires);
/// a disabled fault never fires and costs one hash lookup.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    active: HashMap<FaultId, FaultState>,
}

impl FaultPlan {
    /// An empty (all-clean) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single always-firing fault — the common case in
    /// targeted experiments.
    pub fn single(id: FaultId) -> Self {
        let mut plan = FaultPlan::new();
        plan.enable(id, FaultConfig::always());
        plan
    }

    /// Enables `id` under `config`, resetting any previous state.
    pub fn enable(&mut self, id: FaultId, config: FaultConfig) -> &mut Self {
        self.active.insert(
            id,
            FaultState {
                config,
                consultations: 0,
                activations: 0,
            },
        );
        self
    }

    /// Disables `id`.
    pub fn disable(&mut self, id: FaultId) -> &mut Self {
        self.active.remove(&id);
        self
    }

    /// Returns `true` if `id` is enabled (regardless of schedule).
    pub fn is_enabled(&self, id: FaultId) -> bool {
        self.active.contains_key(&id)
    }

    /// Consults the plan at a call-site: returns `true` when the fault
    /// fires now, advancing the schedule.
    pub fn fires(&mut self, id: FaultId) -> bool {
        let Some(st) = self.active.get_mut(&id) else {
            return false;
        };
        st.consultations += 1;
        if st.consultations <= st.config.after {
            return false;
        }
        if let Some(limit) = st.config.limit {
            if st.activations >= limit {
                return false;
            }
        }
        let since = st.consultations - st.config.after;
        if since % st.config.every == 0 {
            st.activations += 1;
            true
        } else {
            false
        }
    }

    /// Times `id` has actually fired.
    pub fn activations(&self, id: FaultId) -> u64 {
        self.active.get(&id).map_or(0, |s| s.activations)
    }

    /// Times `id`'s call-site consulted the plan.
    pub fn consultations(&self, id: FaultId) -> u64 {
        self.active.get(&id).map_or(0, |s| s.consultations)
    }

    /// Enabled fault ids, in sorted order.
    pub fn enabled(&self) -> Vec<FaultId> {
        let mut ids: Vec<FaultId> = self.active.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Resets all schedules (consultations and activations) without
    /// changing which faults are enabled.
    pub fn reset(&mut self) {
        for st in self.active.values_mut() {
            st.consultations = 0;
            st.activations = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FaultId = FaultId("test.fault");
    const G: FaultId = FaultId("test.other");

    #[test]
    fn disabled_fault_never_fires() {
        let mut plan = FaultPlan::new();
        assert!(!plan.fires(F));
        assert_eq!(plan.consultations(F), 0);
        assert!(!plan.is_enabled(F));
    }

    #[test]
    fn always_fires_every_time() {
        let mut plan = FaultPlan::single(F);
        for _ in 0..5 {
            assert!(plan.fires(F));
        }
        assert_eq!(plan.activations(F), 5);
        assert_eq!(plan.consultations(F), 5);
    }

    #[test]
    fn every_n_schedule() {
        let mut plan = FaultPlan::new();
        plan.enable(F, FaultConfig::every(3));
        let fired: Vec<bool> = (0..7).map(|_| plan.fires(F)).collect();
        assert_eq!(fired, [false, false, true, false, false, true, false]);
    }

    #[test]
    fn after_skips_warmup() {
        let mut plan = FaultPlan::new();
        plan.enable(F, FaultConfig::always().after(3));
        let fired: Vec<bool> = (0..5).map(|_| plan.fires(F)).collect();
        assert_eq!(fired, [false, false, false, true, true]);
    }

    #[test]
    fn limit_caps_activations() {
        let mut plan = FaultPlan::new();
        plan.enable(F, FaultConfig::always().limit(2));
        let fired: Vec<bool> = (0..5).map(|_| plan.fires(F)).collect();
        assert_eq!(fired, [true, true, false, false, false]);
        assert_eq!(plan.activations(F), 2);
        assert_eq!(plan.consultations(F), 5);
    }

    #[test]
    fn faults_are_independent() {
        let mut plan = FaultPlan::new();
        plan.enable(F, FaultConfig::always());
        plan.enable(G, FaultConfig::every(2));
        assert!(plan.fires(F));
        assert!(!plan.fires(G));
        assert!(plan.fires(G));
        assert_eq!(plan.enabled(), vec![F, G]);
    }

    #[test]
    fn disable_and_reset() {
        let mut plan = FaultPlan::single(F);
        assert!(plan.fires(F));
        plan.disable(F);
        assert!(!plan.fires(F));
        plan.enable(F, FaultConfig::every(2));
        plan.fires(F);
        plan.reset();
        assert_eq!(plan.consultations(F), 0);
        let fired: Vec<bool> = (0..2).map(|_| plan.fires(F)).collect();
        assert_eq!(fired, [false, true]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        FaultConfig::every(0);
    }

    #[test]
    fn plan_serializes() {
        let mut plan = FaultPlan::new();
        plan.enable(F, FaultConfig::every(2).after(1).limit(10));
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("test.fault"));
    }

    #[test]
    fn display_names() {
        assert_eq!(F.to_string(), "test.fault");
        assert_eq!(FaultKind::TypoLeak.to_string(), "typo leak");
        assert_eq!(FaultKind::AtypicalGraph.to_string(), "atypical graph");
    }
}
