//! Deterministic I/O fault injection.
//!
//! [`FaultyWriter`] and [`FaultyReader`] wrap any [`std::io::Write`] /
//! [`std::io::Read`] and consult the same [`FaultPlan`] schedules the
//! data-structure faults use, so an experiment can script "the disk
//! fills up on the 40th write" or "bit 3 of every 100th byte read is
//! flipped" and replay it exactly. The persistence layer's chaos suite
//! round-trips traces, models, and checkpoints through these wrappers
//! and asserts every outcome is either success or a typed error — never
//! a panic, never silently corrupted data accepted as valid.
//!
//! Fault call-sites (see the [`fault_ids`] constants):
//!
//! | fault                | effect                                          |
//! |----------------------|-------------------------------------------------|
//! | `io.short_write`     | writes accept only half the buffer              |
//! | `io.write_error`     | writes fail with `ENOSPC`-style errors          |
//! | `io.flush_interrupt` | flushes fail with [`ErrorKind::Interrupted`]    |
//! | `io.bit_flip_write`  | one bit of the outgoing buffer is flipped       |
//! | `io.short_read`      | reads return at most one byte                   |
//! | `io.read_error`      | reads fail with [`ErrorKind::Other`]            |
//! | `io.bit_flip_read`   | one bit of the incoming buffer is flipped       |
//! | `io.early_eof`       | the stream ends prematurely (reads return 0)    |
//!
//! [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted
//! [`ErrorKind::Other`]: std::io::ErrorKind::Other

use crate::FaultPlan;
use std::io::{self, Read, Write};

/// Fault ids consulted by [`FaultyWriter`] and [`FaultyReader`].
pub mod fault_ids {
    use crate::FaultId;

    /// A write accepts only the first half of the buffer (short write).
    pub const IO_SHORT_WRITE: FaultId = FaultId("io.short_write");
    /// A write fails outright, as when the device is full.
    pub const IO_WRITE_ERROR: FaultId = FaultId("io.write_error");
    /// A flush fails with `ErrorKind::Interrupted`.
    pub const IO_FLUSH_INTERRUPT: FaultId = FaultId("io.flush_interrupt");
    /// One bit of the written data is flipped (media corruption).
    pub const IO_BIT_FLIP_WRITE: FaultId = FaultId("io.bit_flip_write");
    /// A read returns at most one byte (short read).
    pub const IO_SHORT_READ: FaultId = FaultId("io.short_read");
    /// A read fails outright.
    pub const IO_READ_ERROR: FaultId = FaultId("io.read_error");
    /// One bit of the read data is flipped (media corruption).
    pub const IO_BIT_FLIP_READ: FaultId = FaultId("io.bit_flip_read");
    /// The stream reports end-of-file before the real data ends.
    pub const IO_EARLY_EOF: FaultId = FaultId("io.early_eof");
}

use fault_ids::*;

/// Flips one bit of `buf`, choosing the position deterministically from
/// how much I/O the wrapper has already done so repeated runs corrupt
/// the same bit.
fn flip_one_bit(buf: &mut [u8], offset: u64) {
    if buf.is_empty() {
        return;
    }
    let byte = (offset as usize) % buf.len();
    let bit = (offset % 8) as u32;
    buf[byte] ^= 1 << bit;
}

/// An [`io::Write`] adapter that injects faults per a [`FaultPlan`].
///
/// Ownership of the plan stays with the caller between uses:
/// construction takes the plan by value (plans are cheap to clone) and
/// [`into_inner`](Self::into_inner) hands back the wrapped writer.
///
/// # Example
///
/// ```
/// use faults::io::{fault_ids::IO_WRITE_ERROR, FaultyWriter};
/// use faults::{FaultConfig, FaultPlan};
/// use std::io::Write;
///
/// let mut plan = FaultPlan::new();
/// plan.enable(IO_WRITE_ERROR, FaultConfig::always().after(1));
/// let mut w = FaultyWriter::new(Vec::new(), plan);
/// assert!(w.write(b"ok").is_ok());
/// assert!(w.write(b"boom").is_err());
/// ```
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    plan: FaultPlan,
    bytes_written: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, injecting the faults enabled in `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FaultyWriter {
            inner,
            plan,
            bytes_written: 0,
        }
    }

    /// Consumes the wrapper, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The fault plan, for inspecting activation counts.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total bytes accepted by [`write`](Write::write) so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.fires(IO_WRITE_ERROR) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected: no space left on device",
            ));
        }
        let take = if self.plan.fires(IO_SHORT_WRITE) && buf.len() > 1 {
            buf.len() / 2
        } else {
            buf.len()
        };
        let n = if self.plan.fires(IO_BIT_FLIP_WRITE) {
            let mut corrupted = buf[..take].to_vec();
            flip_one_bit(&mut corrupted, self.bytes_written);
            self.inner.write(&corrupted)?
        } else {
            self.inner.write(&buf[..take])?
        };
        self.bytes_written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.plan.fires(IO_FLUSH_INTERRUPT) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected: flush interrupted",
            ));
        }
        self.inner.flush()
    }
}

/// An [`io::Read`] adapter that injects faults per a [`FaultPlan`].
///
/// # Example
///
/// ```
/// use faults::io::{fault_ids::IO_EARLY_EOF, FaultyReader};
/// use faults::{FaultConfig, FaultPlan};
/// use std::io::Read;
///
/// let mut plan = FaultPlan::new();
/// plan.enable(IO_EARLY_EOF, FaultConfig::always().after(1));
/// let mut r = FaultyReader::new(&b"hello world"[..], plan);
/// let mut buf = [0u8; 4];
/// assert_eq!(r.read(&mut buf).unwrap(), 4); // first read succeeds
/// assert_eq!(r.read(&mut buf).unwrap(), 0); // then premature EOF
/// ```
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    bytes_read: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, injecting the faults enabled in `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultyReader {
            inner,
            plan,
            bytes_read: 0,
        }
    }

    /// Consumes the wrapper, returning the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// The fault plan, for inspecting activation counts.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total bytes produced by [`read`](Read::read) so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.fires(IO_READ_ERROR) {
            return Err(io::Error::other("injected: read failed"));
        }
        if self.plan.fires(IO_EARLY_EOF) {
            return Ok(0);
        }
        let take = if self.plan.fires(IO_SHORT_READ) && buf.len() > 1 {
            1
        } else {
            buf.len()
        };
        let n = self.inner.read(&mut buf[..take])?;
        if n > 0 && self.plan.fires(IO_BIT_FLIP_READ) {
            flip_one_bit(&mut buf[..n], self.bytes_read);
        }
        self.bytes_read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;

    #[test]
    fn clean_plan_is_transparent() {
        let mut w = FaultyWriter::new(Vec::new(), FaultPlan::new());
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.into_inner(), b"hello");

        let mut r = FaultyReader::new(&b"hello"[..], FaultPlan::new());
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
    }

    #[test]
    fn short_writes_still_complete_via_write_all() {
        let mut plan = FaultPlan::new();
        plan.enable(IO_SHORT_WRITE, FaultConfig::always());
        let mut w = FaultyWriter::new(Vec::new(), plan);
        w.write_all(b"abcdefgh").unwrap();
        assert_eq!(w.into_inner(), b"abcdefgh");
    }

    #[test]
    fn write_error_fires_on_schedule() {
        let mut plan = FaultPlan::new();
        plan.enable(IO_WRITE_ERROR, FaultConfig::every(2));
        let mut w = FaultyWriter::new(Vec::new(), plan);
        assert!(w.write(b"a").is_ok());
        let err = w.write(b"b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(w.plan().activations(IO_WRITE_ERROR), 1);
    }

    #[test]
    fn flush_interrupt_has_the_right_kind() {
        let mut plan = FaultPlan::new();
        plan.enable(IO_FLUSH_INTERRUPT, FaultConfig::always());
        let mut w = FaultyWriter::new(Vec::new(), plan);
        assert_eq!(w.flush().unwrap_err().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn bit_flip_write_corrupts_exactly_one_bit() {
        let mut plan = FaultPlan::new();
        plan.enable(IO_BIT_FLIP_WRITE, FaultConfig::always().limit(1));
        let mut w = FaultyWriter::new(Vec::new(), plan);
        w.write_all(b"abcd").unwrap();
        w.write_all(b"efgh").unwrap();
        let got = w.into_inner();
        let differing: u32 = got
            .iter()
            .zip(b"abcdefgh")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1, "exactly one flipped bit in {got:?}");
    }

    #[test]
    fn bit_flips_are_deterministic() {
        let run = || {
            let mut plan = FaultPlan::new();
            plan.enable(IO_BIT_FLIP_WRITE, FaultConfig::every(3));
            let mut w = FaultyWriter::new(Vec::new(), plan);
            for chunk in b"the quick brown fox jumps over it".chunks(5) {
                w.write_all(chunk).unwrap();
            }
            w.into_inner()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reader_faults_fire_on_schedule() {
        let data = b"0123456789".repeat(10);

        let mut plan = FaultPlan::new();
        plan.enable(IO_READ_ERROR, FaultConfig::always().after(2));
        let mut r = FaultyReader::new(&data[..], plan);
        let mut buf = [0u8; 4];
        assert!(r.read(&mut buf).is_ok());
        assert!(r.read(&mut buf).is_ok());
        assert!(r.read(&mut buf).is_err());

        let mut plan = FaultPlan::new();
        plan.enable(IO_SHORT_READ, FaultConfig::always());
        let mut r = FaultyReader::new(&data[..], plan);
        assert_eq!(r.read(&mut buf).unwrap(), 1, "short read yields 1 byte");
        let mut all = Vec::new();
        r.read_to_end(&mut all).unwrap();
        assert_eq!(all.len(), data.len() - 1, "read_to_end still drains");
    }

    #[test]
    fn bit_flip_read_corrupts_exactly_one_bit() {
        let data = b"abcdefgh".to_vec();
        let mut plan = FaultPlan::new();
        plan.enable(IO_BIT_FLIP_READ, FaultConfig::always().limit(1));
        let mut r = FaultyReader::new(&data[..], plan);
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        let differing: u32 = got
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1);
    }

    #[test]
    fn early_eof_truncates_the_stream() {
        let data = b"0123456789".to_vec();
        let mut plan = FaultPlan::new();
        plan.enable(IO_EARLY_EOF, FaultConfig::always().after(1));
        let mut r = FaultyReader::new(&data[..], plan);
        let mut got = Vec::new();
        let mut buf = [0u8; 4];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"0123", "stream ended after the first chunk");
    }
}
