//! Deterministic network fault injection.
//!
//! [`FaultyConn`] wraps any bidirectional stream (`Read + Write`) and
//! consults a [`SharedFaultPlan`] on every operation, so a chaos test
//! can script "the connection resets halfway through the 3rd block" or
//! "every 5th frame is silently truncated on the wire" and replay it
//! exactly. The serve-layer chaos matrix wraps the session client's
//! dialer in these and asserts the invariant that matters: any fault
//! schedule that eventually heals (every config carries a `.limit`)
//! yields a final daemon verdict bit-identical to the uninterrupted
//! offline check.
//!
//! The plan is shared (`Arc<Mutex<_>>`) rather than owned because one
//! schedule spans *connections*: a client that redials after an
//! injected reset gets a fresh `FaultyConn` around the new socket, but
//! the fault budget — "drop twice, then heal" — must keep counting
//! across the redials or the schedule would never run dry.
//!
//! Fault call-sites (see the [`fault_ids`] constants):
//!
//! | fault                 | effect                                              |
//! |-----------------------|-----------------------------------------------------|
//! | `net.drop`            | the connection dies (reads/writes → `ConnectionReset`) |
//! | `net.partition`       | dial attempts fail (`ConnectionRefused`) while firing |
//! | `net.delay`           | the operation stalls ~2 ms before proceeding        |
//! | `net.reset_mid_block` | half the buffer hits the wire, then `ConnectionReset` |
//! | `net.dup_frame`       | the written buffer is sent twice                    |
//! | `net.truncate_frame`  | half the buffer is sent but all of it is reported   |
//!
//! `net.dup_frame` and `net.truncate_frame` are *silent* corruptions —
//! the writer sees success — so they exercise the receiver's framing
//! and sequence checks rather than the sender's error handling.

use crate::FaultPlan;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault ids consulted by [`FaultyConn`] and [`partitioned`].
pub mod fault_ids {
    use crate::FaultId;

    /// The connection dies: the firing operation and everything after
    /// it on this connection fail with `ConnectionReset`.
    pub const NET_DROP: FaultId = FaultId("net.drop");
    /// The network is partitioned: dial attempts (gated through
    /// [`super::partitioned`]) fail with `ConnectionRefused`.
    pub const NET_PARTITION: FaultId = FaultId("net.partition");
    /// The operation is delayed ~2 ms (latency spike).
    pub const NET_DELAY: FaultId = FaultId("net.delay");
    /// A write delivers only its first half before the connection
    /// resets — the receiver sees a torn frame.
    pub const NET_RESET_MID_BLOCK: FaultId = FaultId("net.reset_mid_block");
    /// A write is delivered twice (duplicated frame) but reported once.
    pub const NET_DUP_FRAME: FaultId = FaultId("net.dup_frame");
    /// A write delivers only its first half but reports the full
    /// length — a silent truncation the receiver must detect.
    pub const NET_TRUNCATE_FRAME: FaultId = FaultId("net.truncate_frame");
}

use fault_ids::*;

/// One fault schedule shared across every connection of a chaos run
/// (see the module docs for why dials must share a plan).
pub type SharedFaultPlan = Arc<Mutex<FaultPlan>>;

/// Wraps a plan for sharing across connections.
pub fn shared(plan: FaultPlan) -> SharedFaultPlan {
    Arc::new(Mutex::new(plan))
}

/// Consults the partition schedule at dial time: returns an
/// `ConnectionRefused` error when [`fault_ids::NET_PARTITION`] fires,
/// `Ok(())` otherwise. Dialers call this before connecting.
pub fn partitioned(plan: &SharedFaultPlan) -> io::Result<()> {
    if plan.lock().unwrap().fires(NET_PARTITION) {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "injected: network partitioned",
        ));
    }
    Ok(())
}

/// A bidirectional stream adapter that injects network faults per a
/// shared [`FaultPlan`].
///
/// # Example
///
/// ```
/// use faults::net::{fault_ids::NET_DROP, shared, FaultyConn};
/// use faults::{FaultConfig, FaultPlan};
/// use std::io::Write;
///
/// let mut plan = FaultPlan::new();
/// plan.enable(NET_DROP, FaultConfig::always().after(1));
/// let mut conn = FaultyConn::new(Vec::new(), shared(plan));
/// assert!(conn.write(b"ok").is_ok());
/// assert!(conn.write(b"boom").is_err()); // dropped
/// assert!(conn.write(b"still").is_err()); // stays dead
/// ```
#[derive(Debug)]
pub struct FaultyConn<S> {
    inner: S,
    plan: SharedFaultPlan,
    dead: bool,
}

impl<S> FaultyConn<S> {
    /// Wraps `inner`, injecting the faults enabled in `plan`.
    pub fn new(inner: S, plan: SharedFaultPlan) -> Self {
        FaultyConn {
            inner,
            plan,
            dead: false,
        }
    }

    /// Consumes the wrapper, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// A reference to the underlying stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Whether an injected drop/reset has killed this connection.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn reset_err(&mut self, what: &str) -> io::Error {
        self.dead = true;
        io::Error::new(io::ErrorKind::ConnectionReset, format!("injected: {what}"))
    }

    /// Consults the faults every operation shares; returns an error if
    /// the connection dies here.
    fn gate(&mut self, op: &str) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected: connection already dropped",
            ));
        }
        let (drop_now, delay) = {
            let mut plan = self.plan.lock().unwrap();
            (plan.fires(NET_DROP), plan.fires(NET_DELAY))
        };
        if delay {
            std::thread::sleep(Duration::from_millis(2));
        }
        if drop_now {
            return Err(self.reset_err(&format!("connection dropped during {op}")));
        }
        Ok(())
    }
}

impl<S: Write> Write for FaultyConn<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.gate("write")?;
        let (reset_mid, dup, truncate) = {
            let mut plan = self.plan.lock().unwrap();
            (
                plan.fires(NET_RESET_MID_BLOCK),
                plan.fires(NET_DUP_FRAME),
                plan.fires(NET_TRUNCATE_FRAME),
            )
        };
        if reset_mid {
            // Half the frame reaches the peer, then the connection
            // resets: the receiver must cope with a torn frame.
            let _ = self.inner.write_all(&buf[..buf.len() / 2]);
            let _ = self.inner.flush();
            return Err(self.reset_err("connection reset mid-block"));
        }
        if truncate {
            // Silent loss: report success for bytes that never left.
            self.inner.write_all(&buf[..buf.len() / 2])?;
            return Ok(buf.len());
        }
        if dup {
            self.inner.write_all(buf)?;
            self.inner.write_all(buf)?;
            return Ok(buf.len());
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected: connection already dropped",
            ));
        }
        self.inner.flush()
    }
}

impl<S: Read> Read for FaultyConn<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.gate("read")?;
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;

    #[test]
    fn clean_plan_is_transparent() {
        let mut conn = FaultyConn::new(Vec::new(), shared(FaultPlan::new()));
        conn.write_all(b"hello").unwrap();
        conn.flush().unwrap();
        assert!(!conn.is_dead());
        assert_eq!(conn.into_inner(), b"hello");
    }

    #[test]
    fn drop_kills_the_connection_permanently() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_DROP, FaultConfig::always().after(2));
        let mut conn = FaultyConn::new(Vec::new(), shared(plan));
        assert!(conn.write(b"a").is_ok());
        assert!(conn.write(b"b").is_ok());
        let err = conn.write(b"c").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(conn.is_dead());
        assert_eq!(
            conn.write(b"d").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            conn.flush().unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(conn.into_inner(), b"ab", "bytes before the drop survive");
    }

    #[test]
    fn partition_gates_dials_until_it_heals() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_PARTITION, FaultConfig::always().limit(2));
        let plan = shared(plan);
        assert_eq!(
            partitioned(&plan).unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        assert!(partitioned(&plan).is_err());
        assert!(partitioned(&plan).is_ok(), "limit reached: partition heals");
    }

    #[test]
    fn reset_mid_block_tears_the_frame() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_RESET_MID_BLOCK, FaultConfig::always());
        let mut conn = FaultyConn::new(Vec::new(), shared(plan));
        let err = conn.write(b"abcdefgh").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(conn.is_dead());
        assert_eq!(conn.into_inner(), b"abcd", "only half the frame landed");
    }

    #[test]
    fn truncate_lies_about_delivery() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_TRUNCATE_FRAME, FaultConfig::always().limit(1));
        let mut conn = FaultyConn::new(Vec::new(), shared(plan));
        assert_eq!(conn.write(b"abcdefgh").unwrap(), 8, "full length reported");
        conn.write_all(b"ijkl").unwrap();
        assert_eq!(conn.into_inner(), b"abcdijkl", "but only half arrived");
    }

    #[test]
    fn dup_frame_doubles_the_bytes() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_DUP_FRAME, FaultConfig::every(2));
        let mut conn = FaultyConn::new(Vec::new(), shared(plan));
        conn.write_all(b"one").unwrap();
        conn.write_all(b"two").unwrap();
        assert_eq!(conn.into_inner(), b"onetwotwo");
    }

    #[test]
    fn shared_plan_spans_connections() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_DROP, FaultConfig::always().limit(2));
        let plan = shared(plan);
        for round in 0..3 {
            let mut conn = FaultyConn::new(Vec::new(), Arc::clone(&plan));
            let res = conn.write(b"x");
            if round < 2 {
                assert!(res.is_err(), "round {round}: budget not yet spent");
            } else {
                assert!(res.is_ok(), "round {round}: schedule ran dry — healed");
            }
        }
        assert_eq!(plan.lock().unwrap().activations(NET_DROP), 2);
    }

    #[test]
    fn delay_is_bounded_and_transparent() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_DELAY, FaultConfig::always().limit(1));
        let mut conn = FaultyConn::new(Vec::new(), shared(plan));
        let start = std::time::Instant::now();
        conn.write_all(b"slow").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(conn.into_inner(), b"slow");
    }

    #[test]
    fn reads_share_the_drop_schedule() {
        let mut plan = FaultPlan::new();
        plan.enable(NET_DROP, FaultConfig::always().after(1));
        let data = b"0123456789".to_vec();
        let mut conn = FaultyConn::new(&data[..], shared(plan));
        let mut buf = [0u8; 4];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);
        assert_eq!(
            conn.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }
}
