//! Property-based test: the incremental heap-graph stays consistent
//! with a from-scratch recomputation under arbitrary event sequences
//! (including frees that dangle pointers and allocations that re-bind
//! them through address reuse).

use heap_graph::HeapGraph;
use proptest::prelude::*;
use sim_heap::{Addr, AllocSite, HeapError, SimHeap};

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    FreeNth(usize),
    Link { src: usize, dst: usize, slot: u64 },
    Unlink { src: usize, slot: u64 },
    Scalar { src: usize, slot: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (8usize..128).prop_map(Op::Alloc),
        2 => (0usize..64).prop_map(Op::FreeNth),
        4 => ((0usize..64), (0usize..64), (0u64..4))
            .prop_map(|(src, dst, slot)| Op::Link { src, dst, slot: slot * 8 }),
        1 => ((0usize..64), (0u64..4)).prop_map(|(src, slot)| Op::Unlink { src, slot: slot * 8 }),
        1 => ((0usize..64), (0u64..4)).prop_map(|(src, slot)| Op::Scalar { src, slot: slot * 8 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_graph_matches_scratch_recompute(
        ops in proptest::collection::vec(op_strategy(), 1..250)
    ) {
        let mut heap = SimHeap::new();
        let mut graph = HeapGraph::new();
        let mut live: Vec<Addr> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let eff = heap.alloc(size, AllocSite(0)).unwrap();
                    graph.on_alloc(eff.id, eff.addr, eff.size);
                    live.push(eff.addr);
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let addr = live.remove(n % live.len());
                        let eff = heap.free(addr).unwrap();
                        graph.on_free(eff.id);
                    }
                }
                Op::Link { src, dst, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        let d = live[dst % live.len()];
                        match heap.write_ptr(s.offset(slot), d) {
                            Ok(w) => graph.on_ptr_write(w.src, w.offset, d),
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Unlink { src, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        match heap.write_ptr(s.offset(slot), sim_heap::NULL) {
                            Ok(w) => graph.on_ptr_write(w.src, w.offset, sim_heap::NULL),
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Scalar { src, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        match heap.write_scalar(s.offset(slot)) {
                            Ok(w) => graph.on_scalar_write(w.src, w.offset),
                            Err(HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            }

            graph.validate().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
            prop_assert_eq!(graph.node_count() as usize, live.len());
        }

        // Metric sanity: percentages lie in [0, 100] and indegree buckets
        // never exceed 100 in total.
        let m = graph.metrics();
        for (_, v) in m.iter() {
            prop_assert!((0.0..=100.0).contains(&v));
        }
        let indeg_total = m.get(heap_graph::MetricKind::Roots)
            + m.get(heap_graph::MetricKind::Indeg1)
            + m.get(heap_graph::MetricKind::Indeg2);
        prop_assert!(indeg_total <= 100.0 + 1e-9);
    }

    #[test]
    fn components_are_consistent_with_edges(
        n in 2usize..30,
        links in proptest::collection::vec((0usize..30, 0usize..30), 0..40)
    ) {
        let mut heap = SimHeap::new();
        let mut graph = HeapGraph::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let eff = heap.alloc(64, AllocSite(0)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for (i, (a, b)) in links.iter().enumerate() {
            let s = addrs[a % n];
            let d = addrs[b % n];
            let w = heap.write_ptr(s.offset(((i % 8) * 8) as u64), d).unwrap();
            graph.on_ptr_write(w.src, w.offset, d);
        }
        let c = graph.components();
        prop_assert!(c.count >= 1);
        prop_assert!(c.count <= n as u64);
        prop_assert!(c.largest <= n as u64);
        prop_assert!((c.mean_size * c.count as f64 - n as f64).abs() < 1e-9);
    }
}
