//! On-demand connectivity analysis.
//!
//! The paper lists "the size and number of connected and strongly
//! connected components" among the alternative metric choices (§2.1).
//! These are too expensive to maintain incrementally under edge
//! deletion, so they are computed on demand by a union-find pass over
//! the resolved edges — suitable for occasional metric computation
//! points, not for every event.

use crate::graph::HeapGraph;
use serde::{Deserialize, Serialize};
use sim_heap::ObjectId;
use std::collections::HashMap;

/// Summary of the graph's weakly-connected component structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentSummary {
    /// Number of weakly-connected components.
    pub count: u64,
    /// Vertexes in the largest component.
    pub largest: u64,
    /// Number of singleton components (isolated vertexes).
    pub singletons: u64,
    /// Mean component size (0 for the empty graph).
    pub mean_size: f64,
}

/// Union-find over vertex ids.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<u64>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Weakly-connected component summary from a node/edge enumeration
/// (shared by the single-slab and sharded graphs).
fn components_from(
    ids: Vec<ObjectId>,
    edges: impl Iterator<Item = (ObjectId, u64, ObjectId)>,
) -> ComponentSummary {
    {
        if ids.is_empty() {
            return ComponentSummary::default();
        }
        let index: HashMap<ObjectId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut uf = UnionFind::new(ids.len());
        for (src, _, dst) in edges {
            uf.union(index[&src], index[&dst]);
        }
        let mut comp_size: HashMap<usize, u64> = HashMap::new();
        for i in 0..ids.len() {
            let root = uf.find(i);
            *comp_size.entry(root).or_default() += 1;
        }
        let count = comp_size.len() as u64;
        let largest = comp_size.values().copied().max().unwrap_or(0);
        let singletons = comp_size.values().filter(|&&s| s == 1).count() as u64;
        ComponentSummary {
            count,
            largest,
            singletons,
            mean_size: ids.len() as f64 / count as f64,
        }
    }
}

impl HeapGraph {
    /// Computes the weakly-connected component summary of the current
    /// graph (treating edges as undirected).
    ///
    /// O(nodes + edges); intended for metric computation points.
    pub fn components(&self) -> ComponentSummary {
        components_from(self.node_ids().collect(), self.edges())
    }
}

impl crate::ShardedGraph {
    /// Weakly-connected component summary (see
    /// [`HeapGraph::components`]).
    pub fn components(&self) -> ComponentSummary {
        components_from(self.node_ids().collect(), self.edges())
    }
}

impl crate::GraphImage {
    /// Weakly-connected component summary (see
    /// [`HeapGraph::components`]).
    pub fn components(&self) -> ComponentSummary {
        match self {
            crate::GraphImage::Single(g) => g.components(),
            crate::GraphImage::Sharded(s) => s.components(),
        }
    }

    /// Strongly-connected component summary (see [`HeapGraph::sccs`]).
    pub fn sccs(&self) -> SccSummary {
        match self {
            crate::GraphImage::Single(g) => g.sccs(),
            crate::GraphImage::Sharded(s) => s.sccs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::{Addr, AllocSite, SimHeap};

    fn rig_with_chain(len: usize, isolated: usize) -> HeapGraph {
        let mut heap = SimHeap::new();
        let mut g = HeapGraph::new();
        let mut addrs: Vec<Addr> = Vec::new();
        for _ in 0..len + isolated {
            let eff = heap.alloc(16, AllocSite(0)).unwrap();
            g.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for w in addrs[..len].windows(2) {
            let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
            g.on_ptr_write(eff.src, eff.offset, w[1]);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = HeapGraph::new();
        assert_eq!(g.components(), ComponentSummary::default());
    }

    #[test]
    fn chain_is_one_component() {
        let g = rig_with_chain(5, 0);
        let c = g.components();
        assert_eq!(c.count, 1);
        assert_eq!(c.largest, 5);
        assert_eq!(c.singletons, 0);
        assert_eq!(c.mean_size, 5.0);
    }

    #[test]
    fn isolated_vertexes_are_singletons() {
        let g = rig_with_chain(4, 3);
        let c = g.components();
        assert_eq!(c.count, 4);
        assert_eq!(c.largest, 4);
        assert_eq!(c.singletons, 3);
        assert!((c.mean_size - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        // a -> b <- c : weakly one component.
        let mut heap = SimHeap::new();
        let mut g = HeapGraph::new();
        let alloc = |g: &mut HeapGraph, heap: &mut SimHeap| {
            let eff = heap.alloc(16, AllocSite(0)).unwrap();
            g.on_alloc(eff.id, eff.addr, eff.size);
            eff.addr
        };
        let a = alloc(&mut g, &mut heap);
        let b = alloc(&mut g, &mut heap);
        let c = alloc(&mut g, &mut heap);
        for (src, dst) in [(a, b), (c, b)] {
            let eff = heap.write_ptr(src, dst).unwrap();
            g.on_ptr_write(eff.src, eff.offset, dst);
        }
        assert_eq!(g.components().count, 1);
    }
}

/// Summary of the graph's strongly-connected component structure —
/// the second alternative metric family the paper names (§2.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SccSummary {
    /// Number of strongly-connected components.
    pub count: u64,
    /// Vertexes in the largest SCC.
    pub largest: u64,
    /// SCCs with more than one vertex (true cycles).
    pub nontrivial: u64,
}

/// Strongly-connected component summary (iterative Tarjan) from a
/// node/edge enumeration.
fn sccs_from(
    ids: Vec<ObjectId>,
    edges: impl Iterator<Item = (ObjectId, u64, ObjectId)>,
) -> SccSummary {
    {
        if ids.is_empty() {
            return SccSummary::default();
        }
        let index: HashMap<ObjectId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let n = ids.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (src, _, dst) in edges {
            adj[index[&src]].push(index[&dst]);
        }

        // Iterative Tarjan.
        const UNSET: usize = usize::MAX;
        let mut disc = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_disc = 0usize;
        let mut count = 0u64;
        let mut largest = 0u64;
        let mut nontrivial = 0u64;

        // Work stack frames: (vertex, next child index).
        for start in 0..n {
            if disc[start] != UNSET {
                continue;
            }
            let mut work: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ci)) = work.last_mut() {
                if *ci == 0 {
                    disc[v] = next_disc;
                    low[v] = next_disc;
                    next_disc += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < adj[v].len() {
                    let w = adj[v][*ci];
                    *ci += 1;
                    if disc[w] == UNSET {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    // v is finished.
                    if low[v] == disc[v] {
                        let mut size = 0u64;
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            size += 1;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                        largest = largest.max(size);
                        if size > 1 {
                            nontrivial += 1;
                        }
                    }
                    work.pop();
                    if let Some(&mut (parent, _)) = work.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        SccSummary {
            count,
            largest,
            nontrivial,
        }
    }
}

impl HeapGraph {
    /// Computes the strongly-connected component summary (iterative
    /// Tarjan), O(nodes + edges).
    ///
    /// Cyclic structures — rings, doubly-linked lists — form
    /// non-trivial SCCs; trees and singly-linked chains do not, which
    /// makes `nontrivial` a cheap cycle census of the heap.
    pub fn sccs(&self) -> SccSummary {
        sccs_from(self.node_ids().collect(), self.edges())
    }
}

impl crate::ShardedGraph {
    /// Strongly-connected component summary (see [`HeapGraph::sccs`]).
    pub fn sccs(&self) -> SccSummary {
        sccs_from(self.node_ids().collect(), self.edges())
    }
}

#[cfg(test)]
mod scc_tests {
    use super::*;
    use sim_heap::{Addr, AllocSite, SimHeap};

    struct Rig {
        heap: SimHeap,
        graph: HeapGraph,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                heap: SimHeap::new(),
                graph: HeapGraph::new(),
            }
        }
        fn alloc(&mut self) -> Addr {
            let eff = self.heap.alloc(16, AllocSite(0)).unwrap();
            self.graph.on_alloc(eff.id, eff.addr, eff.size);
            eff.addr
        }
        fn link(&mut self, src: Addr, dst: Addr) {
            let eff = self.heap.write_ptr(src, dst).unwrap();
            self.graph.on_ptr_write(eff.src, eff.offset, dst);
        }
    }

    #[test]
    fn empty_graph_has_no_sccs() {
        assert_eq!(HeapGraph::new().sccs(), SccSummary::default());
    }

    #[test]
    fn a_chain_is_all_trivial_sccs() {
        let mut r = Rig::new();
        let nodes: Vec<Addr> = (0..6).map(|_| r.alloc()).collect();
        for w in nodes.windows(2) {
            r.link(w[0].offset(8), w[1]);
        }
        let s = r.graph.sccs();
        assert_eq!(s.count, 6);
        assert_eq!(s.largest, 1);
        assert_eq!(s.nontrivial, 0);
    }

    #[test]
    fn a_ring_is_one_nontrivial_scc() {
        let mut r = Rig::new();
        let nodes: Vec<Addr> = (0..5).map(|_| r.alloc()).collect();
        for i in 0..5 {
            r.link(nodes[i].offset(8), nodes[(i + 1) % 5]);
        }
        let s = r.graph.sccs();
        assert_eq!(s.count, 1);
        assert_eq!(s.largest, 5);
        assert_eq!(s.nontrivial, 1);
    }

    #[test]
    fn doubly_linked_pairs_form_cycles() {
        // a <-> b, plus a lone c: two SCCs, one non-trivial.
        let mut r = Rig::new();
        let a = r.alloc();
        let b = r.alloc();
        let _c = r.alloc();
        r.link(a, b);
        r.link(b, a);
        let s = r.graph.sccs();
        assert_eq!(s.count, 2);
        assert_eq!(s.largest, 2);
        assert_eq!(s.nontrivial, 1);
    }

    #[test]
    fn mixed_graph_counts() {
        // ring(3) -> chain(2): SCC count = 3 (ring + 2 singles).
        let mut r = Rig::new();
        let ring: Vec<Addr> = (0..3).map(|_| r.alloc()).collect();
        for i in 0..3 {
            r.link(ring[i].offset(8), ring[(i + 1) % 3]);
        }
        let c1 = r.alloc();
        let c2 = r.alloc();
        r.link(ring[0], c1);
        r.link(c1.offset(8), c2);
        let s = r.graph.sccs();
        assert_eq!(s.count, 3);
        assert_eq!(s.largest, 3);
        assert_eq!(s.nontrivial, 1);
    }
}
