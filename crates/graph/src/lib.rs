//! # heap-graph — the incremental object-granularity heap-graph
//!
//! HeapMD's execution logger "maintains an image of the heap-graph, and
//! updates this image when the program allocates, frees, or writes to an
//! object" (§2.1). This crate is that image: a directed graph whose
//! vertexes are live heap objects and whose edges `u → v` exist when a
//! pointer slot inside `u` holds an address inside `v`.
//!
//! Three properties drive the design:
//!
//! * **Object granularity** (paper Figure 3): edges connect whole
//!   objects, so field layout does not perturb the metrics and no type
//!   information is required.
//! * **Incrementality**: the graph applies each [`sim_heap::HeapEvent`]
//!   in O(log n) and maintains degree histograms, so the seven paper
//!   metrics read out in O(1) at every metric computation point — this
//!   is what makes the 1/100 000-function-entry sampling cheap enough
//!   for a 2–3× slowdown.
//! * **Address re-binding**: a pointer slot whose target is freed stops
//!   being an edge (its vertex vanished), but the raw value is retained;
//!   if a later allocation covers that address, the slot becomes an edge
//!   to the *new* object. This mirrors what a heap walk over a real
//!   process would observe and is what makes dangling-pointer bugs
//!   visible to degree metrics.
//!
//! # Example
//!
//! ```
//! use heap_graph::{HeapGraph, MetricKind};
//! use sim_heap::{AllocSite, SimHeap};
//!
//! # fn main() -> Result<(), sim_heap::HeapError> {
//! let mut heap = SimHeap::new();
//! let mut graph = HeapGraph::new();
//!
//! let a = heap.alloc(24, AllocSite(0))?;
//! let b = heap.alloc(24, AllocSite(0))?;
//! graph.on_alloc(a.id, a.addr, a.size);
//! graph.on_alloc(b.id, b.addr, b.size);
//!
//! let w = heap.write_ptr(a.addr, b.addr)?;
//! graph.on_ptr_write(w.src, w.offset, b.addr);
//!
//! assert_eq!(graph.node_count(), 2);
//! assert_eq!(graph.edge_count(), 1);
//! // One leaf (b), one root (a)… and both metrics are percentages.
//! let m = graph.metrics();
//! assert_eq!(m.get(MetricKind::Leaves), 50.0);
//! assert_eq!(m.get(MetricKind::Roots), 50.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod components;
mod distribution;
mod field_graph;
mod graph;
mod histogram;
mod metrics;
mod node;
#[cfg(any(test, feature = "reference-graph"))]
mod reference;
mod scoped;
mod shard;

pub use candidates::{CandidateKind, CandidateVector, CANDIDATE_COUNT, TAIL_MIN_DEGREE};
pub use components::{ComponentSummary, SccSummary};
pub use distribution::DegreeDistribution;
pub use field_graph::FieldGraph;
pub use graph::{GraphSnapshot, HeapGraph};
pub use histogram::{DegreeHistogram, DEGREE_SATURATION};
pub use metrics::{ExtendedMetrics, MetricKind, MetricVector, METRIC_COUNT};
pub use node::NodeInfo;
#[cfg(any(test, feature = "reference-graph"))]
pub use reference::ReferenceGraph;
pub use scoped::ScopedGraph;
pub use shard::{DegreeOp, GraphImage, ShardedGraph, MAX_SHARDS, SHARD_BITS, SLOT_BITS};
