//! The widened candidate metric family.
//!
//! The paper's architecture is "explicitly meant to be extensible": the
//! seven degree percentages are one projection of the degree histogram,
//! and any scalar that can be read off the heap-graph at a metric
//! computation point is a *candidate* for the stability filter. This
//! module enumerates the candidate family this reproduction tracks —
//! the seven paper metrics plus distribution-shape and structural
//! extensions — under stable string ids, so models can record which
//! candidates calibrated for a given program without baking the family
//! into the artifact layout.
//!
//! The first seven candidates are computed by exactly the same code
//! path as [`MetricVector::from_histogram`], so their values are
//! bit-identical to the legacy metric suite at every sample.

use crate::distribution::DegreeDistribution;
use crate::histogram::DegreeHistogram;
use crate::metrics::{ExtendedMetrics, MetricKind, METRIC_COUNT};
use serde::{Deserialize, Serialize};
use std::fmt;

#[cfg(doc)]
use crate::metrics::MetricVector;

/// Number of candidate metrics in the family.
pub const CANDIDATE_COUNT: usize = 20;

/// Minimum degree counted as distribution "tail" by the tail-mass
/// candidates — chosen just above the paper's observation that heap
/// degrees "only rarely exceed 2".
pub const TAIL_MIN_DEGREE: u32 = 3;

/// One candidate metric: a scalar read off the heap-graph at a metric
/// computation point and fed through the stability filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CandidateKind {
    /// % of vertexes with indegree 0 (= [`MetricKind::Roots`]).
    Roots,
    /// % of vertexes with indegree 1 (= [`MetricKind::Indeg1`]).
    Indeg1,
    /// % of vertexes with indegree 2 (= [`MetricKind::Indeg2`]).
    Indeg2,
    /// % of vertexes with outdegree 0 (= [`MetricKind::Leaves`]).
    Leaves,
    /// % of vertexes with outdegree 1 (= [`MetricKind::Outdeg1`]).
    Outdeg1,
    /// % of vertexes with outdegree 2 (= [`MetricKind::Outdeg2`]).
    Outdeg2,
    /// % of vertexes with indegree = outdegree (= [`MetricKind::InEqOut`]).
    InEqOut,
    /// % of vertexes with indegree ≥ 3 — the population the paper's
    /// fixed suite cannot see.
    Indeg3Plus,
    /// % of vertexes with outdegree ≥ 3.
    Outdeg3Plus,
    /// Shannon entropy (bits) of the normalized weighted indegree
    /// distribution.
    InEntropy,
    /// Shannon entropy (bits) of the normalized weighted outdegree
    /// distribution.
    OutEntropy,
    /// Weighted indegree mass at degrees ≥ [`TAIL_MIN_DEGREE`].
    InTailMass,
    /// Weighted outdegree mass at degrees ≥ [`TAIL_MIN_DEGREE`].
    OutTailMass,
    /// Sum of the two largest normalized weighted indegree weights.
    InTop2Share,
    /// Sum of the two largest normalized weighted outdegree weights.
    OutTop2Share,
    /// Mean outdegree over vertexes.
    MeanDegree,
    /// Highest indegree present (saturated at the histogram bound).
    MaxInDegree,
    /// Highest outdegree present (saturated at the histogram bound).
    MaxOutDegree,
    /// % of pointer slots that are dangling:
    /// `dangling / (edges + dangling) × 100`.
    DanglingShare,
    /// Dangling pointer slots per 100 vertexes.
    DanglingPerNode,
}

impl CandidateKind {
    /// All candidates, in canonical order. The first
    /// [`METRIC_COUNT`] entries mirror [`MetricKind::ALL`].
    pub const ALL: [CandidateKind; CANDIDATE_COUNT] = [
        CandidateKind::Roots,
        CandidateKind::Indeg1,
        CandidateKind::Indeg2,
        CandidateKind::Leaves,
        CandidateKind::Outdeg1,
        CandidateKind::Outdeg2,
        CandidateKind::InEqOut,
        CandidateKind::Indeg3Plus,
        CandidateKind::Outdeg3Plus,
        CandidateKind::InEntropy,
        CandidateKind::OutEntropy,
        CandidateKind::InTailMass,
        CandidateKind::OutTailMass,
        CandidateKind::InTop2Share,
        CandidateKind::OutTop2Share,
        CandidateKind::MeanDegree,
        CandidateKind::MaxInDegree,
        CandidateKind::MaxOutDegree,
        CandidateKind::DanglingShare,
        CandidateKind::DanglingPerNode,
    ];

    /// The candidate's index in canonical order.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The candidate at canonical index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= CANDIDATE_COUNT`.
    pub fn from_index(i: usize) -> CandidateKind {
        CandidateKind::ALL[i]
    }

    /// The stable string id used in model artifacts, the run-store, and
    /// metric expositions. Ids are namespaced by family: `paper.*` for
    /// the legacy seven, `deg.*`/`dist.*`/`shape.*`/`ptr.*` for the
    /// extensions.
    pub fn id(self) -> &'static str {
        match self {
            CandidateKind::Roots => "paper.roots",
            CandidateKind::Indeg1 => "paper.indeg1",
            CandidateKind::Indeg2 => "paper.indeg2",
            CandidateKind::Leaves => "paper.leaves",
            CandidateKind::Outdeg1 => "paper.outdeg1",
            CandidateKind::Outdeg2 => "paper.outdeg2",
            CandidateKind::InEqOut => "paper.in_eq_out",
            CandidateKind::Indeg3Plus => "deg.indeg3plus",
            CandidateKind::Outdeg3Plus => "deg.outdeg3plus",
            CandidateKind::InEntropy => "dist.in_entropy",
            CandidateKind::OutEntropy => "dist.out_entropy",
            CandidateKind::InTailMass => "dist.in_tail_mass",
            CandidateKind::OutTailMass => "dist.out_tail_mass",
            CandidateKind::InTop2Share => "dist.in_top2_share",
            CandidateKind::OutTop2Share => "dist.out_top2_share",
            CandidateKind::MeanDegree => "shape.mean_degree",
            CandidateKind::MaxInDegree => "shape.max_indegree",
            CandidateKind::MaxOutDegree => "shape.max_outdegree",
            CandidateKind::DanglingShare => "ptr.dangling_share",
            CandidateKind::DanglingPerNode => "ptr.dangling_per_node",
        }
    }

    /// Resolves a stable string id back to its candidate, or `None`
    /// for an id this build does not know (a forward-compat signal —
    /// see `HeapModel::validate` in the core crate).
    pub fn from_id(id: &str) -> Option<CandidateKind> {
        CandidateKind::ALL.iter().copied().find(|k| k.id() == id)
    }

    /// A short human-readable label for tables and `inspect` output.
    pub fn short_name(self) -> &'static str {
        match self.paper_kind() {
            Some(k) => k.short_name(),
            None => match self {
                CandidateKind::Indeg3Plus => "Indeg>=3",
                CandidateKind::Outdeg3Plus => "Outdeg>=3",
                CandidateKind::InEntropy => "InEntropy",
                CandidateKind::OutEntropy => "OutEntropy",
                CandidateKind::InTailMass => "InTail",
                CandidateKind::OutTailMass => "OutTail",
                CandidateKind::InTop2Share => "InTop2",
                CandidateKind::OutTop2Share => "OutTop2",
                CandidateKind::MeanDegree => "MeanDeg",
                CandidateKind::MaxInDegree => "MaxIndeg",
                CandidateKind::MaxOutDegree => "MaxOutdeg",
                CandidateKind::DanglingShare => "Dangling%",
                CandidateKind::DanglingPerNode => "Dangling/Node",
                _ => unreachable!("paper candidates handled above"),
            },
        }
    }

    /// The paper metric this candidate mirrors, if it is one of the
    /// legacy seven.
    pub fn paper_kind(self) -> Option<MetricKind> {
        if self.index() < METRIC_COUNT {
            Some(MetricKind::from_index(self.index()))
        } else {
            None
        }
    }

    /// `true` for the seven legacy paper metrics.
    pub fn is_paper(self) -> bool {
        self.index() < METRIC_COUNT
    }
}

impl fmt::Display for CandidateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The values of every candidate metric at one metric computation
/// point.
///
/// # Example
///
/// ```
/// use heap_graph::{CandidateKind, CandidateVector, DegreeHistogram, ExtendedMetrics};
///
/// let mut h = DegreeHistogram::new();
/// h.add_node();
/// h.add_node();
/// h.change_degrees(0, 0, 0, 1); // one vertex points at the other
/// h.change_degrees(0, 1, 0, 0);
/// let ext = ExtendedMetrics { nodes: 2, edges: 1, dangling_slots: 0, mean_degree: 0.5 };
/// let c = CandidateVector::compute(&h, &ext);
/// assert_eq!(c.get(CandidateKind::Roots), 50.0);
/// assert_eq!(c.get(CandidateKind::MaxOutDegree), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CandidateVector([f64; CANDIDATE_COUNT]);

impl CandidateVector {
    /// The all-zero vector (an empty heap).
    pub fn zero() -> Self {
        CandidateVector([0.0; CANDIDATE_COUNT])
    }

    /// Builds a vector from values in canonical candidate order.
    pub fn from_array(values: [f64; CANDIDATE_COUNT]) -> Self {
        CandidateVector(values)
    }

    /// Reads one candidate.
    pub fn get(&self, kind: CandidateKind) -> f64 {
        self.0[kind.index()]
    }

    /// Writes one candidate.
    pub fn set(&mut self, kind: CandidateKind, value: f64) {
        self.0[kind.index()] = value;
    }

    /// The raw values in canonical candidate order.
    pub fn as_array(&self) -> &[f64; CANDIDATE_COUNT] {
        &self.0
    }

    /// Iterates `(kind, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (CandidateKind, f64)> + '_ {
        CandidateKind::ALL
            .iter()
            .map(move |&k| (k, self.0[k.index()]))
    }

    /// Computes every candidate from a degree histogram plus the
    /// structural extension counters.
    ///
    /// The first seven values go through the same percentage helpers as
    /// [`MetricVector::from_histogram`] and are therefore bit-identical
    /// to the legacy suite at the same computation point.
    pub fn compute(h: &DegreeHistogram, ext: &ExtendedMetrics) -> Self {
        let in_dist = DegreeDistribution::from_counts(h.indegree_counts());
        let out_dist = DegreeDistribution::from_counts(h.outdegree_counts());
        let nodes = h.nodes();
        let pct_at_least = |counts: &[u64], min: usize| -> f64 {
            if nodes == 0 {
                0.0
            } else {
                let tail: u64 = counts.iter().skip(min).sum();
                tail as f64 * 100.0 / nodes as f64
            }
        };
        let max_present =
            |counts: &[u64]| -> f64 { counts.iter().rposition(|&c| c > 0).unwrap_or(0) as f64 };
        let slots = ext.edges + ext.dangling_slots;
        let dangling_share = if slots == 0 {
            0.0
        } else {
            ext.dangling_slots as f64 * 100.0 / slots as f64
        };
        let dangling_per_node = if ext.nodes == 0 {
            0.0
        } else {
            ext.dangling_slots as f64 * 100.0 / ext.nodes as f64
        };
        CandidateVector([
            h.pct_indegree(0),
            h.pct_indegree(1),
            h.pct_indegree(2),
            h.pct_outdegree(0),
            h.pct_outdegree(1),
            h.pct_outdegree(2),
            h.pct_in_eq_out(),
            pct_at_least(h.indegree_counts(), TAIL_MIN_DEGREE as usize),
            pct_at_least(h.outdegree_counts(), TAIL_MIN_DEGREE as usize),
            in_dist.entropy(),
            out_dist.entropy(),
            in_dist.tail_mass(TAIL_MIN_DEGREE),
            out_dist.tail_mass(TAIL_MIN_DEGREE),
            in_dist.top_share(2),
            out_dist.top_share(2),
            ext.mean_degree,
            max_present(h.indegree_counts()),
            max_present(h.outdegree_counts()),
            dangling_share,
            dangling_per_node,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricVector;

    fn sample_histogram() -> DegreeHistogram {
        let mut h = DegreeHistogram::new();
        // 6 vertexes: degrees (in,out) = (0,0) (0,0) (1,0) (2,1) (0,4) (1,1)
        for _ in 0..6 {
            h.add_node();
        }
        h.change_degrees(0, 1, 0, 0);
        h.change_degrees(0, 2, 0, 1);
        h.change_degrees(0, 0, 0, 4);
        h.change_degrees(0, 1, 0, 1);
        h
    }

    #[test]
    fn ids_round_trip_and_are_unique() {
        for (i, &k) in CandidateKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(CandidateKind::from_index(i), k);
            assert_eq!(CandidateKind::from_id(k.id()), Some(k));
        }
        let mut ids: Vec<&str> = CandidateKind::ALL.iter().map(|k| k.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), CANDIDATE_COUNT);
        assert_eq!(CandidateKind::from_id("paper.bogus"), None);
    }

    #[test]
    fn first_seven_mirror_paper_metrics() {
        for k in MetricKind::ALL {
            let c = CandidateKind::from_index(k.index());
            assert_eq!(c.paper_kind(), Some(k));
            assert!(c.is_paper());
            assert_eq!(c.short_name(), k.short_name());
        }
        assert!(!CandidateKind::Indeg3Plus.is_paper());
        assert_eq!(CandidateKind::InEntropy.paper_kind(), None);
    }

    #[test]
    fn paper_slice_is_bit_identical_to_metric_vector() {
        let h = sample_histogram();
        let ext = ExtendedMetrics::default();
        let c = CandidateVector::compute(&h, &ext);
        let m = MetricVector::from_histogram(&h);
        for k in MetricKind::ALL {
            let cv = c.as_array()[k.index()];
            assert_eq!(cv.to_bits(), m.get(k).to_bits(), "{k}");
        }
    }

    #[test]
    fn extended_values_match_manual_computation() {
        let h = sample_histogram();
        let ext = ExtendedMetrics {
            nodes: 6,
            edges: 6,
            dangling_slots: 2,
            mean_degree: 1.0,
        };
        let c = CandidateVector::compute(&h, &ext);
        // outdegrees: 0,0,0,1,4,1 → one vertex ≥ 3 of six.
        assert!((c.get(CandidateKind::Outdeg3Plus) - 100.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.get(CandidateKind::Indeg3Plus), 0.0);
        assert_eq!(c.get(CandidateKind::MaxInDegree), 2.0);
        assert_eq!(c.get(CandidateKind::MaxOutDegree), 4.0);
        assert_eq!(c.get(CandidateKind::MeanDegree), 1.0);
        // out weights: deg1×2=2, deg4×1=4 → total 6.
        assert!((c.get(CandidateKind::OutTailMass) - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.get(CandidateKind::OutTop2Share) - 1.0).abs() < 1e-12);
        // 2 dangling of 8 slots.
        assert!((c.get(CandidateKind::DanglingShare) - 25.0).abs() < 1e-12);
        assert!((c.get(CandidateKind::DanglingPerNode) - 100.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_heap_is_all_zero() {
        let c = CandidateVector::compute(&DegreeHistogram::new(), &ExtendedMetrics::default());
        assert_eq!(c, CandidateVector::zero());
    }

    #[test]
    fn vector_serializes() {
        let mut c = CandidateVector::zero();
        c.set(CandidateKind::InEntropy, 1.5);
        let json = serde_json::to_string(&c).expect("serialize");
        let back: CandidateVector = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
