//! Address-range-sharded heap-graph with cross-shard reconciliation.
//!
//! [`ShardedGraph`] partitions [`HeapGraph`]'s *storage* — the node
//! slab, free list, and degree histogram — across N shards keyed by the
//! owning object's start address (`shard_of(start, n)`, region
//! granularity). The *relational* state stays sequential: the shadow
//! map, spill index, id intern map, and unresolved-slot buckets are
//! global, because pointer resolution and address re-binding couple
//! every shard to every other through address reuse (an allocation in
//! shard 2 can re-bind a dangling slot whose source node lives in shard
//! 5). Partitioning the counting state while keeping one sequential
//! resolver is what makes shard count *invisible*: every observable —
//! snapshots, histograms, the seven paper metrics, verdicts — is
//! bit-identical to the single-shard graph by construction, which the
//! differential suites assert over shard sweeps.
//!
//! Cross-shard edges are tracked in an N×N edge table indexed by
//! `(source shard, target shard)`; the table's diagonal holds
//! intra-shard edges, so the total edge count is the table sum and the
//! table is *reconciled* — summed, and the per-shard histograms merged
//! (exact, since every histogram counter is additive over the disjoint
//! node partition) — at metric computation points rather than on every
//! event.
//!
//! Node references are packed `u32`s: the high [`SHARD_BITS`] bits name
//! the shard, the low bits the slot within its slab. The
//! [`SHADOW_EMPTY`] sentinel (`u32::MAX`) unpacks to shard 255, which
//! [`MAX_SHARDS`] keeps unreachable, so packed refs drop into the
//! shadow map unchanged.
//!
//! For pipelined ingestion the graph also runs *detached*: instead of
//! applying degree changes to shard histograms inline, it buffers them
//! as per-shard [`DegreeOp`] batches that shard worker threads apply to
//! privately-owned histograms, with a barrier merge at each sample
//! point (see `heapmd`'s sharded replay driver).

use crate::candidates::CandidateVector;
use crate::graph::{Bucket, GraphSnapshot, HeapGraph, IdIndex, NodeSlot, Range, SlotState};
use crate::histogram::DegreeHistogram;
use crate::metrics::{ExtendedMetrics, MetricVector};
use crate::node::NodeInfo;
use sim_heap::{shard_of, Addr, HeapEvent, ObjectId, ShadowMap};

/// High bits of a packed node reference that carry the shard index.
pub const SHARD_BITS: u32 = 8;
/// Low bits carrying the slot index within a shard's slab.
pub const SLOT_BITS: u32 = 32 - SHARD_BITS;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;

/// Upper bound on the shard count (power-of-two headroom below the 255
/// sentinel shard that [`sim_heap::SHADOW_EMPTY`] unpacks to).
pub const MAX_SHARDS: usize = 64;

#[inline]
fn pack(shard: usize, slot: u32) -> u32 {
    debug_assert!(shard < MAX_SHARDS);
    debug_assert!(slot <= SLOT_MASK);
    ((shard as u32) << SLOT_BITS) | slot
}

#[inline]
fn shard_of_ref(r: u32) -> usize {
    (r >> SLOT_BITS) as usize
}

#[inline]
fn slot_of_ref(r: u32) -> usize {
    (r & SLOT_MASK) as usize
}

/// One buffered degree-histogram mutation, tagged for a specific shard
/// by its position in the per-shard batch.
///
/// In detached mode the sequential router emits these instead of
/// touching shard histograms, and shard worker threads apply them to
/// their own histogram copy — the per-shard op order equals router
/// order, and histograms over disjoint node sets are independent, so
/// the barrier merge reproduces the inline result exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeOp {
    /// A vertex was born (degrees 0/0).
    AddNode,
    /// A vertex with these degrees was removed.
    RemoveNode {
        /// Indegree at removal.
        indegree: u32,
        /// Outdegree at removal.
        outdegree: u32,
    },
    /// A vertex moved between degree buckets.
    Change {
        /// Indegree before.
        old_in: u32,
        /// Indegree after.
        new_in: u32,
        /// Outdegree before.
        old_out: u32,
        /// Outdegree after.
        new_out: u32,
    },
}

impl DegreeOp {
    /// Applies this op to a histogram.
    #[inline]
    pub fn apply(&self, h: &mut DegreeHistogram) {
        match *self {
            DegreeOp::AddNode => h.add_node(),
            DegreeOp::RemoveNode {
                indegree,
                outdegree,
            } => h.remove_node(indegree, outdegree),
            DegreeOp::Change {
                old_in,
                new_in,
                old_out,
                new_out,
            } => h.change_degrees(old_in, new_in, old_out, new_out),
        }
    }
}

/// Storage owned by one shard: the slab for nodes whose start address
/// hashes here, plus the partitioned counters.
#[derive(Debug, Clone, Default)]
struct Shard {
    slots: Vec<NodeSlot>,
    free: Vec<u32>,
    /// Degree histogram over this shard's live nodes (unused while
    /// detached — workers own the histograms then).
    histogram: DegreeHistogram,
    /// Live nodes owned by this shard (router-maintained, exact even
    /// in detached mode).
    live: u64,
    /// Dangling pointer slots whose *source* node lives here.
    dangling: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            histogram: DegreeHistogram::new(),
            ..Shard::default()
        }
    }
}

/// The sharded heap-graph image.
///
/// Same event semantics as [`HeapGraph`] — the differential test suites
/// assert bit-identical snapshots, histograms, and metrics across shard
/// counts — with storage partitioned for pipelined ingestion.
///
/// # Example
///
/// ```
/// use heap_graph::{HeapGraph, ShardedGraph};
/// use sim_heap::{AllocSite, SimHeap};
///
/// # fn main() -> Result<(), sim_heap::HeapError> {
/// let mut heap = SimHeap::new();
/// let mut single = HeapGraph::new();
/// let mut sharded = ShardedGraph::new(4);
/// let a = heap.alloc(24, AllocSite(0))?;
/// let b = heap.alloc(24, AllocSite(0))?;
/// for g in [&mut single] { g.on_alloc(a.id, a.addr, a.size); g.on_alloc(b.id, b.addr, b.size); }
/// sharded.on_alloc(a.id, a.addr, a.size);
/// sharded.on_alloc(b.id, b.addr, b.size);
/// let w = heap.write_ptr(a.addr, b.addr)?;
/// single.on_ptr_write(w.src, w.offset, b.addr);
/// sharded.on_ptr_write(w.src, w.offset, b.addr);
/// assert_eq!(sharded.snapshot(), single.snapshot());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    /// Sequential resolver state (shared across shards).
    index: IdIndex,
    shadow: ShadowMap,
    spill: Vec<Range>,
    unresolved: Vec<Bucket>,
    /// Partitioned storage.
    shards: Vec<Shard>,
    /// N×N edge counts indexed `src_shard * n + tgt_shard`; diagonal =
    /// intra-shard.
    xshard: Vec<u64>,
    /// Last reconciled histogram (see [`reconcile`](Self::reconcile)).
    merged: DegreeHistogram,
    /// Buffer degree ops per shard instead of applying them.
    detached: bool,
    pending: Vec<Vec<DegreeOp>>,
}

impl ShardedGraph {
    /// Creates an empty graph over `n` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]).
    pub fn new(n: usize) -> Self {
        let n = n.clamp(1, MAX_SHARDS);
        ShardedGraph {
            index: IdIndex::default(),
            shadow: ShadowMap::new(),
            spill: Vec::new(),
            unresolved: Vec::new(),
            shards: (0..n).map(|_| Shard::new()).collect(),
            xshard: vec![0; n * n],
            merged: DegreeHistogram::new(),
            detached: false,
            pending: vec![Vec::new(); n],
        }
    }

    /// Creates a detached graph: degree ops are buffered per shard (see
    /// [`take_pending_ops`](Self::take_pending_ops)) instead of applied,
    /// for the pipelined driver whose shard workers own the histograms.
    pub fn new_detached(n: usize) -> Self {
        let mut g = ShardedGraph::new(n);
        g.detached = true;
        g
    }

    /// Returns the graph to its empty state while retaining the
    /// dominant allocations in every shard (slot slabs, free lists)
    /// plus the shared resolver state (id index, shadow pages) — the
    /// sharded counterpart of [`HeapGraph::reset`].
    pub fn reset(&mut self) {
        self.index.clear();
        self.shadow.clear();
        self.spill.clear();
        self.unresolved.clear();
        for shard in &mut self.shards {
            shard.slots.clear();
            shard.free.clear();
            shard.histogram = DegreeHistogram::new();
            shard.live = 0;
            shard.dangling = 0;
        }
        self.xshard.fill(0);
        self.merged = DegreeHistogram::new();
        for batch in &mut self.pending {
            batch.clear();
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live vertexes (exact at any time; router-maintained).
    pub fn node_count(&self) -> u64 {
        self.shards.iter().map(|s| s.live).sum()
    }

    /// Resolved edges (sum of the cross-shard edge table).
    pub fn edge_count(&self) -> u64 {
        self.xshard.iter().sum()
    }

    /// Edges whose endpoints live in different shards (off-diagonal sum
    /// of the edge table).
    pub fn cross_shard_edges(&self) -> u64 {
        let n = self.shards.len();
        let mut total = 0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    total += self.xshard[s * n + t];
                }
            }
        }
        total
    }

    /// Dangling pointer slots.
    pub fn dangling_count(&self) -> u64 {
        self.shards.iter().map(|s| s.dangling).sum()
    }

    /// Per-shard live-node counts (observability).
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.live).collect()
    }

    /// Degree information for a live vertex.
    pub fn node(&self, id: ObjectId) -> Option<NodeInfo> {
        self.index.get(id).map(|r| self.slot(r).info)
    }

    /// Returns `true` if `id` is a live vertex.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.index.get(id).is_some()
    }

    /// The histogram as of the last [`reconcile`](Self::reconcile) (or
    /// the last installed merge, in detached mode).
    pub fn histogram(&self) -> &DegreeHistogram {
        &self.merged
    }

    /// Merges the per-shard degree histograms into one. Exact, not
    /// approximate: shards partition the node set and every histogram
    /// counter is additive over disjoint sets.
    ///
    /// In detached mode the shard histograms live on the worker
    /// threads; the last merge the driver installed via
    /// [`install_merged_histogram`](Self::install_merged_histogram)
    /// stands in.
    fn merged_now(&self) -> DegreeHistogram {
        if self.detached {
            return self.merged.clone();
        }
        let mut merged = DegreeHistogram::new();
        for shard in &self.shards {
            merged.merge(&shard.histogram);
        }
        merged
    }

    /// Refreshes the cached reconciled histogram served by
    /// [`histogram`](Self::histogram). Called at metric computation
    /// points (a no-op in detached mode, where the driver installs the
    /// barrier merge instead).
    pub fn reconcile(&mut self) {
        if !self.detached {
            self.merged = self.merged_now();
        }
    }

    /// Computes the seven paper metrics from the reconciled histogram.
    pub fn metrics(&self) -> MetricVector {
        MetricVector::from_histogram(&self.merged_now())
    }

    /// Computes the full candidate metric family from the reconciled
    /// histogram.
    pub fn candidates(&self) -> CandidateVector {
        CandidateVector::compute(&self.merged_now(), &self.extended_metrics())
    }

    /// Computes the extension metrics.
    pub fn extended_metrics(&self) -> ExtendedMetrics {
        let nodes = self.node_count();
        let edges = self.edge_count();
        ExtendedMetrics {
            nodes,
            edges,
            dangling_slots: self.dangling_count(),
            mean_degree: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
        }
    }

    /// A serializable summary of the current instant.
    pub fn snapshot(&self) -> GraphSnapshot {
        let metrics = self.metrics();
        GraphSnapshot {
            nodes: self.node_count(),
            edges: self.edge_count(),
            dangling: self.dangling_count(),
            metrics,
        }
    }

    /// Takes the buffered per-shard degree-op batches (detached mode),
    /// leaving empty buffers behind.
    pub fn take_pending_ops(&mut self) -> Vec<Vec<DegreeOp>> {
        let n = self.shards.len();
        std::mem::replace(&mut self.pending, vec![Vec::new(); n])
    }

    /// Installs an externally merged histogram (detached mode): the
    /// driver's barrier collects worker histograms, merges them, and
    /// publishes the result here so
    /// [`histogram`](Self::histogram)/[`metrics`](Self::metrics) serve
    /// the reconciled view.
    pub fn install_merged_histogram(&mut self, merged: DegreeHistogram) {
        self.merged = merged;
    }

    /// Applies one instrumentation event (same contract as
    /// [`HeapGraph::apply`]).
    pub fn apply(&mut self, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc {
                obj, addr, size, ..
            } => self.on_alloc(obj, addr, size),
            HeapEvent::Free { obj, .. } => self.on_free(obj),
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => self.on_ptr_write(src, offset, value),
            HeapEvent::ScalarWrite { src, offset, .. } => self.on_scalar_write(src, offset),
            HeapEvent::Read { .. } | HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    /// Applies a recorded event slice (same contract as
    /// [`HeapGraph::apply_batch`]).
    pub fn apply_batch(&mut self, events: &[HeapEvent]) {
        if events.is_empty() {
            return;
        }
        let clock = heapmd_obs::throughput::stage_clock();
        for event in events {
            self.apply(event);
        }
        if let Some(t0) = clock {
            heapmd_obs::throughput::record_stage(
                "heap_graph_apply",
                events.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Adds a vertex, re-binding dangling slots it covers. Mirrors
    /// [`HeapGraph::on_alloc`] with packed refs.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already live.
    pub fn on_alloc(&mut self, id: ObjectId, addr: Addr, size: usize) {
        let start = addr.get();
        let end = start + size as u64;
        let n = self.shards.len();
        let owner = shard_of(start, n);
        let local = match self.shards[owner].free.pop() {
            Some(s) => {
                let ns = &mut self.shards[owner].slots[s as usize];
                debug_assert!(ns.out.is_empty() && ns.inbound.is_empty());
                ns.id = id;
                ns.info = NodeInfo::new();
                ns.start = start;
                ns.end = end;
                s
            }
            None => {
                let s = u32::try_from(self.shards[owner].slots.len()).expect("slab overflow");
                assert!(s <= SLOT_MASK, "shard slab overflow");
                self.shards[owner].slots.push(NodeSlot {
                    id,
                    info: NodeInfo::new(),
                    start,
                    end,
                    spilled: false,
                    out: Vec::new(),
                    inbound: Vec::new(),
                });
                s
            }
        };
        let r = pack(owner, local);
        let prev = self.index.insert(id, r);
        assert!(prev.is_none(), "duplicate allocation of {id}");
        let spilled = !self.shadow.insert(start, end, r);
        self.shards[owner].slots[local as usize].spilled = spilled;
        if spilled {
            let pos = self.spill.partition_point(|x| x.start < start);
            self.spill.insert(
                pos,
                Range {
                    start,
                    end,
                    slot: r,
                },
            );
        }
        self.shards[owner].live += 1;
        self.hist(owner, DegreeOp::AddNode);

        // Re-bind dangling slots now covered by this object.
        let lo = self.unresolved.partition_point(|b| b.raw < start);
        let hi = self.unresolved.partition_point(|b| b.raw < end);
        if lo < hi {
            let buckets: Vec<Bucket> = self.unresolved.drain(lo..hi).collect();
            for bucket in buckets {
                for (src, off) in bucket.entries {
                    let st = Self::slot_state_mut(&mut self.shards, src, off)
                        .expect("unresolved slot must exist in slot table");
                    debug_assert_eq!(st.target, None);
                    st.target = Some(r);
                    let src_sh = shard_of_ref(src);
                    self.shards[src_sh].dangling -= 1;
                    self.xshard[src_sh * n + owner] += 1;
                    self.shards[owner].slots[local as usize]
                        .inbound
                        .push((src, off));
                    if src == r {
                        self.adjust(r, 1, 1);
                    } else {
                        self.adjust(src, 0, 1);
                        self.adjust(r, 1, 0);
                    }
                }
            }
        }
    }

    /// Removes a vertex. Mirrors [`HeapGraph::on_free`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn on_free(&mut self, id: ObjectId) {
        let r = self
            .index
            .remove(id)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        let (sh, sl) = (shard_of_ref(r), slot_of_ref(r));
        let n = self.shards.len();
        let info = self.shards[sh].slots[sl].info;
        self.shards[sh].live -= 1;
        self.hist(
            sh,
            DegreeOp::RemoveNode {
                indegree: info.indegree,
                outdegree: info.outdegree,
            },
        );
        let (start, end) = (
            self.shards[sh].slots[sl].start,
            self.shards[sh].slots[sl].end,
        );
        if self.shards[sh].slots[sl].spilled {
            let pos = self.spill.partition_point(|x| x.start < start);
            debug_assert_eq!(self.spill[pos].slot, r);
            self.spill.remove(pos);
        } else {
            self.shadow.remove(start, end);
        }

        // Outgoing slots disappear with the object.
        let mut out = std::mem::take(&mut self.shards[sh].slots[sl].out);
        for &(off, st) in &out {
            match st.target {
                Some(t) => {
                    self.xshard[sh * n + shard_of_ref(t)] -= 1;
                    if t != r {
                        let inb = &mut self.shards[shard_of_ref(t)].slots[slot_of_ref(t)].inbound;
                        if let Some(p) = inb.iter().position(|&e| e == (r, off)) {
                            inb.swap_remove(p);
                        }
                        self.adjust(t, -1, 0);
                    }
                    // Self-edge: both endpoints die with the node.
                }
                None => {
                    self.remove_unresolved(st.raw, r, off);
                    self.shards[sh].dangling -= 1;
                }
            }
        }
        out.clear();
        self.shards[sh].slots[sl].out = out;

        // Incoming edges become dangling slots of their sources.
        let mut inbound = std::mem::take(&mut self.shards[sh].slots[sl].inbound);
        for &(src, off) in &inbound {
            if src == r {
                continue; // handled with the out-slots above
            }
            let st = Self::slot_state_mut(&mut self.shards, src, off)
                .expect("inbound edge has a source slot");
            debug_assert_eq!(st.target, Some(r));
            st.target = None;
            let raw = st.raw;
            let src_sh = shard_of_ref(src);
            self.xshard[src_sh * n + sh] -= 1;
            self.shards[src_sh].dangling += 1;
            self.insert_unresolved(raw, src, off);
            self.adjust(src, 0, -1);
        }
        inbound.clear();
        self.shards[sh].slots[sl].inbound = inbound;
        self.shards[sh].free.push(sl as u32);
    }

    /// Records a pointer store. Mirrors [`HeapGraph::on_ptr_write`].
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a live vertex.
    pub fn on_ptr_write(&mut self, src: ObjectId, offset: u64, value: Addr) {
        let src_ref = match self.index.get(src) {
            Some(s) => s,
            None => panic!("write into unknown {src}"),
        };
        self.drop_slot(src_ref, offset);
        if value.is_null() {
            return;
        }
        let raw = value.get();
        let target = self.resolve(raw);
        let (src_sh, src_sl) = (shard_of_ref(src_ref), slot_of_ref(src_ref));
        let out = &mut self.shards[src_sh].slots[src_sl].out;
        let pos = out.partition_point(|&(o, _)| o < offset);
        out.insert(pos, (offset, SlotState { raw, target }));
        match target {
            Some(t) => {
                let n = self.shards.len();
                self.xshard[src_sh * n + shard_of_ref(t)] += 1;
                self.shards[shard_of_ref(t)].slots[slot_of_ref(t)]
                    .inbound
                    .push((src_ref, offset));
                if t == src_ref {
                    self.adjust(src_ref, 1, 1);
                } else {
                    self.adjust(src_ref, 0, 1);
                    self.adjust(t, 1, 0);
                }
            }
            None => {
                self.shards[src_sh].dangling += 1;
                self.insert_unresolved(raw, src_ref, offset);
            }
        }
    }

    /// Records a non-pointer store, clearing any pointer in the slot.
    pub fn on_scalar_write(&mut self, src: ObjectId, offset: u64) {
        if let Some(s) = self.index.get(src) {
            self.drop_slot(s, offset);
        }
    }

    /// Iterates over resolved edges as `(source, offset, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (ObjectId, u64, ObjectId)> + '_ {
        self.index.iter().flat_map(move |(src, r)| {
            self.slot(r)
                .out
                .iter()
                .filter_map(move |&(off, st)| st.target.map(|t| (src, off, self.slot(t).id)))
        })
    }

    /// Iterates over live vertex ids.
    pub fn node_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.index.iter().map(|(id, _)| id)
    }

    /// Checks the incremental bookkeeping for consistency (O(1)
    /// structural checks; full recount in debug/test builds or with the
    /// `full-validate` feature, as in [`HeapGraph::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.index.len() as u64 != self.node_count() {
            return Err(format!(
                "intern map has {} entries but shards count {} live nodes",
                self.index.len(),
                self.node_count()
            ));
        }
        let mut slab_live = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.free.len() > shard.slots.len() {
                return Err(format!(
                    "shard {i}: {} free slots for {} allocated",
                    shard.free.len(),
                    shard.slots.len()
                ));
            }
            slab_live += shard.slots.len() - shard.free.len();
        }
        if slab_live != self.index.len() {
            return Err(format!(
                "slab accounting broken: {} live across shards, {} interned",
                slab_live,
                self.index.len()
            ));
        }
        if self.spill.len() > self.index.len() {
            return Err(format!(
                "spill index has {} entries for {} live nodes",
                self.spill.len(),
                self.index.len()
            ));
        }
        #[cfg(any(debug_assertions, test, feature = "full-validate"))]
        self.validate_full()?;
        Ok(())
    }

    /// O(n) recount: per-shard degree/dangling/edge-table recomputation
    /// from the slot tables.
    #[cfg(any(debug_assertions, test, feature = "full-validate"))]
    fn validate_full(&self) -> Result<(), String> {
        let n = self.shards.len();
        let mut xshard = vec![0u64; n * n];
        let mut dangling = vec![0u64; n];
        let mut hists: Vec<DegreeHistogram> = (0..n).map(|_| DegreeHistogram::new()).collect();
        for (id, r) in self.index.iter() {
            let (sh, sl) = (shard_of_ref(r), slot_of_ref(r));
            let slot = &self.shards[sh].slots[sl];
            if slot.id != id {
                return Err(format!("index maps {id} to ref {r:#x} holding {}", slot.id));
            }
            let mut outdeg = 0u32;
            for &(_, st) in &slot.out {
                match st.target {
                    Some(t) => {
                        xshard[sh * n + shard_of_ref(t)] += 1;
                        outdeg += 1;
                    }
                    None => dangling[sh] += 1,
                }
            }
            let indeg = u32::try_from(slot.inbound.len()).expect("indegree overflow");
            if slot.info.outdegree != outdeg || slot.info.indegree != indeg {
                return Err(format!(
                    "degrees of {id} are {:?}, recount gives in={indeg} out={outdeg}",
                    slot.info
                ));
            }
            hists[sh].add_node();
            hists[sh].change_degrees(0, indeg, 0, outdeg);
        }
        if xshard != self.xshard {
            return Err("cross-shard edge table mismatch".to_string());
        }
        for (i, shard) in self.shards.iter().enumerate() {
            if dangling[i] != shard.dangling {
                return Err(format!(
                    "shard {i} dangling count {} vs recount {}",
                    shard.dangling, dangling[i]
                ));
            }
            if !self.detached && hists[i] != shard.histogram {
                return Err(format!("shard {i} histogram mismatch"));
            }
        }
        Ok(())
    }

    #[inline]
    fn slot(&self, r: u32) -> &NodeSlot {
        &self.shards[shard_of_ref(r)].slots[slot_of_ref(r)]
    }

    /// Applies or buffers one degree op for `shard`.
    #[inline]
    fn hist(&mut self, shard: usize, op: DegreeOp) {
        if self.detached {
            self.pending[shard].push(op);
        } else {
            op.apply(&mut self.shards[shard].histogram);
        }
    }

    /// Resolves a raw address to the packed ref of the live object
    /// containing it (shadow map, then spill index).
    #[inline]
    fn resolve(&self, raw: u64) -> Option<u32> {
        if let Some(r) = self.shadow.lookup(raw) {
            let slot = self.slot(r);
            if slot.start <= raw && raw < slot.end {
                return Some(r);
            }
        }
        if self.spill.is_empty() {
            return None;
        }
        let idx = self.spill.partition_point(|x| x.start <= raw);
        let i = idx.checked_sub(1)?;
        let x = self.spill.get(i)?;
        (raw < x.end).then_some(x.slot)
    }

    /// Mutable access to out-slot `(src, off)`, by binary search.
    fn slot_state_mut(shards: &mut [Shard], src: u32, off: u64) -> Option<&mut SlotState> {
        let out = &mut shards[shard_of_ref(src)].slots[slot_of_ref(src)].out;
        let pos = out.binary_search_by_key(&off, |&(o, _)| o).ok()?;
        Some(&mut out[pos].1)
    }

    /// Adjusts a live node's degrees, keeping its shard's histogram (or
    /// pending ops) consistent.
    fn adjust(&mut self, r: u32, din: i32, dout: i32) {
        let sh = shard_of_ref(r);
        let info = &mut self.shards[sh].slots[slot_of_ref(r)].info;
        let (old_in, old_out) = (info.indegree, info.outdegree);
        info.indegree = info
            .indegree
            .checked_add_signed(din)
            .expect("indegree underflow");
        info.outdegree = info
            .outdegree
            .checked_add_signed(dout)
            .expect("outdegree underflow");
        let (new_in, new_out) = (info.indegree, info.outdegree);
        self.hist(
            sh,
            DegreeOp::Change {
                old_in,
                new_in,
                old_out,
                new_out,
            },
        );
    }

    /// Removes the slot `(src, offset)` if present, undoing its edge or
    /// dangling registration.
    fn drop_slot(&mut self, src: u32, offset: u64) {
        let src_sh = shard_of_ref(src);
        let out = &mut self.shards[src_sh].slots[slot_of_ref(src)].out;
        let Ok(pos) = out.binary_search_by_key(&offset, |&(o, _)| o) else {
            return;
        };
        let (_, st) = out.remove(pos);
        match st.target {
            Some(t) => {
                let n = self.shards.len();
                self.xshard[src_sh * n + shard_of_ref(t)] -= 1;
                let inb = &mut self.shards[shard_of_ref(t)].slots[slot_of_ref(t)].inbound;
                if let Some(p) = inb.iter().position(|&e| e == (src, offset)) {
                    inb.swap_remove(p);
                }
                if t == src {
                    self.adjust(src, -1, -1);
                } else {
                    self.adjust(src, 0, -1);
                    self.adjust(t, -1, 0);
                }
            }
            None => {
                self.shards[src_sh].dangling -= 1;
                self.remove_unresolved(st.raw, src, offset);
            }
        }
    }

    fn insert_unresolved(&mut self, raw: u64, src: u32, off: u64) {
        match self.unresolved.binary_search_by_key(&raw, |b| b.raw) {
            Ok(i) => self.unresolved[i].entries.push((src, off)),
            Err(i) => self.unresolved.insert(
                i,
                Bucket {
                    raw,
                    entries: vec![(src, off)],
                },
            ),
        }
    }

    fn remove_unresolved(&mut self, raw: u64, src: u32, off: u64) {
        if let Ok(i) = self.unresolved.binary_search_by_key(&raw, |b| b.raw) {
            let entries = &mut self.unresolved[i].entries;
            if let Some(p) = entries.iter().position(|&e| e == (src, off)) {
                entries.swap_remove(p);
            }
            if entries.is_empty() {
                self.unresolved.remove(i);
            }
        }
    }
}

/// One heap-graph image, single-slab or sharded, behind a uniform
/// surface.
///
/// The replay and monitoring layers hold a `GraphImage` so a `--shards`
/// flag can switch storage layouts without touching any observer: both
/// variants produce bit-identical snapshots, histograms, and metrics
/// for the same event stream. `metrics`/`snapshot` take `&mut self`
/// because the sharded variant reconciles its per-shard state at these
/// metric computation points; the single variant reads are unchanged.
#[derive(Debug, Clone)]
pub enum GraphImage {
    /// The classic single-slab [`HeapGraph`].
    Single(HeapGraph),
    /// The address-range-sharded variant.
    Sharded(ShardedGraph),
}

impl GraphImage {
    /// Creates an image with the given shard count: `1` (or `0`) gives
    /// the single-slab graph — the legacy path, byte-for-byte — and
    /// anything larger the sharded one.
    pub fn new(shards: usize) -> Self {
        if shards <= 1 {
            GraphImage::Single(HeapGraph::new())
        } else {
            GraphImage::Sharded(ShardedGraph::new(shards))
        }
    }

    /// Shard count (1 for the single-slab variant).
    pub fn shard_count(&self) -> usize {
        match self {
            GraphImage::Single(_) => 1,
            GraphImage::Sharded(s) => s.shard_count(),
        }
    }

    /// Applies one instrumentation event.
    pub fn apply(&mut self, event: &HeapEvent) {
        match self {
            GraphImage::Single(g) => g.apply(event),
            GraphImage::Sharded(s) => s.apply(event),
        }
    }

    /// Applies a recorded event slice.
    pub fn apply_batch(&mut self, events: &[HeapEvent]) {
        match self {
            GraphImage::Single(g) => g.apply_batch(events),
            GraphImage::Sharded(s) => s.apply_batch(events),
        }
    }

    /// Adds a vertex (see [`HeapGraph::on_alloc`]).
    pub fn on_alloc(&mut self, id: ObjectId, addr: Addr, size: usize) {
        match self {
            GraphImage::Single(g) => g.on_alloc(id, addr, size),
            GraphImage::Sharded(s) => s.on_alloc(id, addr, size),
        }
    }

    /// Removes a vertex (see [`HeapGraph::on_free`]).
    pub fn on_free(&mut self, id: ObjectId) {
        match self {
            GraphImage::Single(g) => g.on_free(id),
            GraphImage::Sharded(s) => s.on_free(id),
        }
    }

    /// Records a pointer store (see [`HeapGraph::on_ptr_write`]).
    pub fn on_ptr_write(&mut self, src: ObjectId, offset: u64, value: Addr) {
        match self {
            GraphImage::Single(g) => g.on_ptr_write(src, offset, value),
            GraphImage::Sharded(s) => s.on_ptr_write(src, offset, value),
        }
    }

    /// Records a non-pointer store (see [`HeapGraph::on_scalar_write`]).
    pub fn on_scalar_write(&mut self, src: ObjectId, offset: u64) {
        match self {
            GraphImage::Single(g) => g.on_scalar_write(src, offset),
            GraphImage::Sharded(s) => s.on_scalar_write(src, offset),
        }
    }

    /// Live vertexes.
    pub fn node_count(&self) -> u64 {
        match self {
            GraphImage::Single(g) => g.node_count(),
            GraphImage::Sharded(s) => s.node_count(),
        }
    }

    /// Resolved edges.
    pub fn edge_count(&self) -> u64 {
        match self {
            GraphImage::Single(g) => g.edge_count(),
            GraphImage::Sharded(s) => s.edge_count(),
        }
    }

    /// Dangling pointer slots.
    pub fn dangling_count(&self) -> u64 {
        match self {
            GraphImage::Single(g) => g.dangling_count(),
            GraphImage::Sharded(s) => s.dangling_count(),
        }
    }

    /// The seven paper metrics.
    pub fn metrics(&self) -> MetricVector {
        match self {
            GraphImage::Single(g) => g.metrics(),
            GraphImage::Sharded(s) => s.metrics(),
        }
    }

    /// The extension metrics.
    pub fn extended_metrics(&self) -> ExtendedMetrics {
        match self {
            GraphImage::Single(g) => g.extended_metrics(),
            GraphImage::Sharded(s) => s.extended_metrics(),
        }
    }

    /// The full candidate metric family (paper seven plus extensions).
    pub fn candidates(&self) -> CandidateVector {
        match self {
            GraphImage::Single(g) => g.candidates(),
            GraphImage::Sharded(s) => s.candidates(),
        }
    }

    /// A serializable summary of the current instant.
    pub fn snapshot(&self) -> GraphSnapshot {
        match self {
            GraphImage::Single(g) => g.snapshot(),
            GraphImage::Sharded(s) => s.snapshot(),
        }
    }

    /// Refreshes the sharded variant's cached reconciled histogram (a
    /// no-op for the single-slab variant, whose histogram is always
    /// live). Call at metric computation points before handing the
    /// image to observers that read [`histogram`](Self::histogram).
    pub fn reconcile(&mut self) {
        if let GraphImage::Sharded(s) = self {
            s.reconcile();
        }
    }

    /// Returns the image to its empty state while retaining the
    /// variant's dominant allocations (see [`HeapGraph::reset`] /
    /// [`ShardedGraph::reset`]).
    pub fn reset(&mut self) {
        match self {
            GraphImage::Single(g) => g.reset(),
            GraphImage::Sharded(s) => s.reset(),
        }
    }

    /// Degree information for a live vertex.
    pub fn node(&self, id: ObjectId) -> Option<NodeInfo> {
        match self {
            GraphImage::Single(g) => g.node(id),
            GraphImage::Sharded(s) => s.node(id),
        }
    }

    /// Returns `true` if `id` is a live vertex.
    pub fn contains(&self, id: ObjectId) -> bool {
        match self {
            GraphImage::Single(g) => g.contains(id),
            GraphImage::Sharded(s) => s.contains(id),
        }
    }

    /// The degree histogram: live for the single variant, as of the
    /// last reconcile for the sharded one. Observers read this at
    /// metric computation points, which reconcile first.
    pub fn histogram(&self) -> &DegreeHistogram {
        match self {
            GraphImage::Single(g) => g.histogram(),
            GraphImage::Sharded(s) => s.histogram(),
        }
    }

    /// Checks internal bookkeeping for consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            GraphImage::Single(g) => g.validate(),
            GraphImage::Sharded(s) => s.validate(),
        }
    }

    /// The single-slab graph, if that's the active variant.
    pub fn as_single(&self) -> Option<&HeapGraph> {
        match self {
            GraphImage::Single(g) => Some(g),
            GraphImage::Sharded(_) => None,
        }
    }

    /// The sharded graph, if that's the active variant.
    pub fn as_sharded(&self) -> Option<&ShardedGraph> {
        match self {
            GraphImage::Single(_) => None,
            GraphImage::Sharded(s) => Some(s),
        }
    }
}

impl Default for GraphImage {
    fn default() -> Self {
        GraphImage::Single(HeapGraph::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::{AllocSite, SimHeap};

    /// A heap driving a single and a sharded graph in lockstep.
    struct Rig {
        heap: SimHeap,
        single: HeapGraph,
        sharded: ShardedGraph,
    }

    impl Rig {
        fn new(shards: usize) -> Self {
            Rig {
                heap: SimHeap::new(),
                single: HeapGraph::new(),
                sharded: ShardedGraph::new(shards),
            }
        }

        fn alloc(&mut self, size: usize) -> Addr {
            let eff = self.heap.alloc(size, AllocSite(0)).unwrap();
            self.single.on_alloc(eff.id, eff.addr, eff.size);
            self.sharded.on_alloc(eff.id, eff.addr, eff.size);
            eff.addr
        }

        fn free(&mut self, addr: Addr) {
            let eff = self.heap.free(addr).unwrap();
            self.single.on_free(eff.id);
            self.sharded.on_free(eff.id);
        }

        fn link(&mut self, slot: Addr, target: Addr) {
            let w = self.heap.write_ptr(slot, target).unwrap();
            self.single.on_ptr_write(w.src, w.offset, target);
            self.sharded.on_ptr_write(w.src, w.offset, target);
        }

        fn check(&mut self) {
            self.single.validate().unwrap();
            self.sharded.validate().unwrap();
            assert_eq!(self.sharded.snapshot(), self.single.snapshot());
            self.sharded.reconcile();
            assert_eq!(self.sharded.histogram(), self.single.histogram());
            assert_eq!(self.sharded.metrics(), self.single.metrics());
        }
    }

    #[test]
    fn lockstep_chain_build_and_teardown() {
        for shards in [1, 2, 3, 8] {
            let mut rig = Rig::new(shards);
            let mut nodes = Vec::new();
            let mut prev: Option<Addr> = None;
            for i in 0..200 {
                let a = rig.alloc(16 + (i % 5) * 8);
                if let Some(p) = prev {
                    rig.link(a, p);
                }
                prev = Some(a);
                nodes.push(a);
                if i % 7 == 6 {
                    let victim = nodes.remove(i % nodes.len());
                    if Some(victim) != prev {
                        rig.free(victim);
                    }
                    rig.check();
                }
            }
            rig.check();
            // Dangling + re-bind churn: free half, then reallocate.
            let survivors: Vec<Addr> = nodes.drain(..nodes.len() / 2).collect();
            for a in survivors {
                if Some(a) != prev {
                    rig.free(a);
                }
            }
            rig.check();
            for _ in 0..40 {
                let a = rig.alloc(24);
                nodes.push(a);
            }
            rig.check();
        }
    }

    #[test]
    fn cross_shard_edges_are_counted() {
        let mut rig = Rig::new(4);
        let mut addrs = Vec::new();
        for _ in 0..64 {
            addrs.push(rig.alloc(4096)); // spread across regions
        }
        for pair in addrs.windows(2) {
            rig.link(pair[0], pair[1]);
        }
        rig.check();
        assert_eq!(rig.sharded.edge_count(), 63);
        assert!(
            rig.sharded.cross_shard_edges() > 0,
            "4096-byte objects must land in multiple regions/shards"
        );
    }

    #[test]
    fn detached_ops_replayed_match_inline_histograms() {
        let settings_events = {
            let mut heap = SimHeap::new();
            let mut evs = Vec::new();
            let mut addrs: Vec<Addr> = Vec::new();
            for i in 0..120usize {
                let eff = heap.alloc(16 + (i % 3) * 8, AllocSite(0)).unwrap();
                evs.push(HeapEvent::Alloc {
                    obj: eff.id,
                    addr: eff.addr,
                    size: eff.size,
                    site: AllocSite(0),
                });
                if let Some(&p) = addrs.last() {
                    let w = heap.write_ptr(eff.addr, p).unwrap();
                    evs.push(HeapEvent::PtrWrite {
                        src: w.src,
                        offset: w.offset,
                        value: p,
                        old_value: None,
                    });
                }
                addrs.push(eff.addr);
                if i % 5 == 4 {
                    let victim = addrs.remove(i % (addrs.len() - 1));
                    let eff = heap.free(victim).unwrap();
                    evs.push(HeapEvent::Free {
                        obj: eff.id,
                        addr: eff.addr,
                        size: eff.size,
                    });
                }
            }
            evs
        };

        let mut inline = ShardedGraph::new(4);
        let mut detached = ShardedGraph::new_detached(4);
        let mut worker_hists: Vec<DegreeHistogram> =
            (0..4).map(|_| DegreeHistogram::new()).collect();
        for ev in &settings_events {
            inline.apply(ev);
            detached.apply(ev);
        }
        for (sh, ops) in detached.take_pending_ops().into_iter().enumerate() {
            for op in ops {
                op.apply(&mut worker_hists[sh]);
            }
        }
        let mut merged = DegreeHistogram::new();
        for h in &worker_hists {
            merged.merge(h);
        }
        detached.install_merged_histogram(merged);
        inline.reconcile();
        assert_eq!(detached.histogram(), inline.histogram());
        assert_eq!(detached.metrics(), inline.metrics());
        assert_eq!(detached.node_count(), inline.node_count());
        assert_eq!(detached.edge_count(), inline.edge_count());
        assert_eq!(detached.dangling_count(), inline.dangling_count());
    }

    #[test]
    fn graph_image_variants_agree() {
        let mut heap = SimHeap::new();
        let mut images = [GraphImage::new(1), GraphImage::new(3)];
        let mut prev: Option<Addr> = None;
        for _ in 0..100 {
            let eff = heap.alloc(32, AllocSite(0)).unwrap();
            for img in &mut images {
                img.apply(&HeapEvent::Alloc {
                    obj: eff.id,
                    addr: eff.addr,
                    size: eff.size,
                    site: AllocSite(0),
                });
            }
            if let Some(p) = prev {
                let w = heap.write_ptr(eff.addr, p).unwrap();
                for img in &mut images {
                    img.apply(&HeapEvent::PtrWrite {
                        src: w.src,
                        offset: w.offset,
                        value: p,
                        old_value: None,
                    });
                }
            }
            prev = Some(eff.addr);
        }
        let [a, mut b] = images;
        assert_eq!(a.shard_count(), 1);
        assert_eq!(b.shard_count(), 3);
        assert_eq!(a.snapshot(), b.snapshot());
        b.reconcile();
        assert_eq!(a.histogram(), b.histogram());
        a.validate().unwrap();
        b.validate().unwrap();
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedGraph::new(0).shard_count(), 1);
        assert_eq!(ShardedGraph::new(1000).shard_count(), MAX_SHARDS);
    }
}
