//! Per-vertex degree bookkeeping.

use serde::{Deserialize, Serialize};

/// Degree information for one heap-graph vertex.
///
/// Degrees count *resolved* edges only: a slot holding a dangling or
/// non-heap address contributes to neither endpoint (its target vertex
/// does not exist). Parallel edges count with multiplicity — two fields
/// of `u` pointing into `v` give `v` indegree 2 from `u` — matching a
/// literal reading of "an edge is drawn from vertex u to vertex v if the
/// object corresponding to u points to the object corresponding to v"
/// applied per pointer slot. Self-edges count toward both degrees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Number of resolved pointer slots in other live objects (or this
    /// one) that point into this object.
    pub indegree: u32,
    /// Number of this object's pointer slots that resolve to live
    /// objects.
    pub outdegree: u32,
}

impl NodeInfo {
    /// A fresh vertex with no edges.
    pub fn new() -> Self {
        NodeInfo::default()
    }

    /// Returns `true` when the vertex is a *root* in the paper's sense:
    /// indegree 0 (referenced only from stack/globals, or leaked).
    pub fn is_root(&self) -> bool {
        self.indegree == 0
    }

    /// Returns `true` when the vertex is a *leaf*: outdegree 0.
    pub fn is_leaf(&self) -> bool {
        self.outdegree == 0
    }

    /// Returns `true` when indegree equals outdegree (the paper's
    /// seventh metric).
    pub fn is_balanced(&self) -> bool {
        self.indegree == self.outdegree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_root_leaf_and_balanced() {
        let n = NodeInfo::new();
        assert!(n.is_root());
        assert!(n.is_leaf());
        assert!(n.is_balanced());
    }

    #[test]
    fn classification_follows_degrees() {
        let n = NodeInfo {
            indegree: 2,
            outdegree: 1,
        };
        assert!(!n.is_root());
        assert!(!n.is_leaf());
        assert!(!n.is_balanced());
        let b = NodeInfo {
            indegree: 3,
            outdegree: 3,
        };
        assert!(b.is_balanced());
    }
}
