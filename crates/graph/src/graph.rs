//! The incremental heap-graph (dense-slab hot path).
//!
//! Object ids are interned into dense `u32` slot indexes the moment a
//! vertex is allocated; every per-vertex structure (degrees, start
//! address, out-slots, inbound adjacency) then lives in one flat
//! [`Vec`] of [`NodeSlot`]s indexed by slot, with freed slots recycled
//! through a free list (their `Vec` capacity is retained, so a steady
//! alloc/free workload stops allocating entirely).
//!
//! Two structures keep the per-event cost flat regardless of live-set
//! size:
//!
//! * **Pointer resolution** uses a [`ShadowMap`] — a radix page table
//!   with one slot value per 8-byte address granule — so resolving an
//!   interior pointer is three dependent loads, and alloc/free mark or
//!   clear O(size/8) granules. The sorted-vector index this replaced
//!   paid an O(live) memmove every time the allocator recycled an
//!   address into the middle of the span, which dominated ingest on
//!   churn-heavy traces. Objects the shadow map refuses (unaligned
//!   starts, overlaps, addresses ≥ 2^40) fall back to a small sorted
//!   spill vector, preserving exact semantics for irregular streams.
//! * **Id interning** uses a dense `Vec` indexed by the raw object id
//!   (ids are handed out monotonically) with an FxHash spill map for
//!   ids beyond [`DENSE_ID_CAP`], replacing a hash lookup per event
//!   with an array index on the common path.

use crate::candidates::CandidateVector;
use crate::histogram::DegreeHistogram;
use crate::metrics::{ExtendedMetrics, MetricVector};
use crate::node::NodeInfo;
use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use sim_heap::{Addr, HeapEvent, ObjectId, ShadowMap, SHADOW_EMPTY};

/// Ids below this index into the dense intern vector; ids at or above
/// it (only reachable after ~4M allocations) go to the spill hash map.
/// The dense vector tops out at 16 MiB and only materializes as far as
/// the largest id actually seen.
const DENSE_ID_CAP: u64 = 1 << 22;

/// Intern map: object id → dense slot.
///
/// Ids are unbounded monotonic `u64`s. The dense vector holds `slot`
/// (or [`SHADOW_EMPTY`] for dead/unseen ids) for the first
/// [`DENSE_ID_CAP`] ids — one predictable array access instead of a
/// hash probe on the hot path — and an FxHash map catches the long
/// tail.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdIndex {
    dense: Vec<u32>,
    spill: FxHashMap<u64, u32>,
    live: usize,
}

impl IdIndex {
    #[inline]
    pub(crate) fn get(&self, id: ObjectId) -> Option<u32> {
        if id.0 < DENSE_ID_CAP {
            match self.dense.get(id.0 as usize) {
                Some(&s) if s != SHADOW_EMPTY => Some(s),
                _ => None,
            }
        } else {
            self.spill.get(&id.0).copied()
        }
    }

    /// Inserts a mapping, returning the previous slot if `id` was live.
    pub(crate) fn insert(&mut self, id: ObjectId, slot: u32) -> Option<u32> {
        debug_assert_ne!(slot, SHADOW_EMPTY, "slot index clashes with sentinel");
        let prev = if id.0 < DENSE_ID_CAP {
            let i = id.0 as usize;
            if i >= self.dense.len() {
                self.dense.resize(i + 1, SHADOW_EMPTY);
            }
            std::mem::replace(&mut self.dense[i], slot)
        } else {
            self.spill.insert(id.0, slot).unwrap_or(SHADOW_EMPTY)
        };
        if prev == SHADOW_EMPTY {
            self.live += 1;
            None
        } else {
            Some(prev)
        }
    }

    pub(crate) fn remove(&mut self, id: ObjectId) -> Option<u32> {
        let prev = if id.0 < DENSE_ID_CAP {
            match self.dense.get_mut(id.0 as usize) {
                Some(s) => std::mem::replace(s, SHADOW_EMPTY),
                None => SHADOW_EMPTY,
            }
        } else {
            self.spill.remove(&id.0).unwrap_or(SHADOW_EMPTY)
        };
        if prev == SHADOW_EMPTY {
            None
        } else {
            self.live -= 1;
            Some(prev)
        }
    }

    #[inline]
    /// Forgets every mapping while retaining the dense vector's
    /// allocation (refilled with the sentinel) and the spill map's
    /// buckets.
    pub(crate) fn clear(&mut self) {
        self.dense.fill(SHADOW_EMPTY);
        self.spill.clear();
        self.live = 0;
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Live `(id, slot)` pairs, in no particular order. O(ids ever seen):
    /// fine for snapshots, validation, and forensics, not for hot paths.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (ObjectId, u32)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != SHADOW_EMPTY)
            .map(|(i, &s)| (ObjectId(i as u64), s))
            .chain(self.spill.iter().map(|(&i, &s)| (ObjectId(i), s)))
    }
}

/// One pointer slot's state as the graph sees it.
///
/// `target` holds the *dense slot index* of the live object the raw
/// address currently resolves to — never a stale index: every structure
/// referencing a slot is unlinked before the slot enters the free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotState {
    /// Raw stored address.
    pub(crate) raw: u64,
    /// Dense slot of the live object it currently resolves to, if any.
    pub(crate) target: Option<u32>,
}

/// Per-vertex storage, indexed by dense slot.
#[derive(Debug, Clone)]
pub(crate) struct NodeSlot {
    /// The object id this slot currently represents (stale once freed).
    pub(crate) id: ObjectId,
    /// Cached degrees.
    pub(crate) info: NodeInfo,
    /// Start address, for shadow clearing on free and resolution
    /// bounds checks.
    pub(crate) start: u64,
    /// One past the last address of the object.
    pub(crate) end: u64,
    /// `true` when the shadow map refused this object and it lives in
    /// the sorted spill index instead.
    pub(crate) spilled: bool,
    /// Outgoing pointer slots, sorted by offset.
    pub(crate) out: Vec<(u64, SlotState)>,
    /// Reverse edges: `(source slot, offset)`, unordered. Degrees are
    /// small at object granularity (paper §2.2), so removal is a linear
    /// scan + `swap_remove`.
    pub(crate) inbound: Vec<(u32, u64)>,
}

/// One live allocation in the sorted spill index (shadow-map refusals
/// only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Range {
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) slot: u32,
}

/// Dangling slots sharing one raw address, in the sorted unresolved
/// index.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bucket {
    pub(crate) raw: u64,
    pub(crate) entries: Vec<(u32, u64)>,
}

/// A serializable summary of the graph at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphSnapshot {
    /// Live vertexes.
    pub nodes: u64,
    /// Resolved edges.
    pub edges: u64,
    /// Dangling (unresolved) pointer slots.
    pub dangling: u64,
    /// The seven paper metrics.
    pub metrics: MetricVector,
}

/// The object-granularity heap-graph, updated incrementally from the
/// instrumentation event stream.
///
/// See the [crate docs](crate) for the model. The three mutating entry
/// points mirror the events the paper's instrumentation exposes:
/// [`on_alloc`](Self::on_alloc), [`on_free`](Self::on_free), and
/// [`on_ptr_write`](Self::on_ptr_write) /
/// [`on_scalar_write`](Self::on_scalar_write); or feed raw events
/// through [`apply`](Self::apply) or, for recorded streams,
/// [`apply_batch`](Self::apply_batch).
///
/// # Invariants (checked by [`validate`](Self::validate))
///
/// * a slot is an edge iff its raw address lies inside a live object;
/// * per-node degrees equal the counts implied by the slot table;
/// * the degree histogram equals a from-scratch recount;
/// * the intern map, slab, free list, and sorted indexes are mutually
///   consistent.
#[derive(Debug, Clone, Default)]
pub struct HeapGraph {
    /// Intern map: object id → dense slot (dense vec + spill hash).
    index: IdIndex,
    /// The slab. Slots on `free` are dead but keep their capacity.
    slots: Vec<NodeSlot>,
    free: Vec<u32>,
    /// O(1) pointer resolution: address granule → dense slot.
    shadow: ShadowMap,
    /// Objects the shadow map refused (unaligned / overlapping /
    /// out-of-range starts), sorted by start address. Almost always
    /// empty; checked only after a shadow miss.
    spill: Vec<Range>,
    /// Dangling slots sorted by raw address, so allocations can re-bind
    /// them with one binary search + drain.
    unresolved: Vec<Bucket>,
    histogram: DegreeHistogram,
    edge_count: u64,
    dangling: u64,
}

impl HeapGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        HeapGraph::default()
    }

    /// Returns the graph to its empty state while retaining the
    /// dominant allocations — the slot slab, free list, id index, and
    /// materialized shadow pages — so pooled consumers (the serve
    /// daemon's shard loops) can recycle one warmed graph across many
    /// tenant streams.
    pub fn reset(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.shadow.clear();
        self.spill.clear();
        self.unresolved.clear();
        self.histogram = DegreeHistogram::new();
        self.edge_count = 0;
        self.dangling = 0;
    }

    /// Live vertexes.
    pub fn node_count(&self) -> u64 {
        self.histogram.nodes()
    }

    /// Resolved heap-to-heap edges (with multiplicity).
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Pointer slots currently dangling (stored address resolves to no
    /// live object).
    pub fn dangling_count(&self) -> u64 {
        self.dangling
    }

    /// Degree information for a live vertex.
    pub fn node(&self, id: ObjectId) -> Option<NodeInfo> {
        self.index.get(id).map(|s| self.slots[s as usize].info)
    }

    /// Returns `true` if `id` is a live vertex.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.index.get(id).is_some()
    }

    /// The degree histogram (O(1) reads for every paper metric).
    pub fn histogram(&self) -> &DegreeHistogram {
        &self.histogram
    }

    /// Computes the seven paper metrics for the current graph.
    pub fn metrics(&self) -> MetricVector {
        let _t = heapmd_obs::timer!("heap_graph_metrics_ns");
        MetricVector::from_histogram(&self.histogram)
    }

    /// Computes the full candidate metric family for the current graph
    /// (the seven paper metrics plus the distribution-shape and
    /// structural extensions).
    pub fn candidates(&self) -> CandidateVector {
        CandidateVector::compute(&self.histogram, &self.extended_metrics())
    }

    /// Computes the extension metrics for the current graph.
    pub fn extended_metrics(&self) -> ExtendedMetrics {
        let _t = heapmd_obs::timer!("heap_graph_metrics_ns");
        let nodes = self.node_count();
        ExtendedMetrics {
            nodes,
            edges: self.edge_count,
            dangling_slots: self.dangling,
            mean_degree: if nodes == 0 {
                0.0
            } else {
                self.edge_count as f64 / nodes as f64
            },
        }
    }

    /// A serializable summary of the current instant.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            nodes: self.node_count(),
            edges: self.edge_count,
            dangling: self.dangling,
            metrics: self.metrics(),
        }
    }

    /// Applies one instrumentation event.
    ///
    /// Reads and function entries/exits do not change the graph.
    pub fn apply(&mut self, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc {
                obj, addr, size, ..
            } => self.on_alloc(obj, addr, size),
            HeapEvent::Free { obj, .. } => self.on_free(obj),
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => self.on_ptr_write(src, offset, value),
            HeapEvent::ScalarWrite { src, offset, .. } => self.on_scalar_write(src, offset),
            HeapEvent::Read { .. } | HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    /// Applies a recorded event slice in one call, amortizing dispatch
    /// and reporting batch throughput through `heapmd-obs`
    /// (`heap_graph_apply` stage: events/sec, ns/event).
    ///
    /// Equivalent to calling [`apply`](Self::apply) per event.
    pub fn apply_batch(&mut self, events: &[HeapEvent]) {
        if events.is_empty() {
            return;
        }
        let clock = heapmd_obs::throughput::stage_clock();
        for event in events {
            self.apply(event);
        }
        if let Some(t0) = clock {
            heapmd_obs::throughput::record_stage(
                "heap_graph_apply",
                events.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Adds a vertex for a fresh allocation and re-binds any dangling
    /// slots whose address falls inside it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already live (the event stream is corrupt).
    pub fn on_alloc(&mut self, id: ObjectId, addr: Addr, size: usize) {
        let start = addr.get();
        let end = start + size as u64;
        let slot = match self.free.pop() {
            Some(s) => {
                let ns = &mut self.slots[s as usize];
                debug_assert!(ns.out.is_empty() && ns.inbound.is_empty());
                ns.id = id;
                ns.info = NodeInfo::new();
                ns.start = start;
                ns.end = end;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slab overflow");
                assert_ne!(s, u32::MAX, "slab overflow");
                self.slots.push(NodeSlot {
                    id,
                    info: NodeInfo::new(),
                    start,
                    end,
                    spilled: false,
                    out: Vec::new(),
                    inbound: Vec::new(),
                });
                s
            }
        };
        let prev = self.index.insert(id, slot);
        assert!(prev.is_none(), "duplicate allocation of {id}");
        let spilled = !self.shadow.insert(start, end, slot);
        self.slots[slot as usize].spilled = spilled;
        if spilled {
            let pos = self.spill.partition_point(|r| r.start < start);
            self.spill.insert(pos, Range { start, end, slot });
        }
        self.histogram.add_node();

        // Re-bind dangling slots now covered by this object.
        let lo = self.unresolved.partition_point(|b| b.raw < start);
        let hi = self.unresolved.partition_point(|b| b.raw < end);
        if lo < hi {
            let buckets: Vec<Bucket> = self.unresolved.drain(lo..hi).collect();
            for bucket in buckets {
                for (src, off) in bucket.entries {
                    let st = Self::slot_mut(&mut self.slots, src, off)
                        .expect("unresolved slot must exist in slot table");
                    debug_assert_eq!(st.target, None);
                    st.target = Some(slot);
                    self.dangling -= 1;
                    self.edge_count += 1;
                    self.slots[slot as usize].inbound.push((src, off));
                    if src == slot {
                        self.adjust(slot, 1, 1);
                    } else {
                        self.adjust(src, 0, 1);
                        self.adjust(slot, 1, 0);
                    }
                }
            }
        }
    }

    /// Removes a vertex: its out-slots vanish, and every in-edge's source
    /// slot becomes dangling (retaining its raw address for later
    /// re-binding).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn on_free(&mut self, id: ObjectId) {
        let slot = self
            .index
            .remove(id)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        let s = slot as usize;
        let info = self.slots[s].info;
        self.histogram.remove_node(info.indegree, info.outdegree);
        let (start, end) = (self.slots[s].start, self.slots[s].end);
        if self.slots[s].spilled {
            let pos = self.spill.partition_point(|r| r.start < start);
            debug_assert_eq!(self.spill[pos].slot, slot);
            self.spill.remove(pos);
        } else {
            self.shadow.remove(start, end);
        }

        // Outgoing slots disappear with the object. Take the vec so the
        // borrow checker allows touching other slots, then hand its
        // capacity back to the dead slot for reuse.
        let mut out = std::mem::take(&mut self.slots[s].out);
        for &(off, st) in &out {
            match st.target {
                Some(t) => {
                    self.edge_count -= 1;
                    if t != slot {
                        let inb = &mut self.slots[t as usize].inbound;
                        if let Some(p) = inb.iter().position(|&e| e == (slot, off)) {
                            inb.swap_remove(p);
                        }
                        self.adjust(t, -1, 0);
                    }
                    // Self-edge: both endpoints die with the node.
                }
                None => {
                    self.remove_unresolved(st.raw, slot, off);
                    self.dangling -= 1;
                }
            }
        }
        out.clear();
        self.slots[s].out = out;

        // Incoming edges become dangling slots of their sources.
        let mut inbound = std::mem::take(&mut self.slots[s].inbound);
        for &(src, off) in &inbound {
            if src == slot {
                continue; // handled with the out-slots above
            }
            let st =
                Self::slot_mut(&mut self.slots, src, off).expect("inbound edge has a source slot");
            debug_assert_eq!(st.target, Some(slot));
            st.target = None;
            let raw = st.raw;
            self.edge_count -= 1;
            self.dangling += 1;
            self.insert_unresolved(raw, src, off);
            self.adjust(src, 0, -1);
        }
        inbound.clear();
        self.slots[s].inbound = inbound;
        self.free.push(slot);
    }

    /// Records a pointer store: slot `(src, offset)` now holds `value`.
    ///
    /// A null `value` clears the slot. A non-null value that resolves to
    /// a live object creates an edge; otherwise the slot is tracked as
    /// dangling.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a live vertex.
    pub fn on_ptr_write(&mut self, src: ObjectId, offset: u64, value: Addr) {
        let _t = heapmd_obs::timer!("heap_graph_edge_resolve_ns");
        let src_slot = match self.index.get(src) {
            Some(s) => s,
            None => panic!("write into unknown {src}"),
        };
        self.drop_slot(src_slot, offset);
        if value.is_null() {
            return;
        }
        let raw = value.get();
        let target = self.resolve(raw);
        let out = &mut self.slots[src_slot as usize].out;
        let pos = out.partition_point(|&(o, _)| o < offset);
        out.insert(pos, (offset, SlotState { raw, target }));
        match target {
            Some(t) => {
                self.edge_count += 1;
                self.slots[t as usize].inbound.push((src_slot, offset));
                if t == src_slot {
                    self.adjust(src_slot, 1, 1);
                } else {
                    self.adjust(src_slot, 0, 1);
                    self.adjust(t, 1, 0);
                }
            }
            None => {
                self.dangling += 1;
                self.insert_unresolved(raw, src_slot, offset);
            }
        }
    }

    /// Records a non-pointer store, clearing any pointer in the slot.
    pub fn on_scalar_write(&mut self, src: ObjectId, offset: u64) {
        if let Some(s) = self.index.get(src) {
            self.drop_slot(s, offset);
        }
    }

    /// Iterates over resolved edges as `(source, offset, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (ObjectId, u64, ObjectId)> + '_ {
        self.index.iter().flat_map(move |(src, s)| {
            self.slots[s as usize]
                .out
                .iter()
                .filter_map(move |&(off, st)| {
                    st.target.map(|t| (src, off, self.slots[t as usize].id))
                })
        })
    }

    /// Iterates over live vertex ids.
    pub fn node_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.index.iter().map(|(id, _)| id)
    }

    /// Checks the incremental bookkeeping for consistency.
    ///
    /// In debug builds, under test, or with the `full-validate` feature,
    /// this recomputes all degree state from the slot table and checks
    /// the slab/index/sorted-vec invariants — O(nodes + slots). Release
    /// builds without the feature only run O(1) structural checks, so
    /// the hot path never pays for the recount accidentally.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.index.len() as u64 != self.histogram.nodes() {
            return Err(format!(
                "intern map has {} entries but histogram counts {} nodes",
                self.index.len(),
                self.histogram.nodes()
            ));
        }
        if self.index.len() + self.free.len() != self.slots.len() {
            return Err(format!(
                "slab accounting broken: {} live + {} free != {} slots",
                self.index.len(),
                self.free.len(),
                self.slots.len()
            ));
        }
        if self.spill.len() > self.index.len() {
            return Err(format!(
                "spill index has {} entries for {} live nodes",
                self.spill.len(),
                self.index.len()
            ));
        }
        #[cfg(any(debug_assertions, test, feature = "full-validate"))]
        self.validate_full()?;
        Ok(())
    }

    /// The O(n) recount behind [`validate`](Self::validate).
    #[cfg(any(debug_assertions, test, feature = "full-validate"))]
    fn validate_full(&self) -> Result<(), String> {
        let n = self.slots.len();
        let mut live = vec![false; n];
        for (id, s) in self.index.iter() {
            let slot = &self.slots[s as usize];
            if slot.id != id {
                return Err(format!("index maps {id} to slot {s} holding {}", slot.id));
            }
            live[s as usize] = true;
        }
        for &f in &self.free {
            if live[f as usize] {
                return Err(format!("slot {f} is both live and on the free list"));
            }
        }
        if self.spill.windows(2).any(|w| w[0].start >= w[1].start) {
            return Err("spill index out of order".to_string());
        }
        if self.unresolved.windows(2).any(|w| w[0].raw >= w[1].raw) {
            return Err("unresolved index out of order".to_string());
        }
        // Every live node must resolve through exactly the structure its
        // `spilled` flag names.
        for (id, s) in self.index.iter() {
            let slot = &self.slots[s as usize];
            if slot.spilled {
                if !self.spill.iter().any(|r| r.slot == s) {
                    return Err(format!("{id} marked spilled but missing from spill index"));
                }
            } else if slot.start < slot.end && self.shadow.lookup(slot.start) != Some(s) {
                return Err(format!("{id} not resolvable through the shadow map"));
            }
        }

        let mut indeg = vec![0u32; n];
        let mut outdeg = vec![0u32; n];
        let mut inbound_seen = vec![0u32; n];
        let mut edges = 0u64;
        let mut dangling = 0u64;
        for s in 0..n {
            if !live[s] {
                let slot = &self.slots[s];
                if !slot.out.is_empty() || !slot.inbound.is_empty() {
                    return Err(format!("dead slot {s} still has adjacency"));
                }
                continue;
            }
            let slot = &self.slots[s];
            if slot.out.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(format!("slot {s} out-slots unsorted"));
            }
            for &(off, st) in &slot.out {
                let resolved = self.resolve(st.raw);
                if resolved != st.target {
                    return Err(format!(
                        "slot ({},{off}) cached target {:?} but resolves to {:?}",
                        slot.id, st.target, resolved
                    ));
                }
                match st.target {
                    Some(t) => {
                        edges += 1;
                        outdeg[s] += 1;
                        indeg[t as usize] += 1;
                        let tgt = &self.slots[t as usize];
                        if !tgt.inbound.contains(&(s as u32, off)) {
                            return Err(format!(
                                "edge ({},{off})→{} missing from inbound adjacency",
                                slot.id, tgt.id
                            ));
                        }
                        inbound_seen[t as usize] += 1;
                    }
                    None => {
                        dangling += 1;
                        let bucket = self
                            .unresolved
                            .binary_search_by_key(&st.raw, |b| b.raw)
                            .ok()
                            .map(|i| &self.unresolved[i]);
                        if !bucket.is_some_and(|b| b.entries.contains(&(s as u32, off))) {
                            return Err(format!(
                                "dangling slot ({},{off}) missing from unresolved index",
                                slot.id
                            ));
                        }
                    }
                }
            }
        }
        for s in 0..n {
            if live[s] && self.slots[s].inbound.len() as u32 != inbound_seen[s] {
                return Err(format!(
                    "slot {s} has {} inbound entries but {} matching edges",
                    self.slots[s].inbound.len(),
                    inbound_seen[s]
                ));
            }
        }
        if edges != self.edge_count {
            return Err(format!("edge count {} != {}", self.edge_count, edges));
        }
        if dangling != self.dangling {
            return Err(format!("dangling count {} != {}", self.dangling, dangling));
        }
        let mut scratch = DegreeHistogram::new();
        for (s, &is_live) in live.iter().enumerate() {
            if !is_live {
                continue;
            }
            let info = self.slots[s].info;
            if info.indegree != indeg[s] || info.outdegree != outdeg[s] {
                return Err(format!(
                    "{} degrees ({},{}) != recomputed ({},{})",
                    self.slots[s].id, info.indegree, info.outdegree, indeg[s], outdeg[s]
                ));
            }
            scratch.add_node();
            scratch.change_degrees(0, indeg[s], 0, outdeg[s]);
        }
        if scratch != self.histogram {
            return Err("histogram mismatch".to_string());
        }
        Ok(())
    }

    /// Resolves a raw address to the dense slot of the live object
    /// containing it: one shadow-map lookup (bounds-verified, since the
    /// tail granule is claimed conservatively), then the spill index
    /// for objects the shadow map refused.
    #[inline]
    fn resolve(&self, raw: u64) -> Option<u32> {
        if let Some(s) = self.shadow.lookup(raw) {
            let slot = &self.slots[s as usize];
            if slot.start <= raw && raw < slot.end {
                return Some(s);
            }
        }
        if self.spill.is_empty() {
            return None;
        }
        let idx = self.spill.partition_point(|r| r.start <= raw);
        let i = idx.checked_sub(1)?;
        let r = self.spill.get(i)?;
        (raw < r.end).then_some(r.slot)
    }

    /// Mutable access to out-slot `(src, off)`, by binary search.
    fn slot_mut(slots: &mut [NodeSlot], src: u32, off: u64) -> Option<&mut SlotState> {
        let out = &mut slots[src as usize].out;
        let pos = out.binary_search_by_key(&off, |&(o, _)| o).ok()?;
        Some(&mut out[pos].1)
    }

    /// Adjusts a live node's degrees by the given deltas, keeping the
    /// histogram consistent.
    fn adjust(&mut self, slot: u32, din: i32, dout: i32) {
        let info = &mut self.slots[slot as usize].info;
        let (old_in, old_out) = (info.indegree, info.outdegree);
        info.indegree = info
            .indegree
            .checked_add_signed(din)
            .expect("indegree underflow");
        info.outdegree = info
            .outdegree
            .checked_add_signed(dout)
            .expect("outdegree underflow");
        let (new_in, new_out) = (info.indegree, info.outdegree);
        self.histogram
            .change_degrees(old_in, new_in, old_out, new_out);
    }

    /// Removes the slot `(src, offset)` if present, undoing its edge or
    /// dangling registration.
    fn drop_slot(&mut self, src: u32, offset: u64) {
        let out = &mut self.slots[src as usize].out;
        let Ok(pos) = out.binary_search_by_key(&offset, |&(o, _)| o) else {
            return;
        };
        let (_, st) = out.remove(pos);
        match st.target {
            Some(t) => {
                self.edge_count -= 1;
                let inb = &mut self.slots[t as usize].inbound;
                if let Some(p) = inb.iter().position(|&e| e == (src, offset)) {
                    inb.swap_remove(p);
                }
                if t == src {
                    self.adjust(src, -1, -1);
                } else {
                    self.adjust(src, 0, -1);
                    self.adjust(t, -1, 0);
                }
            }
            None => {
                self.dangling -= 1;
                self.remove_unresolved(st.raw, src, offset);
            }
        }
    }

    fn insert_unresolved(&mut self, raw: u64, src: u32, off: u64) {
        match self.unresolved.binary_search_by_key(&raw, |b| b.raw) {
            Ok(i) => self.unresolved[i].entries.push((src, off)),
            Err(i) => self.unresolved.insert(
                i,
                Bucket {
                    raw,
                    entries: vec![(src, off)],
                },
            ),
        }
    }

    fn remove_unresolved(&mut self, raw: u64, src: u32, off: u64) {
        if let Ok(i) = self.unresolved.binary_search_by_key(&raw, |b| b.raw) {
            let entries = &mut self.unresolved[i].entries;
            if let Some(p) = entries.iter().position(|&e| e == (src, off)) {
                entries.swap_remove(p);
            }
            if entries.is_empty() {
                self.unresolved.remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::{AllocSite, SimHeap};

    /// A heap+graph pair kept in lockstep.
    struct Rig {
        heap: SimHeap,
        graph: HeapGraph,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                heap: SimHeap::new(),
                graph: HeapGraph::new(),
            }
        }

        fn alloc(&mut self, size: usize) -> Addr {
            let eff = self.heap.alloc(size, AllocSite(0)).unwrap();
            self.graph.on_alloc(eff.id, eff.addr, eff.size);
            eff.addr
        }

        fn free(&mut self, addr: Addr) {
            let eff = self.heap.free(addr).unwrap();
            self.graph.on_free(eff.id);
        }

        fn link(&mut self, slot: Addr, target: Addr) {
            let w = self.heap.write_ptr(slot, target).unwrap();
            self.graph.on_ptr_write(w.src, w.offset, target);
        }

        fn check(&self) {
            self.graph.validate().expect("graph invariants");
        }
    }

    #[test]
    fn single_edge_degrees() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        let ia = r.heap.object_at(a).unwrap().id();
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ia).unwrap().outdegree, 1);
        assert_eq!(r.graph.node(ib).unwrap().indegree, 1);
    }

    #[test]
    fn overwrite_moves_edge() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        let c = r.alloc(24);
        r.link(a, b);
        r.link(a, c); // same slot, new target
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        let ib = r.heap.object_at(b).unwrap().id();
        let ic = r.heap.object_at(c).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 0);
        assert_eq!(r.graph.node(ic).unwrap().indegree, 1);
    }

    #[test]
    fn null_store_clears_edge() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.link(a, sim_heap::NULL);
        r.check();
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 0);
    }

    #[test]
    fn free_target_dangles_then_rebinds() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.free(b);
        r.check();
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 1);
        // Same size class ⇒ same address comes back; slot re-binds.
        let c = r.alloc(24);
        assert_eq!(c, b, "address recycled");
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        assert_eq!(r.graph.dangling_count(), 0);
        let ic = r.heap.object_at(c).unwrap().id();
        assert_eq!(r.graph.node(ic).unwrap().indegree, 1);
    }

    #[test]
    fn interior_pointers_make_edges() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(64);
        r.link(a, b.offset(32));
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 1);
    }

    #[test]
    fn self_edges_count_both_degrees() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        r.link(a, a);
        r.check();
        let ia = r.heap.object_at(a).unwrap().id();
        let info = r.graph.node(ia).unwrap();
        assert_eq!(info.indegree, 1);
        assert_eq!(info.outdegree, 1);
        assert!(info.is_balanced());
        r.free(a);
        r.check();
        assert_eq!(r.graph.node_count(), 0);
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 0);
    }

    #[test]
    fn free_source_drops_outgoing_edges() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.free(a);
        r.check();
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 0);
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 0);
    }

    #[test]
    fn parallel_edges_count_with_multiplicity() {
        let mut r = Rig::new();
        let a = r.alloc(32);
        let b = r.alloc(24);
        r.link(a, b);
        r.link(a.offset(8), b);
        r.check();
        assert_eq!(r.graph.edge_count(), 2);
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 2);
    }

    #[test]
    fn linked_list_metrics() {
        // A 10-node singly linked list: head has indeg 0, tail outdeg 0.
        let mut r = Rig::new();
        let nodes: Vec<Addr> = (0..10).map(|_| r.alloc(16)).collect();
        for w in nodes.windows(2) {
            r.link(w[0].offset(8), w[1]);
        }
        r.check();
        let m = r.graph.metrics();
        assert_eq!(m.get(crate::MetricKind::Roots), 10.0);
        assert_eq!(m.get(crate::MetricKind::Indeg1), 90.0);
        assert_eq!(m.get(crate::MetricKind::Leaves), 10.0);
        assert_eq!(m.get(crate::MetricKind::Outdeg1), 90.0);
        // 8 interior nodes have in=out=1 — plus neither endpoint.
        assert_eq!(m.get(crate::MetricKind::InEqOut), 80.0);
    }

    #[test]
    fn scalar_write_clears_slot() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        let w = r.heap.write_scalar(a).unwrap();
        r.graph.on_scalar_write(w.src, w.offset);
        r.check();
        assert_eq!(r.graph.edge_count(), 0);
    }

    #[test]
    fn slots_recycle_after_free() {
        // alloc/free churn must reuse slab slots instead of growing it.
        let mut r = Rig::new();
        for _ in 0..64 {
            let a = r.alloc(24);
            let b = r.alloc(24);
            r.link(a, b);
            r.free(a);
            r.free(b);
        }
        r.check();
        assert_eq!(r.graph.node_count(), 0);
        assert!(
            r.graph.slots.len() <= 4,
            "slab grew to {} slots under churn",
            r.graph.slots.len()
        );
    }

    #[test]
    fn apply_event_stream_equivalent_to_direct_calls() {
        let mut heap = SimHeap::new();
        let mut g = HeapGraph::new();
        let a = heap.alloc(24, AllocSite(0)).unwrap();
        let b = heap.alloc(24, AllocSite(0)).unwrap();
        g.apply(&HeapEvent::Alloc {
            obj: a.id,
            addr: a.addr,
            size: a.size,
            site: AllocSite(0),
        });
        g.apply(&HeapEvent::Alloc {
            obj: b.id,
            addr: b.addr,
            size: b.size,
            site: AllocSite(0),
        });
        g.apply(&HeapEvent::PtrWrite {
            src: a.id,
            offset: 0,
            value: b.addr,
            old_value: None,
        });
        g.apply(&HeapEvent::Read { obj: a.id });
        g.apply(&HeapEvent::FnEnter { func: 1 });
        assert_eq!(g.edge_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn apply_batch_equivalent_to_per_event_apply() {
        let mut heap = SimHeap::new();
        let a = heap.alloc(24, AllocSite(0)).unwrap();
        let b = heap.alloc(24, AllocSite(0)).unwrap();
        let events = vec![
            HeapEvent::Alloc {
                obj: a.id,
                addr: a.addr,
                size: a.size,
                site: AllocSite(0),
            },
            HeapEvent::Alloc {
                obj: b.id,
                addr: b.addr,
                size: b.size,
                site: AllocSite(0),
            },
            HeapEvent::PtrWrite {
                src: a.id,
                offset: 8,
                value: b.addr,
                old_value: None,
            },
            HeapEvent::Free {
                obj: b.id,
                addr: b.addr,
                size: 24,
            },
        ];
        let mut one_by_one = HeapGraph::new();
        for ev in &events {
            one_by_one.apply(ev);
        }
        let mut batched = HeapGraph::new();
        batched.apply_batch(&events);
        batched.validate().unwrap();
        assert_eq!(batched.snapshot(), one_by_one.snapshot());
        assert_eq!(batched.dangling_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate allocation")]
    fn duplicate_alloc_panics() {
        let mut g = HeapGraph::new();
        g.on_alloc(ObjectId(1), Addr::new(0x100), 16);
        g.on_alloc(ObjectId(1), Addr::new(0x200), 16);
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        let s = r.graph.snapshot();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.dangling, 0);
        assert_eq!(s.metrics, r.graph.metrics());
    }

    #[test]
    fn extended_metrics_mean_degree() {
        let mut r = Rig::new();
        let a = r.alloc(32);
        let b = r.alloc(32);
        r.link(a, b);
        r.link(a.offset(8), b);
        let e = r.graph.extended_metrics();
        assert_eq!(e.nodes, 2);
        assert_eq!(e.edges, 2);
        assert_eq!(e.mean_degree, 1.0);
    }
}
