//! The incremental heap-graph.

use crate::histogram::DegreeHistogram;
use crate::metrics::{ExtendedMetrics, MetricVector};
use crate::node::NodeInfo;
use serde::{Deserialize, Serialize};
use sim_heap::{Addr, HeapEvent, ObjectId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One pointer slot's state as the graph sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotState {
    /// Raw stored address.
    raw: u64,
    /// The live object it currently resolves to, if any.
    target: Option<ObjectId>,
}

/// A serializable summary of the graph at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphSnapshot {
    /// Live vertexes.
    pub nodes: u64,
    /// Resolved edges.
    pub edges: u64,
    /// Dangling (unresolved) pointer slots.
    pub dangling: u64,
    /// The seven paper metrics.
    pub metrics: MetricVector,
}

/// The object-granularity heap-graph, updated incrementally from the
/// instrumentation event stream.
///
/// See the [crate docs](crate) for the model. The three mutating entry
/// points mirror the events the paper's instrumentation exposes:
/// [`on_alloc`](Self::on_alloc), [`on_free`](Self::on_free), and
/// [`on_ptr_write`](Self::on_ptr_write) /
/// [`on_scalar_write`](Self::on_scalar_write); or feed raw events
/// through [`apply`](Self::apply).
///
/// # Invariants (checked by [`validate`](Self::validate))
///
/// * a slot is an edge iff its raw address lies inside a live object;
/// * per-node degrees equal the counts implied by the slot table;
/// * the degree histogram equals a from-scratch recount.
#[derive(Debug, Clone, Default)]
pub struct HeapGraph {
    nodes: HashMap<ObjectId, NodeInfo>,
    /// Live objects keyed by start address, for pointer resolution.
    ranges: BTreeMap<u64, (ObjectId, usize)>,
    /// Reverse map: vertex → start address (for O(log n) frees).
    starts: HashMap<ObjectId, u64>,
    /// Per-source pointer slots: offset → state.
    out_slots: HashMap<ObjectId, BTreeMap<u64, SlotState>>,
    /// Reverse edges: target → set of (source, offset).
    inbound: HashMap<ObjectId, HashSet<(ObjectId, u64)>>,
    /// Slots whose raw address resolves to no live object, keyed by that
    /// address so allocations can re-bind them by range scan.
    unresolved: BTreeMap<u64, HashSet<(ObjectId, u64)>>,
    histogram: DegreeHistogram,
    edge_count: u64,
    dangling: u64,
}

impl HeapGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        HeapGraph::default()
    }

    /// Live vertexes.
    pub fn node_count(&self) -> u64 {
        self.histogram.nodes()
    }

    /// Resolved heap-to-heap edges (with multiplicity).
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Pointer slots currently dangling (stored address resolves to no
    /// live object).
    pub fn dangling_count(&self) -> u64 {
        self.dangling
    }

    /// Degree information for a live vertex.
    pub fn node(&self, id: ObjectId) -> Option<NodeInfo> {
        self.nodes.get(&id).copied()
    }

    /// Returns `true` if `id` is a live vertex.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// The degree histogram (O(1) reads for every paper metric).
    pub fn histogram(&self) -> &DegreeHistogram {
        &self.histogram
    }

    /// Computes the seven paper metrics for the current graph.
    pub fn metrics(&self) -> MetricVector {
        let _t = heapmd_obs::timer!("heap_graph_metrics_ns");
        MetricVector::from_histogram(&self.histogram)
    }

    /// Computes the extension metrics for the current graph.
    pub fn extended_metrics(&self) -> ExtendedMetrics {
        let _t = heapmd_obs::timer!("heap_graph_metrics_ns");
        let nodes = self.node_count();
        ExtendedMetrics {
            nodes,
            edges: self.edge_count,
            dangling_slots: self.dangling,
            mean_degree: if nodes == 0 {
                0.0
            } else {
                self.edge_count as f64 / nodes as f64
            },
        }
    }

    /// A serializable summary of the current instant.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            nodes: self.node_count(),
            edges: self.edge_count,
            dangling: self.dangling,
            metrics: self.metrics(),
        }
    }

    /// Applies one instrumentation event.
    ///
    /// Reads and function entries/exits do not change the graph.
    pub fn apply(&mut self, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc {
                obj, addr, size, ..
            } => self.on_alloc(obj, addr, size),
            HeapEvent::Free { obj, .. } => self.on_free(obj),
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => self.on_ptr_write(src, offset, value),
            HeapEvent::ScalarWrite { src, offset, .. } => self.on_scalar_write(src, offset),
            HeapEvent::Read { .. } | HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    /// Adds a vertex for a fresh allocation and re-binds any dangling
    /// slots whose address falls inside it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already live (the event stream is corrupt).
    pub fn on_alloc(&mut self, id: ObjectId, addr: Addr, size: usize) {
        let prev = self.nodes.insert(id, NodeInfo::new());
        assert!(prev.is_none(), "duplicate allocation of {id}");
        self.ranges.insert(addr.get(), (id, size));
        self.starts.insert(id, addr.get());
        self.histogram.add_node();

        // Re-bind dangling slots now covered by this object.
        let start = addr.get();
        let end = start + size as u64;
        let hits: Vec<u64> = self.unresolved.range(start..end).map(|(&a, _)| a).collect();
        for raw in hits {
            let slots = self.unresolved.remove(&raw).expect("key just seen");
            for (src, off) in slots {
                let st = self
                    .out_slots
                    .get_mut(&src)
                    .and_then(|m| m.get_mut(&off))
                    .expect("unresolved slot must exist in slot table");
                debug_assert_eq!(st.target, None);
                st.target = Some(id);
                self.dangling -= 1;
                self.edge_count += 1;
                self.inbound.entry(id).or_default().insert((src, off));
                if src == id {
                    self.adjust(id, 1, 1);
                } else {
                    self.adjust(src, 0, 1);
                    self.adjust(id, 1, 0);
                }
            }
        }
    }

    /// Removes a vertex: its out-slots vanish, and every in-edge's source
    /// slot becomes dangling (retaining its raw address for later
    /// re-binding).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn on_free(&mut self, id: ObjectId) {
        let info = self
            .nodes
            .remove(&id)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        self.histogram.remove_node(info.indegree, info.outdegree);
        let start = self.starts.remove(&id).expect("live vertex has a range");
        self.ranges.remove(&start);

        // Outgoing slots disappear with the object.
        if let Some(slots) = self.out_slots.remove(&id) {
            for (off, st) in slots {
                match st.target {
                    Some(t) => {
                        self.edge_count -= 1;
                        if t != id {
                            if let Some(set) = self.inbound.get_mut(&t) {
                                set.remove(&(id, off));
                            }
                            self.adjust(t, -1, 0);
                        }
                        // Self-edge: both endpoints die with the node.
                    }
                    None => {
                        self.remove_unresolved(st.raw, id, off);
                        self.dangling -= 1;
                    }
                }
            }
        }

        // Incoming edges become dangling slots of their sources.
        if let Some(srcs) = self.inbound.remove(&id) {
            for (src, off) in srcs {
                if src == id {
                    continue; // handled with the out-slots above
                }
                let st = self
                    .out_slots
                    .get_mut(&src)
                    .and_then(|m| m.get_mut(&off))
                    .expect("inbound edge has a source slot");
                debug_assert_eq!(st.target, Some(id));
                st.target = None;
                self.edge_count -= 1;
                self.dangling += 1;
                let raw = st.raw;
                self.unresolved.entry(raw).or_default().insert((src, off));
                self.adjust(src, 0, -1);
            }
        }
    }

    /// Records a pointer store: slot `(src, offset)` now holds `value`.
    ///
    /// A null `value` clears the slot. A non-null value that resolves to
    /// a live object creates an edge; otherwise the slot is tracked as
    /// dangling.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a live vertex.
    pub fn on_ptr_write(&mut self, src: ObjectId, offset: u64, value: Addr) {
        let _t = heapmd_obs::timer!("heap_graph_edge_resolve_ns");
        assert!(self.nodes.contains_key(&src), "write into unknown {src}");
        self.drop_slot(src, offset);
        if value.is_null() {
            return;
        }
        let raw = value.get();
        let target = self.resolve(raw);
        self.out_slots
            .entry(src)
            .or_default()
            .insert(offset, SlotState { raw, target });
        match target {
            Some(t) => {
                self.edge_count += 1;
                self.inbound.entry(t).or_default().insert((src, offset));
                if t == src {
                    self.adjust(src, 1, 1);
                } else {
                    self.adjust(src, 0, 1);
                    self.adjust(t, 1, 0);
                }
            }
            None => {
                self.dangling += 1;
                self.unresolved
                    .entry(raw)
                    .or_default()
                    .insert((src, offset));
            }
        }
    }

    /// Records a non-pointer store, clearing any pointer in the slot.
    pub fn on_scalar_write(&mut self, src: ObjectId, offset: u64) {
        if self.nodes.contains_key(&src) {
            self.drop_slot(src, offset);
        }
    }

    /// Iterates over resolved edges as `(source, offset, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (ObjectId, u64, ObjectId)> + '_ {
        self.out_slots.iter().flat_map(|(&src, slots)| {
            slots
                .iter()
                .filter_map(move |(&off, st)| st.target.map(|t| (src, off, t)))
        })
    }

    /// Iterates over live vertex ids.
    pub fn node_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.nodes.keys().copied()
    }

    /// Recomputes all degree bookkeeping from the slot table and checks
    /// it against the incremental state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found. Intended
    /// for tests and debug assertions; O(nodes + slots).
    pub fn validate(&self) -> Result<(), String> {
        let mut indeg: HashMap<ObjectId, u32> = HashMap::new();
        let mut outdeg: HashMap<ObjectId, u32> = HashMap::new();
        let mut edges = 0u64;
        let mut dangling = 0u64;
        for (&src, slots) in &self.out_slots {
            if !self.nodes.contains_key(&src) {
                return Err(format!("slot table has dead source {src}"));
            }
            for (&off, st) in slots {
                let resolved = self.resolve(st.raw);
                if resolved != st.target {
                    return Err(format!(
                        "slot ({src},{off}) cached target {:?} but resolves to {:?}",
                        st.target, resolved
                    ));
                }
                match st.target {
                    Some(t) => {
                        edges += 1;
                        *outdeg.entry(src).or_default() += 1;
                        *indeg.entry(t).or_default() += 1;
                    }
                    None => dangling += 1,
                }
            }
        }
        if edges != self.edge_count {
            return Err(format!("edge count {} != {}", self.edge_count, edges));
        }
        if dangling != self.dangling {
            return Err(format!("dangling count {} != {}", self.dangling, dangling));
        }
        let mut scratch = DegreeHistogram::new();
        for (&id, info) in &self.nodes {
            let want_in = indeg.get(&id).copied().unwrap_or(0);
            let want_out = outdeg.get(&id).copied().unwrap_or(0);
            if info.indegree != want_in || info.outdegree != want_out {
                return Err(format!(
                    "{id} degrees ({},{}) != recomputed ({want_in},{want_out})",
                    info.indegree, info.outdegree
                ));
            }
            scratch.add_node();
            scratch.change_degrees(0, want_in, 0, want_out);
        }
        if scratch != self.histogram {
            return Err("histogram mismatch".to_string());
        }
        Ok(())
    }

    fn resolve(&self, raw: u64) -> Option<ObjectId> {
        let (&start, &(id, size)) = self.ranges.range(..=raw).next_back()?;
        (raw < start + size as u64).then_some(id)
    }

    /// Adjusts a live node's degrees by the given deltas, keeping the
    /// histogram consistent.
    fn adjust(&mut self, id: ObjectId, din: i32, dout: i32) {
        let info = self.nodes.get_mut(&id).expect("adjust on live node");
        let (old_in, old_out) = (info.indegree, info.outdegree);
        info.indegree = info
            .indegree
            .checked_add_signed(din)
            .expect("indegree underflow");
        info.outdegree = info
            .outdegree
            .checked_add_signed(dout)
            .expect("outdegree underflow");
        let (new_in, new_out) = (info.indegree, info.outdegree);
        self.histogram
            .change_degrees(old_in, new_in, old_out, new_out);
    }

    /// Removes the slot `(src, offset)` if present, undoing its edge or
    /// dangling registration.
    fn drop_slot(&mut self, src: ObjectId, offset: u64) {
        let Some(slots) = self.out_slots.get_mut(&src) else {
            return;
        };
        let Some(st) = slots.remove(&offset) else {
            return;
        };
        if slots.is_empty() {
            self.out_slots.remove(&src);
        }
        match st.target {
            Some(t) => {
                self.edge_count -= 1;
                if let Some(set) = self.inbound.get_mut(&t) {
                    set.remove(&(src, offset));
                    if set.is_empty() {
                        self.inbound.remove(&t);
                    }
                }
                if t == src {
                    self.adjust(src, -1, -1);
                } else {
                    self.adjust(src, 0, -1);
                    self.adjust(t, -1, 0);
                }
            }
            None => {
                self.dangling -= 1;
                self.remove_unresolved(st.raw, src, offset);
            }
        }
    }

    fn remove_unresolved(&mut self, raw: u64, src: ObjectId, off: u64) {
        if let Some(set) = self.unresolved.get_mut(&raw) {
            set.remove(&(src, off));
            if set.is_empty() {
                self.unresolved.remove(&raw);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::{AllocSite, SimHeap};

    /// A heap+graph pair kept in lockstep.
    struct Rig {
        heap: SimHeap,
        graph: HeapGraph,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                heap: SimHeap::new(),
                graph: HeapGraph::new(),
            }
        }

        fn alloc(&mut self, size: usize) -> Addr {
            let eff = self.heap.alloc(size, AllocSite(0)).unwrap();
            self.graph.on_alloc(eff.id, eff.addr, eff.size);
            eff.addr
        }

        fn free(&mut self, addr: Addr) {
            let eff = self.heap.free(addr).unwrap();
            self.graph.on_free(eff.id);
        }

        fn link(&mut self, slot: Addr, target: Addr) {
            let w = self.heap.write_ptr(slot, target).unwrap();
            self.graph.on_ptr_write(w.src, w.offset, target);
        }

        fn check(&self) {
            self.graph.validate().expect("graph invariants");
        }
    }

    #[test]
    fn single_edge_degrees() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        let ia = r.heap.object_at(a).unwrap().id();
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ia).unwrap().outdegree, 1);
        assert_eq!(r.graph.node(ib).unwrap().indegree, 1);
    }

    #[test]
    fn overwrite_moves_edge() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        let c = r.alloc(24);
        r.link(a, b);
        r.link(a, c); // same slot, new target
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        let ib = r.heap.object_at(b).unwrap().id();
        let ic = r.heap.object_at(c).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 0);
        assert_eq!(r.graph.node(ic).unwrap().indegree, 1);
    }

    #[test]
    fn null_store_clears_edge() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.link(a, sim_heap::NULL);
        r.check();
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 0);
    }

    #[test]
    fn free_target_dangles_then_rebinds() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.free(b);
        r.check();
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 1);
        // Same size class ⇒ same address comes back; slot re-binds.
        let c = r.alloc(24);
        assert_eq!(c, b, "address recycled");
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        assert_eq!(r.graph.dangling_count(), 0);
        let ic = r.heap.object_at(c).unwrap().id();
        assert_eq!(r.graph.node(ic).unwrap().indegree, 1);
    }

    #[test]
    fn interior_pointers_make_edges() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(64);
        r.link(a, b.offset(32));
        r.check();
        assert_eq!(r.graph.edge_count(), 1);
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 1);
    }

    #[test]
    fn self_edges_count_both_degrees() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        r.link(a, a);
        r.check();
        let ia = r.heap.object_at(a).unwrap().id();
        let info = r.graph.node(ia).unwrap();
        assert_eq!(info.indegree, 1);
        assert_eq!(info.outdegree, 1);
        assert!(info.is_balanced());
        r.free(a);
        r.check();
        assert_eq!(r.graph.node_count(), 0);
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 0);
    }

    #[test]
    fn free_source_drops_outgoing_edges() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        r.free(a);
        r.check();
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 0);
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.graph.dangling_count(), 0);
    }

    #[test]
    fn parallel_edges_count_with_multiplicity() {
        let mut r = Rig::new();
        let a = r.alloc(32);
        let b = r.alloc(24);
        r.link(a, b);
        r.link(a.offset(8), b);
        r.check();
        assert_eq!(r.graph.edge_count(), 2);
        let ib = r.heap.object_at(b).unwrap().id();
        assert_eq!(r.graph.node(ib).unwrap().indegree, 2);
    }

    #[test]
    fn linked_list_metrics() {
        // A 10-node singly linked list: head has indeg 0, tail outdeg 0.
        let mut r = Rig::new();
        let nodes: Vec<Addr> = (0..10).map(|_| r.alloc(16)).collect();
        for w in nodes.windows(2) {
            r.link(w[0].offset(8), w[1]);
        }
        r.check();
        let m = r.graph.metrics();
        assert_eq!(m.get(crate::MetricKind::Roots), 10.0);
        assert_eq!(m.get(crate::MetricKind::Indeg1), 90.0);
        assert_eq!(m.get(crate::MetricKind::Leaves), 10.0);
        assert_eq!(m.get(crate::MetricKind::Outdeg1), 90.0);
        // 8 interior nodes have in=out=1 — plus neither endpoint.
        assert_eq!(m.get(crate::MetricKind::InEqOut), 80.0);
    }

    #[test]
    fn scalar_write_clears_slot() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        let w = r.heap.write_scalar(a).unwrap();
        r.graph.on_scalar_write(w.src, w.offset);
        r.check();
        assert_eq!(r.graph.edge_count(), 0);
    }

    #[test]
    fn apply_event_stream_equivalent_to_direct_calls() {
        let mut heap = SimHeap::new();
        let mut g = HeapGraph::new();
        let a = heap.alloc(24, AllocSite(0)).unwrap();
        let b = heap.alloc(24, AllocSite(0)).unwrap();
        g.apply(&HeapEvent::Alloc {
            obj: a.id,
            addr: a.addr,
            size: a.size,
            site: AllocSite(0),
        });
        g.apply(&HeapEvent::Alloc {
            obj: b.id,
            addr: b.addr,
            size: b.size,
            site: AllocSite(0),
        });
        g.apply(&HeapEvent::PtrWrite {
            src: a.id,
            offset: 0,
            value: b.addr,
            old_value: None,
        });
        g.apply(&HeapEvent::Read { obj: a.id });
        g.apply(&HeapEvent::FnEnter { func: 1 });
        assert_eq!(g.edge_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate allocation")]
    fn duplicate_alloc_panics() {
        let mut g = HeapGraph::new();
        g.on_alloc(ObjectId(1), Addr::new(0x100), 16);
        g.on_alloc(ObjectId(1), Addr::new(0x200), 16);
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut r = Rig::new();
        let a = r.alloc(24);
        let b = r.alloc(24);
        r.link(a, b);
        let s = r.graph.snapshot();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.dangling, 0);
        assert_eq!(s.metrics, r.graph.metrics());
    }

    #[test]
    fn extended_metrics_mean_degree() {
        let mut r = Rig::new();
        let a = r.alloc(32);
        let b = r.alloc(32);
        r.link(a, b);
        r.link(a.offset(8), b);
        let e = r.graph.extended_metrics();
        assert_eq!(e.nodes, 2);
        assert_eq!(e.edges, 2);
        assert_eq!(e.mean_degree, 1.0);
    }
}
