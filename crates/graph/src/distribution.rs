//! Normalized weighted degree-frequency distributions.
//!
//! The seven paper metrics project the degree histogram onto a handful
//! of percentages; this module keeps the whole shape. Following the
//! heap-dump degree analyses in the literature, each degree `d` with
//! frequency `f(d)` contributes a *weighted frequency* `d · f(d)` —
//! i.e. the number of edge endpoints landing on vertexes of that degree
//! — and the vector is normalized so the weights sum to 1. Degree 0
//! therefore contributes nothing: the distribution describes where the
//! edges are, not where the vertexes are, which makes it robust to
//! large populations of isolated objects.
//!
//! Shape statistics (entropy, tail mass, top-k concentration) summarize
//! the distribution into scalars suitable for the stability filter.

use serde::{Deserialize, Serialize};

/// A normalized weighted degree-frequency distribution for one edge
/// direction (in or out).
///
/// # Example
///
/// ```
/// use heap_graph::DegreeDistribution;
///
/// // 10 vertexes of degree 1, 5 of degree 2: weighted 10 and 10.
/// let mut counts = vec![0u64; 65];
/// counts[1] = 10;
/// counts[2] = 5;
/// let d = DegreeDistribution::from_counts(&counts);
/// assert!((d.weight(1) - 0.5).abs() < 1e-12);
/// assert!((d.weight(2) - 0.5).abs() < 1e-12);
/// assert!((d.entropy() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegreeDistribution {
    /// Normalized weighted frequency per degree; index = degree, with
    /// the final bucket aggregating everything at the saturation bound.
    weights: Vec<f64>,
}

impl DegreeDistribution {
    /// Builds the distribution from raw per-degree vertex counts
    /// (index = degree, as returned by
    /// [`DegreeHistogram::indegree_counts`](crate::DegreeHistogram::indegree_counts)).
    ///
    /// An edge-free histogram (all weight at degree 0, or no vertexes
    /// at all) yields the all-zero distribution.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut weights: Vec<f64> = counts
            .iter()
            .enumerate()
            .map(|(deg, &n)| deg as f64 * n as f64)
            .collect();
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        DegreeDistribution { weights }
    }

    /// The normalized weight at the given degree (0 beyond the vector).
    pub fn weight(&self, degree: u32) -> f64 {
        self.weights.get(degree as usize).copied().unwrap_or(0.0)
    }

    /// The full normalized weight vector (index = degree).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Shannon entropy (bits) of the distribution; 0 for the all-zero
    /// distribution and for a single-degree spike.
    pub fn entropy(&self) -> f64 {
        -self
            .weights
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.log2())
            .sum::<f64>()
    }

    /// Total normalized weight at degrees `>= min_degree` — the mass in
    /// the distribution's tail.
    pub fn tail_mass(&self, min_degree: u32) -> f64 {
        self.weights
            .iter()
            .skip(min_degree as usize)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Sum of the `k` largest weights — how concentrated the edge mass
    /// is on the dominant degree values.
    pub fn top_share(&self, k: usize) -> f64 {
        let mut sorted: Vec<f64> = self.weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
        sorted.iter().take(k).sum::<f64>().clamp(0.0, 1.0)
    }

    /// The highest degree carrying any weight (0 for the edge-free
    /// distribution). Saturated degrees report the saturation bound.
    pub fn max_degree(&self) -> u32 {
        self.weights.iter().rposition(|&w| w > 0.0).unwrap_or(0) as u32
    }

    /// `true` when no degree carries weight (an edge-free heap).
    pub fn is_empty(&self) -> bool {
        self.weights.iter().all(|&w| w == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counts_give_zero_distribution() {
        let d = DegreeDistribution::from_counts(&[0; 65]);
        assert!(d.is_empty());
        assert_eq!(d.entropy(), 0.0);
        assert_eq!(d.tail_mass(1), 0.0);
        assert_eq!(d.top_share(2), 0.0);
        assert_eq!(d.max_degree(), 0);
    }

    #[test]
    fn degree_zero_carries_no_weight() {
        let mut counts = vec![0u64; 65];
        counts[0] = 1_000_000; // a million isolated objects
        counts[1] = 1;
        let d = DegreeDistribution::from_counts(&counts);
        assert!((d.weight(1) - 1.0).abs() < 1e-12);
        assert_eq!(d.weight(0), 0.0);
        assert_eq!(d.max_degree(), 1);
    }

    #[test]
    fn weights_are_degree_weighted_and_normalized() {
        let mut counts = vec![0u64; 65];
        counts[1] = 6; // weighted 6
        counts[3] = 2; // weighted 6
        let d = DegreeDistribution::from_counts(&counts);
        assert!((d.weight(1) - 0.5).abs() < 1e-12);
        assert!((d.weight(3) - 0.5).abs() < 1e-12);
        assert!((d.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_spike_is_zero_uniform_is_log2() {
        let mut spike = vec![0u64; 65];
        spike[2] = 10;
        assert_eq!(DegreeDistribution::from_counts(&spike).entropy(), 0.0);

        // Equal weighted mass on 4 degrees: entropy = 2 bits.
        let mut four = vec![0u64; 65];
        four[1] = 12;
        four[2] = 6;
        four[3] = 4;
        four[4] = 3;
        let e = DegreeDistribution::from_counts(&four).entropy();
        assert!((e - 2.0).abs() < 1e-12, "entropy was {e}");
    }

    #[test]
    fn tail_mass_and_top_share() {
        let mut counts = vec![0u64; 65];
        counts[1] = 10; // weight 10
        counts[2] = 5; // weight 10
        counts[5] = 4; // weight 20
        let d = DegreeDistribution::from_counts(&counts);
        assert!((d.tail_mass(3) - 0.5).abs() < 1e-12);
        assert!((d.top_share(1) - 0.5).abs() < 1e-12);
        assert!((d.top_share(2) - 0.75).abs() < 1e-12);
        assert!((d.top_share(100) - 1.0).abs() < 1e-12);
    }
}
