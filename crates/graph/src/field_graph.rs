//! Field-granularity heap-graph — the alternative the paper rejects.
//!
//! Figure 3 of the paper contrasts two granularities for the
//! heap-graph: **object** granularity (one vertex per allocation — what
//! HeapMD uses) and **field** granularity (one vertex per pointer-sized
//! slot). Field granularity captures finer structure but makes the
//! degree metrics sensitive to *field layout*: the same linked list
//! with `data` before `next` versus `next` before `data` produces
//! different indegree = outdegree percentages, even though the data
//! structure is identical.
//!
//! [`FieldGraph`] implements the rejected design so the ablation can be
//! measured (see the `ablations` bench and the unit tests below, which
//! reproduce Figure 3's layout-sensitivity example).

use crate::graph::HeapGraph;
use crate::metrics::MetricVector;
use sim_heap::{Addr, HeapEvent, ObjectId};
use std::collections::HashMap;

/// Pointer-slot width: fields are 8-byte words.
const FIELD: u64 = 8;
/// Maximum fields per object (bounds the field-id encoding).
const MAX_FIELDS: u64 = 1 << 20;

/// A heap-graph at the granularity of individual 8-byte fields.
///
/// Every allocation of `n` bytes contributes `⌈n/8⌉` vertexes; a
/// pointer store creates an edge from the *written field* to the
/// *pointed-at field*. Degrees, histograms, and the seven paper metrics
/// come from the same machinery as [`HeapGraph`], applied to the
/// field-level vertexes.
///
/// # Example
///
/// ```
/// use heap_graph::FieldGraph;
/// use sim_heap::{AllocSite, SimHeap};
///
/// # fn main() -> Result<(), sim_heap::HeapError> {
/// let mut heap = SimHeap::new();
/// let mut fg = FieldGraph::new();
/// let a = heap.alloc(16, AllocSite(0))?;
/// fg.on_alloc(a.id, a.addr, a.size);
/// assert_eq!(fg.node_count(), 2, "two 8-byte fields");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FieldGraph {
    inner: HeapGraph,
    sizes: HashMap<ObjectId, (Addr, usize)>,
}

fn field_id(obj: ObjectId, index: u64) -> ObjectId {
    ObjectId(obj.0 * MAX_FIELDS + index)
}

fn field_count(size: usize) -> u64 {
    (size as u64).div_ceil(FIELD)
}

impl FieldGraph {
    /// Creates an empty field-granularity graph.
    pub fn new() -> Self {
        FieldGraph::default()
    }

    /// Field vertexes currently live.
    pub fn node_count(&self) -> u64 {
        self.inner.node_count()
    }

    /// Field-to-field edges.
    pub fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    /// The seven paper metrics over field vertexes.
    pub fn metrics(&self) -> MetricVector {
        self.inner.metrics()
    }

    /// Applies one instrumentation event.
    pub fn apply(&mut self, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc {
                obj, addr, size, ..
            } => self.on_alloc(obj, addr, size),
            HeapEvent::Free { obj, .. } => self.on_free(obj),
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => self.on_ptr_write(src, offset, value),
            HeapEvent::ScalarWrite { src, offset, .. } => self.on_scalar_write(src, offset),
            HeapEvent::Read { .. } | HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    /// Adds the object's fields as vertexes.
    ///
    /// # Panics
    ///
    /// Panics if the object exceeds the supported field count or is
    /// already live.
    pub fn on_alloc(&mut self, obj: ObjectId, addr: Addr, size: usize) {
        let n = field_count(size);
        assert!(n < MAX_FIELDS, "object too large for field encoding");
        for i in 0..n {
            self.inner
                .on_alloc(field_id(obj, i), addr.offset(i * FIELD), FIELD as usize);
        }
        self.sizes.insert(obj, (addr, size));
    }

    /// Removes the object's field vertexes.
    ///
    /// # Panics
    ///
    /// Panics if the object is not live.
    pub fn on_free(&mut self, obj: ObjectId) {
        let (_, size) = self.sizes.remove(&obj).expect("free of unknown object");
        for i in 0..field_count(size) {
            self.inner.on_free(field_id(obj, i));
        }
    }

    /// Records a pointer store into field `offset / 8` of `obj`.
    pub fn on_ptr_write(&mut self, obj: ObjectId, offset: u64, value: Addr) {
        let field = field_id(obj, offset / FIELD);
        // The field vertex holds a single pointer at its slot 0.
        self.inner.on_ptr_write(field, 0, value);
    }

    /// Records a scalar store (clears the field's pointer).
    pub fn on_scalar_write(&mut self, obj: ObjectId, offset: u64) {
        if self.sizes.contains_key(&obj) {
            let field = field_id(obj, offset / FIELD);
            self.inner.on_scalar_write(field, 0);
        }
    }

    /// Consistency check (delegates to the object-graph validator).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.inner.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKind;
    use sim_heap::{AllocSite, SimHeap};

    /// Builds a k-node singly linked list with the `next` pointer at
    /// the given byte offset (Figure 3's layout parameter), returning
    /// object- and field-granularity metrics side by side.
    fn list_metrics(k: usize, next_off: u64) -> (MetricVector, MetricVector) {
        let mut heap = SimHeap::new();
        let mut og = HeapGraph::new();
        let mut fg = FieldGraph::new();
        let mut addrs = Vec::new();
        for _ in 0..k {
            let eff = heap.alloc(16, AllocSite(0)).unwrap();
            og.on_alloc(eff.id, eff.addr, eff.size);
            fg.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for w in addrs.windows(2) {
            // The next pointer holds the next *node's base address*
            // (as C code would); which field it lands in depends on
            // the layout — Figure 3's whole point.
            let eff = heap.write_ptr(w[0].offset(next_off), w[1]).unwrap();
            og.on_ptr_write(eff.src, eff.offset, w[1]);
            fg.on_ptr_write(eff.src, eff.offset, w[1]);
        }
        og.validate().unwrap();
        fg.validate().unwrap();
        (og.metrics(), fg.metrics())
    }

    #[test]
    fn field_counts_round_up() {
        assert_eq!(field_count(1), 1);
        assert_eq!(field_count(8), 1);
        assert_eq!(field_count(9), 2);
        assert_eq!(field_count(24), 3);
    }

    #[test]
    fn figure3_layout_sensitivity() {
        // Layout (A): data at 0, next at 8. Layout (B): next at 0,
        // data at 8. Object granularity: identical metrics. Field
        // granularity: In=Out swings — the paper's exact argument for
        // object granularity.
        let (obj_a, field_a) = list_metrics(10, 8);
        let (obj_b, field_b) = list_metrics(10, 0);
        assert_eq!(obj_a, obj_b, "object granularity ignores layout");
        assert_ne!(
            field_a.get(MetricKind::InEqOut),
            field_b.get(MetricKind::InEqOut),
            "field granularity is layout-sensitive"
        );
    }

    #[test]
    fn figure3_expected_field_percentages() {
        // Paper: with layout (A) only two vertexes have in = out
        // (both 0): the first data field and the last next field. With
        // layout (B) all but two have in = out.
        let k = 10;
        let (_, field_a) = list_metrics(k, 8);
        let (_, field_b) = list_metrics(k, 0);
        let n = (2 * k) as f64;
        let a_expect = 2.0 / n * 100.0;
        // Layout B: k data fields are (0,0) and k−2 interior next
        // fields are (1,1) → 2k−2 balanced.
        let b_expect = (n - 2.0) / n * 100.0;
        assert!((field_a.get(MetricKind::InEqOut) - a_expect).abs() < 1e-9);
        assert!((field_b.get(MetricKind::InEqOut) - b_expect).abs() < 1e-9);
    }

    #[test]
    fn free_removes_all_fields() {
        let mut heap = SimHeap::new();
        let mut fg = FieldGraph::new();
        let a = heap.alloc(32, AllocSite(0)).unwrap();
        fg.on_alloc(a.id, a.addr, a.size);
        assert_eq!(fg.node_count(), 4);
        let eff = heap.free(a.addr).unwrap();
        fg.on_free(eff.id);
        assert_eq!(fg.node_count(), 0);
        fg.validate().unwrap();
    }

    #[test]
    fn apply_event_stream() {
        let mut heap = SimHeap::new();
        let mut fg = FieldGraph::new();
        let a = heap.alloc(16, AllocSite(0)).unwrap();
        let b = heap.alloc(16, AllocSite(0)).unwrap();
        fg.apply(&HeapEvent::Alloc {
            obj: a.id,
            addr: a.addr,
            size: a.size,
            site: AllocSite(0),
        });
        fg.apply(&HeapEvent::Alloc {
            obj: b.id,
            addr: b.addr,
            size: b.size,
            site: AllocSite(0),
        });
        fg.apply(&HeapEvent::PtrWrite {
            src: a.id,
            offset: 8,
            value: b.addr,
            old_value: None,
        });
        assert_eq!(fg.edge_count(), 1);
        fg.apply(&HeapEvent::ScalarWrite {
            src: a.id,
            offset: 8,
            old_value: Some(b.addr),
        });
        assert_eq!(fg.edge_count(), 0);
        fg.validate().unwrap();
    }
}
