//! The original map-based heap-graph, retained as a differential-testing
//! oracle for the dense-slab [`HeapGraph`](crate::HeapGraph).
//!
//! This is the implementation the crate shipped before the hot-path
//! overhaul: `HashMap`/`HashSet`/`BTreeMap` storage keyed directly by
//! [`ObjectId`], with no interning and no flat adjacency. It is simple
//! enough to audit by eye, which is exactly what an oracle needs to be.
//! Property tests drive identical event streams through both graphs and
//! assert that snapshots, histograms, and all seven metrics agree.
//!
//! Compiled only for tests or under the `reference-graph` feature; it
//! never ships in the release hot path.

use crate::histogram::DegreeHistogram;
use crate::metrics::MetricVector;
use crate::GraphSnapshot;
use sim_heap::{Addr, HeapEvent, ObjectId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One pointer slot's state as the graph sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotState {
    /// Raw stored address.
    raw: u64,
    /// The live object it currently resolves to, if any.
    target: Option<ObjectId>,
}

/// The pre-optimization map-based heap-graph (differential oracle).
///
/// Mirrors the mutating and observing API of
/// [`HeapGraph`](crate::HeapGraph) exactly; see that type for the
/// semantics. Kept deliberately naive — every container is a std map
/// keyed by `ObjectId` or address.
#[derive(Debug, Clone, Default)]
pub struct ReferenceGraph {
    nodes: HashMap<ObjectId, NodeState>,
    /// Live objects keyed by start address, for pointer resolution.
    ranges: BTreeMap<u64, (ObjectId, usize)>,
    /// Reverse map: vertex → start address (for O(log n) frees).
    starts: HashMap<ObjectId, u64>,
    /// Per-source pointer slots: offset → state.
    out_slots: HashMap<ObjectId, BTreeMap<u64, SlotState>>,
    /// Reverse edges: target → set of (source, offset).
    inbound: HashMap<ObjectId, HashSet<(ObjectId, u64)>>,
    /// Slots whose raw address resolves to no live object, keyed by that
    /// address so allocations can re-bind them by range scan.
    unresolved: BTreeMap<u64, HashSet<(ObjectId, u64)>>,
    histogram: DegreeHistogram,
    edge_count: u64,
    dangling: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    indegree: u32,
    outdegree: u32,
}

impl ReferenceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ReferenceGraph::default()
    }

    /// Live vertexes.
    pub fn node_count(&self) -> u64 {
        self.histogram.nodes()
    }

    /// Resolved heap-to-heap edges (with multiplicity).
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Pointer slots currently dangling.
    pub fn dangling_count(&self) -> u64 {
        self.dangling
    }

    /// In/out degree for a live vertex as `(indegree, outdegree)`.
    pub fn degrees(&self, id: ObjectId) -> Option<(u32, u32)> {
        self.nodes.get(&id).map(|n| (n.indegree, n.outdegree))
    }

    /// Returns `true` if `id` is a live vertex.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// The degree histogram.
    pub fn histogram(&self) -> &DegreeHistogram {
        &self.histogram
    }

    /// Computes the seven paper metrics for the current graph.
    pub fn metrics(&self) -> MetricVector {
        MetricVector::from_histogram(&self.histogram)
    }

    /// A serializable summary of the current instant.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            nodes: self.node_count(),
            edges: self.edge_count,
            dangling: self.dangling,
            metrics: self.metrics(),
        }
    }

    /// Applies one instrumentation event.
    pub fn apply(&mut self, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc {
                obj, addr, size, ..
            } => self.on_alloc(obj, addr, size),
            HeapEvent::Free { obj, .. } => self.on_free(obj),
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => self.on_ptr_write(src, offset, value),
            HeapEvent::ScalarWrite { src, offset, .. } => self.on_scalar_write(src, offset),
            HeapEvent::Read { .. } | HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    /// Adds a vertex for a fresh allocation and re-binds dangling slots.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already live.
    pub fn on_alloc(&mut self, id: ObjectId, addr: Addr, size: usize) {
        let prev = self.nodes.insert(id, NodeState::default());
        assert!(prev.is_none(), "duplicate allocation of {id}");
        self.ranges.insert(addr.get(), (id, size));
        self.starts.insert(id, addr.get());
        self.histogram.add_node();

        let start = addr.get();
        let end = start + size as u64;
        let hits: Vec<u64> = self.unresolved.range(start..end).map(|(&a, _)| a).collect();
        for raw in hits {
            let slots = self.unresolved.remove(&raw).expect("key just seen");
            for (src, off) in slots {
                let st = self
                    .out_slots
                    .get_mut(&src)
                    .and_then(|m| m.get_mut(&off))
                    .expect("unresolved slot must exist in slot table");
                debug_assert_eq!(st.target, None);
                st.target = Some(id);
                self.dangling -= 1;
                self.edge_count += 1;
                self.inbound.entry(id).or_default().insert((src, off));
                if src == id {
                    self.adjust(id, 1, 1);
                } else {
                    self.adjust(src, 0, 1);
                    self.adjust(id, 1, 0);
                }
            }
        }
    }

    /// Removes a vertex; in-edges become dangling slots of their sources.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn on_free(&mut self, id: ObjectId) {
        let info = self
            .nodes
            .remove(&id)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        self.histogram.remove_node(info.indegree, info.outdegree);
        let start = self.starts.remove(&id).expect("live vertex has a range");
        self.ranges.remove(&start);

        if let Some(slots) = self.out_slots.remove(&id) {
            for (off, st) in slots {
                match st.target {
                    Some(t) => {
                        self.edge_count -= 1;
                        if t != id {
                            if let Some(set) = self.inbound.get_mut(&t) {
                                set.remove(&(id, off));
                            }
                            self.adjust(t, -1, 0);
                        }
                        // Self-edge: both endpoints die with the node.
                    }
                    None => {
                        self.remove_unresolved(st.raw, id, off);
                        self.dangling -= 1;
                    }
                }
            }
        }

        if let Some(srcs) = self.inbound.remove(&id) {
            for (src, off) in srcs {
                if src == id {
                    continue; // handled with the out-slots above
                }
                let st = self
                    .out_slots
                    .get_mut(&src)
                    .and_then(|m| m.get_mut(&off))
                    .expect("inbound edge has a source slot");
                debug_assert_eq!(st.target, Some(id));
                st.target = None;
                self.edge_count -= 1;
                self.dangling += 1;
                let raw = st.raw;
                self.unresolved.entry(raw).or_default().insert((src, off));
                self.adjust(src, 0, -1);
            }
        }
    }

    /// Records a pointer store: slot `(src, offset)` now holds `value`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a live vertex.
    pub fn on_ptr_write(&mut self, src: ObjectId, offset: u64, value: Addr) {
        assert!(self.nodes.contains_key(&src), "write into unknown {src}");
        self.drop_slot(src, offset);
        if value.is_null() {
            return;
        }
        let raw = value.get();
        let target = self.resolve(raw);
        self.out_slots
            .entry(src)
            .or_default()
            .insert(offset, SlotState { raw, target });
        match target {
            Some(t) => {
                self.edge_count += 1;
                self.inbound.entry(t).or_default().insert((src, offset));
                if t == src {
                    self.adjust(src, 1, 1);
                } else {
                    self.adjust(src, 0, 1);
                    self.adjust(t, 1, 0);
                }
            }
            None => {
                self.dangling += 1;
                self.unresolved
                    .entry(raw)
                    .or_default()
                    .insert((src, offset));
            }
        }
    }

    /// Records a non-pointer store, clearing any pointer in the slot.
    pub fn on_scalar_write(&mut self, src: ObjectId, offset: u64) {
        if self.nodes.contains_key(&src) {
            self.drop_slot(src, offset);
        }
    }

    fn resolve(&self, raw: u64) -> Option<ObjectId> {
        let (&start, &(id, size)) = self.ranges.range(..=raw).next_back()?;
        (raw < start + size as u64).then_some(id)
    }

    fn adjust(&mut self, id: ObjectId, din: i32, dout: i32) {
        let info = self.nodes.get_mut(&id).expect("adjust on live node");
        let (old_in, old_out) = (info.indegree, info.outdegree);
        info.indegree = info
            .indegree
            .checked_add_signed(din)
            .expect("indegree underflow");
        info.outdegree = info
            .outdegree
            .checked_add_signed(dout)
            .expect("outdegree underflow");
        let (new_in, new_out) = (info.indegree, info.outdegree);
        self.histogram
            .change_degrees(old_in, new_in, old_out, new_out);
    }

    fn drop_slot(&mut self, src: ObjectId, offset: u64) {
        let Some(slots) = self.out_slots.get_mut(&src) else {
            return;
        };
        let Some(st) = slots.remove(&offset) else {
            return;
        };
        if slots.is_empty() {
            self.out_slots.remove(&src);
        }
        match st.target {
            Some(t) => {
                self.edge_count -= 1;
                if let Some(set) = self.inbound.get_mut(&t) {
                    set.remove(&(src, offset));
                    if set.is_empty() {
                        self.inbound.remove(&t);
                    }
                }
                if t == src {
                    self.adjust(src, -1, -1);
                } else {
                    self.adjust(src, 0, -1);
                    self.adjust(t, -1, 0);
                }
            }
            None => {
                self.dangling -= 1;
                self.remove_unresolved(st.raw, src, offset);
            }
        }
    }

    fn remove_unresolved(&mut self, raw: u64, src: ObjectId, off: u64) {
        if let Some(set) = self.unresolved.get_mut(&raw) {
            set.remove(&(src, off));
            if set.is_empty() {
                self.unresolved.remove(&raw);
            }
        }
    }
}
