//! Site-scoped heap-graph views — the §4.4 limitation the paper leaves
//! open.
//!
//! "HeapMD could restrict attention to data members of a particular
//! type, and only compute metrics over these data members" (§4.4).
//! Without type information, allocation sites are the natural type
//! proxy: all objects born at `SimDList::push_back` *are* list nodes.
//!
//! [`ScopedGraph`] maintains a second heap-graph image restricted to a
//! set of member allocation sites: vertexes are member objects only,
//! and edges are member→member pointers. Degree metrics over this view
//! are *per-structure* metrics — a malformed list shifts its own view's
//! indegree profile by tens of points even when it is a sliver of the
//! whole heap, at the cost of the per-structure false-positive surface
//! the paper avoided (§4.5).

use crate::graph::HeapGraph;
use crate::metrics::MetricVector;
use sim_heap::{AllocSite, HeapEvent, ObjectId};
use std::collections::HashSet;

/// A heap-graph image restricted to objects from member allocation
/// sites.
///
/// Feed it the same event stream as the global graph; non-member
/// events are ignored, and pointers from members to non-members count
/// as dangling (their targets are outside the scope), mirroring how a
/// per-type analysis sees foreign references.
///
/// # Example
///
/// ```
/// use heap_graph::ScopedGraph;
/// use sim_heap::{AllocSite, SimHeap};
///
/// # fn main() -> Result<(), sim_heap::HeapError> {
/// let mut heap = SimHeap::new();
/// let mut scoped = ScopedGraph::new([AllocSite(1)]);
/// let member = heap.alloc(16, AllocSite(1))?;
/// let foreign = heap.alloc(16, AllocSite(2))?;
/// scoped.on_alloc(member.id, member.addr, member.size, AllocSite(1));
/// scoped.on_alloc(foreign.id, foreign.addr, foreign.size, AllocSite(2));
/// assert_eq!(scoped.node_count(), 1, "only the member is a vertex");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScopedGraph {
    inner: HeapGraph,
    sites: HashSet<AllocSite>,
    members: HashSet<ObjectId>,
}

impl ScopedGraph {
    /// Creates a view scoped to the given member sites.
    pub fn new(sites: impl IntoIterator<Item = AllocSite>) -> Self {
        ScopedGraph {
            inner: HeapGraph::new(),
            sites: sites.into_iter().collect(),
            members: HashSet::new(),
        }
    }

    /// Member vertexes currently live.
    pub fn node_count(&self) -> u64 {
        self.inner.node_count()
    }

    /// Member→member edges.
    pub fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    /// Member slots pointing outside the scope (or dangling).
    pub fn foreign_or_dangling(&self) -> u64 {
        self.inner.dangling_count()
    }

    /// The seven paper metrics over the member vertexes only.
    pub fn metrics(&self) -> MetricVector {
        self.inner.metrics()
    }

    /// Returns `true` when `site` is in the scope.
    pub fn covers(&self, site: AllocSite) -> bool {
        self.sites.contains(&site)
    }

    /// Applies one instrumentation event, filtering to the scope.
    pub fn apply(&mut self, event: &HeapEvent) {
        match *event {
            HeapEvent::Alloc {
                obj,
                addr,
                size,
                site,
            } => self.on_alloc(obj, addr, size, site),
            HeapEvent::Free { obj, .. } => self.on_free(obj),
            HeapEvent::PtrWrite {
                src, offset, value, ..
            } => self.on_ptr_write(src, offset, value),
            HeapEvent::ScalarWrite { src, offset, .. } => self.on_scalar_write(src, offset),
            HeapEvent::Read { .. } | HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    /// Records an allocation (vertex added only for member sites).
    pub fn on_alloc(&mut self, obj: ObjectId, addr: sim_heap::Addr, size: usize, site: AllocSite) {
        if self.sites.contains(&site) {
            self.members.insert(obj);
            self.inner.on_alloc(obj, addr, size);
        }
    }

    /// Records a free (ignored for non-members).
    pub fn on_free(&mut self, obj: ObjectId) {
        if self.members.remove(&obj) {
            self.inner.on_free(obj);
        }
    }

    /// Records a pointer store (ignored unless the source is a member;
    /// a non-member target leaves the slot dangling in this view).
    pub fn on_ptr_write(&mut self, src: ObjectId, offset: u64, value: sim_heap::Addr) {
        if self.members.contains(&src) {
            self.inner.on_ptr_write(src, offset, value);
        }
    }

    /// Records a scalar store (ignored for non-members).
    pub fn on_scalar_write(&mut self, src: ObjectId, offset: u64) {
        if self.members.contains(&src) {
            self.inner.on_scalar_write(src, offset);
        }
    }

    /// Consistency check of the underlying image.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.inner.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKind;
    use sim_heap::{Addr, SimHeap};

    const MEMBER: AllocSite = AllocSite(1);
    const OTHER: AllocSite = AllocSite(2);

    struct Rig {
        heap: SimHeap,
        scoped: ScopedGraph,
        global: HeapGraph,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                heap: SimHeap::new(),
                scoped: ScopedGraph::new([MEMBER]),
                global: HeapGraph::new(),
            }
        }
        fn alloc(&mut self, site: AllocSite) -> Addr {
            let eff = self.heap.alloc(16, site).unwrap();
            self.scoped.on_alloc(eff.id, eff.addr, eff.size, site);
            self.global.on_alloc(eff.id, eff.addr, eff.size);
            eff.addr
        }
        fn link(&mut self, src: Addr, dst: Addr) {
            let eff = self.heap.write_ptr(src.offset(8), dst).unwrap();
            self.scoped.on_ptr_write(eff.src, eff.offset, dst);
            self.global.on_ptr_write(eff.src, eff.offset, dst);
        }
    }

    #[test]
    fn only_member_objects_are_vertexes() {
        let mut r = Rig::new();
        r.alloc(MEMBER);
        r.alloc(OTHER);
        r.alloc(OTHER);
        assert_eq!(r.scoped.node_count(), 1);
        assert_eq!(r.global.node_count(), 3);
        assert!(r.scoped.covers(MEMBER));
        assert!(!r.scoped.covers(OTHER));
    }

    #[test]
    fn member_to_foreign_edges_are_foreign() {
        let mut r = Rig::new();
        let m = r.alloc(MEMBER);
        let o = r.alloc(OTHER);
        r.link(m, o);
        assert_eq!(r.scoped.edge_count(), 0);
        assert_eq!(r.scoped.foreign_or_dangling(), 1);
        assert_eq!(r.global.edge_count(), 1);
        r.scoped.validate().unwrap();
    }

    #[test]
    fn scoped_metrics_expose_a_buried_structure_shift() {
        // A 10-node member chain inside a sea of 200 foreign leaves:
        // the member view's Indeg=1 is 90 %, while globally the chain
        // barely registers.
        let mut r = Rig::new();
        let members: Vec<Addr> = (0..10).map(|_| r.alloc(MEMBER)).collect();
        for _ in 0..200 {
            r.alloc(OTHER);
        }
        for w in members.windows(2) {
            r.link(w[0], w[1]);
        }
        let scoped = r.scoped.metrics().get(MetricKind::Indeg1);
        let global = r.global.metrics().get(MetricKind::Indeg1);
        assert_eq!(scoped, 90.0);
        assert!(global < 5.0, "globally the chain is buried: {global:.1}");
    }

    #[test]
    fn freeing_foreign_objects_is_a_noop_for_the_view() {
        let mut r = Rig::new();
        let m = r.alloc(MEMBER);
        let o = r.alloc(OTHER);
        let eff = r.heap.free(o).unwrap();
        r.scoped.on_free(eff.id);
        r.global.on_free(eff.id);
        assert_eq!(r.scoped.node_count(), 1);
        let eff = r.heap.free(m).unwrap();
        r.scoped.on_free(eff.id);
        assert_eq!(r.scoped.node_count(), 0);
        r.scoped.validate().unwrap();
    }

    #[test]
    fn apply_filters_the_event_stream() {
        let mut heap = SimHeap::new();
        let mut scoped = ScopedGraph::new([MEMBER]);
        let m = heap.alloc(16, MEMBER).unwrap();
        let o = heap.alloc(16, OTHER).unwrap();
        for (obj, site, addr, size) in [
            (m.id, MEMBER, m.addr, m.size),
            (o.id, OTHER, o.addr, o.size),
        ] {
            scoped.apply(&HeapEvent::Alloc {
                obj,
                addr,
                size,
                site,
            });
        }
        scoped.apply(&HeapEvent::PtrWrite {
            src: o.id,
            offset: 0,
            value: m.addr,
            old_value: None,
        });
        assert_eq!(scoped.node_count(), 1);
        assert_eq!(scoped.edge_count(), 0, "foreign sources are ignored");
        scoped.apply(&HeapEvent::ScalarWrite {
            src: o.id,
            offset: 0,
            old_value: None,
        });
        scoped.validate().unwrap();
    }
}
