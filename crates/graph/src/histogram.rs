//! Incremental degree histograms.

use serde::{Deserialize, Serialize};

/// Degrees at or above this value share one saturation bucket.
///
/// The paper observes that heap-graph vertexes "typically have low
/// indegrees and outdegrees (only rarely exceeding 2)", and its metrics
/// only distinguish degrees 0, 1, and 2 — so a modest saturation bound
/// loses nothing while keeping the histogram a flat array.
const SATURATION: usize = 64;

/// The public saturation bound: degrees at or above this value are
/// indistinguishable in the histogram (and in everything derived from
/// it, such as [`DegreeDistribution`](crate::DegreeDistribution)).
pub const DEGREE_SATURATION: u32 = SATURATION as u32;

/// Histogram of vertex degrees, maintained incrementally.
///
/// Tracks, for each degree value (saturated at an internal bound), how
/// many vertexes currently have that indegree and outdegree, plus the
/// count of vertexes with indegree = outdegree. All seven paper metrics
/// derive from these counters in O(1).
///
/// # Example
///
/// ```
/// use heap_graph::DegreeHistogram;
///
/// let mut h = DegreeHistogram::new();
/// h.add_node();
/// h.add_node();
/// h.change_degrees(0, 0, 0, 1); // one node gains an out-edge
/// h.change_degrees(0, 1, 0, 0); // the other gains an in-edge
/// assert_eq!(h.nodes(), 2);
/// assert_eq!(h.with_indegree(0), 1);
/// assert_eq!(h.with_outdegree(1), 1);
/// assert_eq!(h.in_eq_out(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    indeg: Vec<u64>,
    outdeg: Vec<u64>,
    nodes: u64,
    in_eq_out: u64,
}

impl Default for DegreeHistogram {
    fn default() -> Self {
        DegreeHistogram::new()
    }
}

fn bucket(deg: u32) -> usize {
    (deg as usize).min(SATURATION)
}

impl DegreeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DegreeHistogram {
            indeg: vec![0; SATURATION + 1],
            outdeg: vec![0; SATURATION + 1],
            nodes: 0,
            in_eq_out: 0,
        }
    }

    /// Total vertexes.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Vertexes whose indegree is exactly `deg` (for `deg` below the
    /// saturation bound; at the bound, "at least `deg`").
    pub fn with_indegree(&self, deg: u32) -> u64 {
        self.indeg[bucket(deg)]
    }

    /// Vertexes whose outdegree is exactly `deg` (same saturation note
    /// as [`with_indegree`](Self::with_indegree)).
    pub fn with_outdegree(&self, deg: u32) -> u64 {
        self.outdeg[bucket(deg)]
    }

    /// Vertexes with indegree = outdegree.
    pub fn in_eq_out(&self) -> u64 {
        self.in_eq_out
    }

    /// The raw indegree bucket counts: index `d` holds the number of
    /// vertexes with indegree `d`, except the last bucket, which holds
    /// all vertexes at or above the saturation bound.
    pub fn indegree_counts(&self) -> &[u64] {
        &self.indeg
    }

    /// The raw outdegree bucket counts (same layout as
    /// [`indegree_counts`](Self::indegree_counts)).
    pub fn outdegree_counts(&self) -> &[u64] {
        &self.outdeg
    }

    /// Registers a fresh vertex (degrees 0/0).
    pub fn add_node(&mut self) {
        self.nodes += 1;
        self.indeg[0] += 1;
        self.outdeg[0] += 1;
        self.in_eq_out += 1;
    }

    /// Removes a vertex that currently has the given degrees.
    pub fn remove_node(&mut self, indegree: u32, outdegree: u32) {
        debug_assert!(self.nodes > 0);
        self.nodes -= 1;
        self.indeg[bucket(indegree)] -= 1;
        self.outdeg[bucket(outdegree)] -= 1;
        if indegree == outdegree {
            self.in_eq_out -= 1;
        }
    }

    /// Moves a vertex from degrees `(old_in, old_out)` to
    /// `(new_in, new_out)`.
    pub fn change_degrees(&mut self, old_in: u32, new_in: u32, old_out: u32, new_out: u32) {
        if old_in != new_in {
            self.indeg[bucket(old_in)] -= 1;
            self.indeg[bucket(new_in)] += 1;
        }
        if old_out != new_out {
            self.outdeg[bucket(old_out)] -= 1;
            self.outdeg[bucket(new_out)] += 1;
        }
        match (old_in == old_out, new_in == new_out) {
            (true, false) => self.in_eq_out -= 1,
            (false, true) => self.in_eq_out += 1,
            _ => {}
        }
    }

    /// Folds another histogram into this one.
    ///
    /// Every counter is additive over disjoint vertex sets, so merging
    /// per-shard histograms built from a partition of the graph yields
    /// exactly the histogram the unsharded graph would have — this is
    /// the reconciliation step for
    /// [`ShardedGraph`](crate::ShardedGraph).
    pub fn merge(&mut self, other: &DegreeHistogram) {
        for (a, b) in self.indeg.iter_mut().zip(&other.indeg) {
            *a += b;
        }
        for (a, b) in self.outdeg.iter_mut().zip(&other.outdeg) {
            *a += b;
        }
        self.nodes += other.nodes;
        self.in_eq_out += other.in_eq_out;
    }

    /// Percentage (0–100) of vertexes with the given indegree. Returns
    /// 0 for an empty graph.
    pub fn pct_indegree(&self, deg: u32) -> f64 {
        pct(self.with_indegree(deg), self.nodes)
    }

    /// Percentage (0–100) of vertexes with the given outdegree.
    pub fn pct_outdegree(&self, deg: u32) -> f64 {
        pct(self.with_outdegree(deg), self.nodes)
    }

    /// Percentage (0–100) of vertexes with indegree = outdegree.
    pub fn pct_in_eq_out(&self) -> f64 {
        pct(self.in_eq_out, self.nodes)
    }
}

fn pct(count: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        count as f64 * 100.0 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero_percentages() {
        let h = DegreeHistogram::new();
        assert_eq!(h.nodes(), 0);
        assert_eq!(h.pct_indegree(0), 0.0);
        assert_eq!(h.pct_in_eq_out(), 0.0);
    }

    #[test]
    fn add_and_remove_node_roundtrip() {
        let mut h = DegreeHistogram::new();
        h.add_node();
        assert_eq!(h.nodes(), 1);
        assert_eq!(h.with_indegree(0), 1);
        assert_eq!(h.in_eq_out(), 1);
        h.remove_node(0, 0);
        assert_eq!(h, DegreeHistogram::new());
    }

    #[test]
    fn change_degrees_moves_buckets_and_tracks_balance() {
        let mut h = DegreeHistogram::new();
        h.add_node();
        h.change_degrees(0, 1, 0, 0); // gains an in-edge: unbalanced
        assert_eq!(h.with_indegree(1), 1);
        assert_eq!(h.with_indegree(0), 0);
        assert_eq!(h.in_eq_out(), 0);
        h.change_degrees(1, 1, 0, 1); // gains an out-edge: balanced again
        assert_eq!(h.in_eq_out(), 1);
        h.change_degrees(1, 0, 1, 1); // loses the in-edge
        assert_eq!(h.in_eq_out(), 0);
        assert_eq!(h.with_indegree(0), 1);
    }

    #[test]
    fn degrees_saturate_without_panicking() {
        let mut h = DegreeHistogram::new();
        h.add_node();
        h.change_degrees(0, 1000, 0, 2000);
        assert_eq!(h.with_indegree(1000), 1);
        assert_eq!(h.with_indegree(5000), 1, "saturated bucket is shared");
        h.remove_node(1000, 2000);
        assert_eq!(h.nodes(), 0);
    }

    #[test]
    fn percentages_sum_to_100_over_degree_range() {
        let mut h = DegreeHistogram::new();
        for i in 0..10u32 {
            h.add_node();
            h.change_degrees(0, i % 3, 0, 0);
        }
        let total: f64 = (0..3).map(|d| h.pct_indegree(d)).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }
}
