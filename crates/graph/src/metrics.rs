//! The seven degree-based heap metrics of the paper, plus extensions.

use crate::histogram::DegreeHistogram;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of paper metrics (the fixed suite of §2.1).
pub const METRIC_COUNT: usize = 7;

/// One of the seven degree-based metrics HeapMD computes (§2.1).
///
/// Each is the *percentage of heap-graph vertexes* with the stated
/// degree property. The paper chose these because heap vertexes rarely
/// exceed degree 2; the architecture (and this enum) is explicitly meant
/// to be extensible — see [`ExtendedMetrics`] for the extras this
/// reproduction also tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// % of vertexes with indegree = 0 ("roots": referenced only from the
    /// stack and globals, or leaked).
    Roots,
    /// % of vertexes with indegree = 1.
    Indeg1,
    /// % of vertexes with indegree = 2.
    Indeg2,
    /// % of vertexes with outdegree = 0 ("leaves").
    Leaves,
    /// % of vertexes with outdegree = 1.
    Outdeg1,
    /// % of vertexes with outdegree = 2.
    Outdeg2,
    /// % of vertexes with indegree = outdegree.
    InEqOut,
}

impl MetricKind {
    /// All seven metrics, in canonical order.
    pub const ALL: [MetricKind; METRIC_COUNT] = [
        MetricKind::Roots,
        MetricKind::Indeg1,
        MetricKind::Indeg2,
        MetricKind::Leaves,
        MetricKind::Outdeg1,
        MetricKind::Outdeg2,
        MetricKind::InEqOut,
    ];

    /// The metric's index in canonical order (0–6).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The metric at canonical index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= METRIC_COUNT`.
    pub fn from_index(i: usize) -> MetricKind {
        MetricKind::ALL[i]
    }

    /// The short name used in the paper's tables (e.g. `Outdeg=1`,
    /// `Leaves`, `In=Out`).
    pub fn short_name(self) -> &'static str {
        match self {
            MetricKind::Roots => "Root",
            MetricKind::Indeg1 => "Indeg=1",
            MetricKind::Indeg2 => "Indeg=2",
            MetricKind::Leaves => "Leaves",
            MetricKind::Outdeg1 => "Outdeg=1",
            MetricKind::Outdeg2 => "Outdeg=2",
            MetricKind::InEqOut => "In=Out",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The values of all seven metrics at one metric computation point.
///
/// # Example
///
/// ```
/// use heap_graph::{MetricKind, MetricVector};
///
/// let mut v = MetricVector::zero();
/// v.set(MetricKind::Leaves, 87.5);
/// assert_eq!(v.get(MetricKind::Leaves), 87.5);
/// assert_eq!(v[MetricKind::Roots], 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricVector([f64; METRIC_COUNT]);

impl MetricVector {
    /// The all-zero vector (an empty heap).
    pub fn zero() -> Self {
        MetricVector([0.0; METRIC_COUNT])
    }

    /// Builds a vector from values in canonical metric order.
    pub fn from_array(values: [f64; METRIC_COUNT]) -> Self {
        MetricVector(values)
    }

    /// Reads one metric.
    pub fn get(&self, kind: MetricKind) -> f64 {
        self.0[kind.index()]
    }

    /// Writes one metric.
    pub fn set(&mut self, kind: MetricKind, value: f64) {
        self.0[kind.index()] = value;
    }

    /// The raw values in canonical metric order.
    pub fn as_array(&self) -> &[f64; METRIC_COUNT] {
        &self.0
    }

    /// Iterates `(kind, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricKind, f64)> + '_ {
        MetricKind::ALL.iter().map(move |&k| (k, self.0[k.index()]))
    }

    /// Computes the vector from a degree histogram.
    pub fn from_histogram(h: &DegreeHistogram) -> Self {
        MetricVector([
            h.pct_indegree(0),
            h.pct_indegree(1),
            h.pct_indegree(2),
            h.pct_outdegree(0),
            h.pct_outdegree(1),
            h.pct_outdegree(2),
            h.pct_in_eq_out(),
        ])
    }
}

impl Index<MetricKind> for MetricVector {
    type Output = f64;
    fn index(&self, kind: MetricKind) -> &f64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<MetricKind> for MetricVector {
    fn index_mut(&mut self, kind: MetricKind) -> &mut f64 {
        &mut self.0[kind.index()]
    }
}

impl fmt::Display for MetricVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}:{v:.1}")?;
            first = false;
        }
        Ok(())
    }
}

/// Metrics beyond the paper's fixed suite of seven.
///
/// The paper names "the size and number of connected and strongly
/// connected components" as other metric choices; this reproduction
/// additionally surfaces structural counters that fall out of the
/// incremental representation for free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtendedMetrics {
    /// Live vertexes.
    pub nodes: u64,
    /// Resolved heap-to-heap edges.
    pub edges: u64,
    /// Pointer slots whose stored address does not currently resolve to
    /// a live object (dangling or foreign).
    pub dangling_slots: u64,
    /// Mean outdegree over vertexes (0 for the empty graph).
    pub mean_degree: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_round_trips() {
        for (i, &k) in MetricKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(MetricKind::from_index(i), k);
        }
    }

    #[test]
    fn short_names_match_paper_tables() {
        assert_eq!(MetricKind::Outdeg1.short_name(), "Outdeg=1");
        assert_eq!(MetricKind::InEqOut.short_name(), "In=Out");
        assert_eq!(MetricKind::Leaves.to_string(), "Leaves");
    }

    #[test]
    fn vector_get_set_index() {
        let mut v = MetricVector::zero();
        v[MetricKind::Indeg2] = 12.5;
        assert_eq!(v.get(MetricKind::Indeg2), 12.5);
        v.set(MetricKind::Roots, 3.0);
        assert_eq!(v[MetricKind::Roots], 3.0);
        assert_eq!(v.iter().count(), METRIC_COUNT);
    }

    #[test]
    fn from_histogram_matches_manual_computation() {
        let mut h = DegreeHistogram::new();
        // 4 nodes: two 0/0, one 1/0, one 0/1.
        for _ in 0..4 {
            h.add_node();
        }
        h.change_degrees(0, 1, 0, 0);
        h.change_degrees(0, 0, 0, 1);
        let v = MetricVector::from_histogram(&h);
        assert_eq!(v.get(MetricKind::Roots), 75.0);
        assert_eq!(v.get(MetricKind::Indeg1), 25.0);
        assert_eq!(v.get(MetricKind::Leaves), 75.0);
        assert_eq!(v.get(MetricKind::Outdeg1), 25.0);
        assert_eq!(v.get(MetricKind::InEqOut), 50.0);
    }

    #[test]
    fn vector_serializes() {
        let v = MetricVector::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let json = serde_json::to_string(&v).expect("serialize");
        let back: MetricVector = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(v, back);
    }

    #[test]
    fn display_is_compact() {
        let v = MetricVector::zero();
        let s = v.to_string();
        assert!(s.contains("Root:0.0"));
        assert!(s.contains("In=Out:0.0"));
    }
}
