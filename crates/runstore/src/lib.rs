//! # heapmd-runstore — columnar cross-run metric store
//!
//! The observability plane's durable layer: one row per *metric
//! computation point* (or per run-level rollup), appended across many
//! runs, versions, and tenants, and queried column-at-a-time without
//! deserializing whole runs.
//!
//! ## Layout
//!
//! A store is a directory of immutable **segment** files
//! (`seg-NNNNNNNN.hmdr`). Each append writes one new segment
//! atomically (temp sibling + rename, see [`persist`]), so readers
//! never observe a torn segment and concurrent readers need no locks.
//!
//! A segment is column-major:
//!
//! ```text
//! "HMDR1\n"                                  file magic
//! block*                                     one per column
//!   name_len varint, name bytes
//!   encoding u8                              0=u64 delta, 1=f64 xor, 2=string dict
//!   rows varint
//!   payload_len varint, payload bytes
//!   crc32 (LE)                               over the block from name_len..payload end
//! footer payload                             column name -> (offset, len) index
//! footer_len u32 LE | footer_crc u32 LE | "RDMH"   fixed 12-byte tail
//! ```
//!
//! Reads seek the 12-byte tail, load the footer index, then fetch only
//! the projected columns — a cross-version drift query over thousands
//! of runs touches the one metric column plus the dimension columns it
//! filters on. Every block carries its own CRC, so a damaged block
//! loses only that column; if the footer itself is damaged the reader
//! falls back to a head-to-tail salvage walk that recovers every block
//! before the damage ([`segment::read_segment`]).
//!
//! ## Schema
//!
//! Dimension columns are fixed ([`store::DIMENSION_COLUMNS`]); metric
//! columns are named by the caller (the detector's candidate metric
//! ids, e.g. `paper.roots` or `dist.in_entropy`). The store itself has
//! no metric vocabulary — absent metrics decode as NaN and are skipped
//! by the aggregations in [`query`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;
pub mod query;
pub mod segment;
pub mod store;
mod varint;

pub use query::{drift_by_version, percentile, MetricStats, VersionDrift};
pub use segment::{read_segment, write_segment, Column, SegmentData, ENCODING_NAMES};
pub use store::{
    RowFilter, RowKind, RunRow, RunStore, ScanOutcome, DIMENSION_COLUMNS, SEGMENT_MAGIC,
};

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors surfaced by store and segment operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A segment (or part of one) failed structural validation.
    Corrupt {
        /// File the corruption was detected in.
        path: PathBuf,
        /// Human-readable description of what failed to parse.
        detail: String,
    },
}

impl StoreError {
    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "run-store I/O error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt run-store segment {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
