//! Segment file codec: column-major blocks with per-block CRCs, a
//! seekable footer index, and a head-to-tail salvage walk for damaged
//! footers.
//!
//! Encodings (chosen per column type, recorded per block so segments
//! are self-describing):
//!
//! * `0` — u64, zigzag(delta) varints. Sequence numbers, timestamps,
//!   and node counts drift slowly, so deltas are tiny.
//! * `1` — f64, XOR of consecutive bit patterns as varints. Stable
//!   metrics repeat or share high bits, zeroing the XOR's low bytes.
//! * `2` — string dictionary: unique values once, then one varint
//!   index per row. Workload/tenant/kind columns have tiny alphabets.

use crate::persist::crc32;
use crate::varint::{get_u64, put_u64, unzigzag, zigzag};
use crate::StoreError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// Human-readable names for the three block encodings, indexed by the
/// on-disk encoding byte (used by `heapmd query --describe` output).
pub const ENCODING_NAMES: [&str; 3] = ["u64-delta", "f64-xor", "str-dict"];

const ENC_U64_DELTA: u8 = 0;
const ENC_F64_XOR: u8 = 1;
const ENC_STR_DICT: u8 = 2;

/// Fixed-length tail: footer_len u32 LE, footer_crc u32 LE, tail magic.
const TAIL_LEN: usize = 12;
const TAIL_MAGIC: &[u8; 4] = b"RDMH";

/// A decoded column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Unsigned integer column (versions, counters, timestamps).
    U64(Vec<u64>),
    /// Metric value column. Absent-in-this-row is encoded as NaN.
    F64(Vec<f64>),
    /// Low-cardinality string column (workload, run, tenant, kind).
    Str(Vec<String>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A decoded segment: named columns plus how the read was achieved.
#[derive(Debug)]
pub struct SegmentData {
    /// Column name → data, in on-disk block order.
    pub columns: Vec<(String, Column)>,
    /// Rows per column (all columns agree).
    pub rows: usize,
    /// True when the footer was unusable and the segment was recovered
    /// by the sequential salvage walk instead.
    pub salvaged: bool,
    /// Blocks skipped because their CRC failed (footer-indexed reads
    /// can skip just the damaged column; salvage stops at the first).
    pub damaged_blocks: usize,
}

fn encode_column(col: &Column) -> (u8, Vec<u8>) {
    let mut payload = Vec::new();
    match col {
        Column::U64(vals) => {
            let mut prev = 0u64;
            for &v in vals {
                put_u64(&mut payload, zigzag(v.wrapping_sub(prev) as i64));
                prev = v;
            }
            (ENC_U64_DELTA, payload)
        }
        Column::F64(vals) => {
            let mut prev = 0u64;
            for &v in vals {
                let bits = v.to_bits();
                put_u64(&mut payload, bits ^ prev);
                prev = bits;
            }
            (ENC_F64_XOR, payload)
        }
        Column::Str(vals) => {
            let mut dict: Vec<&str> = Vec::new();
            let mut indices = Vec::with_capacity(vals.len());
            for v in vals {
                let idx = match dict.iter().position(|d| d == v) {
                    Some(i) => i,
                    None => {
                        dict.push(v);
                        dict.len() - 1
                    }
                };
                indices.push(idx as u64);
            }
            put_u64(&mut payload, dict.len() as u64);
            for entry in &dict {
                put_u64(&mut payload, entry.len() as u64);
                payload.extend_from_slice(entry.as_bytes());
            }
            for idx in indices {
                put_u64(&mut payload, idx);
            }
            (ENC_STR_DICT, payload)
        }
    }
}

fn decode_column(enc: u8, rows: usize, payload: &[u8]) -> Result<Column, String> {
    let mut pos = 0;
    let col = match enc {
        ENC_U64_DELTA => {
            let mut vals = Vec::with_capacity(rows);
            let mut prev = 0u64;
            for _ in 0..rows {
                let d = get_u64(payload, &mut pos).ok_or("truncated u64 delta")?;
                prev = prev.wrapping_add(unzigzag(d) as u64);
                vals.push(prev);
            }
            Column::U64(vals)
        }
        ENC_F64_XOR => {
            let mut vals = Vec::with_capacity(rows);
            let mut prev = 0u64;
            for _ in 0..rows {
                let x = get_u64(payload, &mut pos).ok_or("truncated f64 xor")?;
                prev ^= x;
                vals.push(f64::from_bits(prev));
            }
            Column::F64(vals)
        }
        ENC_STR_DICT => {
            let dict_len = get_u64(payload, &mut pos).ok_or("truncated dict length")? as usize;
            if dict_len > payload.len() {
                return Err(format!("dict length {dict_len} exceeds payload"));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let len = get_u64(payload, &mut pos).ok_or("truncated dict entry length")? as usize;
                let end = pos.checked_add(len).filter(|&e| e <= payload.len());
                let end = end.ok_or("dict entry overruns payload")?;
                let s = std::str::from_utf8(&payload[pos..end])
                    .map_err(|_| "dict entry is not UTF-8")?;
                dict.push(s.to_string());
                pos = end;
            }
            let mut vals = Vec::with_capacity(rows);
            for _ in 0..rows {
                let idx = get_u64(payload, &mut pos).ok_or("truncated dict index")? as usize;
                let s = dict.get(idx).ok_or("dict index out of range")?;
                vals.push(s.clone());
            }
            Column::Str(vals)
        }
        other => return Err(format!("unknown column encoding {other}")),
    };
    if pos != payload.len() {
        return Err(format!(
            "column payload has {} trailing bytes",
            payload.len() - pos
        ));
    }
    Ok(col)
}

/// Serializes one column block (including its trailing CRC) into `out`,
/// returning the block's byte range.
fn put_block(out: &mut Vec<u8>, name: &str, col: &Column) -> (u64, u64) {
    let start = out.len();
    let (enc, payload) = encode_column(col);
    put_u64(out, name.len() as u64);
    out.extend_from_slice(name.as_bytes());
    out.push(enc);
    put_u64(out, col.len() as u64);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    (start as u64, (out.len() - start) as u64)
}

/// Parses one column block at `*pos` in `bytes`, validating its CRC.
/// Returns the decoded column. `None` means clean end-of-blocks is not
/// representable here — callers bound the walk by offsets.
fn parse_block(bytes: &[u8], pos: &mut usize) -> Result<(String, Column), String> {
    let start = *pos;
    let name_len = get_u64(bytes, pos).ok_or("truncated block name length")? as usize;
    let name_end = pos.checked_add(name_len).filter(|&e| e <= bytes.len());
    let name_end = name_end.ok_or("block name overruns file")?;
    let name = std::str::from_utf8(&bytes[*pos..name_end])
        .map_err(|_| "block name is not UTF-8")?
        .to_string();
    *pos = name_end;
    let &enc = bytes.get(*pos).ok_or("truncated encoding byte")?;
    *pos += 1;
    let rows = get_u64(bytes, pos).ok_or("truncated row count")? as usize;
    let payload_len = get_u64(bytes, pos).ok_or("truncated payload length")? as usize;
    let payload_end = pos.checked_add(payload_len).filter(|&e| e <= bytes.len());
    let payload_end = payload_end.ok_or("block payload overruns file")?;
    let payload = &bytes[*pos..payload_end];
    let crc_end = payload_end.checked_add(4).filter(|&e| e <= bytes.len());
    let crc_end = crc_end.ok_or("truncated block CRC")?;
    let stored = u32::from_le_bytes(bytes[payload_end..crc_end].try_into().unwrap());
    if crc32(&bytes[start..payload_end]) != stored {
        return Err(format!("block {name:?} CRC mismatch"));
    }
    // Guard absurd row counts before decode allocates.
    if rows > payload_len.saturating_add(1).saturating_mul(10) {
        return Err(format!("block {name:?} row count {rows} implausible"));
    }
    let col = decode_column(enc, rows, payload).map_err(|e| format!("block {name:?}: {e}"))?;
    *pos = crc_end;
    Ok((name, col))
}

/// Encodes a complete segment file image for `columns` (all the same
/// length) and returns the bytes; [`crate::store::RunStore::append`]
/// writes them atomically.
pub fn encode_segment(columns: &[(String, Column)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(crate::store::SEGMENT_MAGIC);
    let mut index = Vec::with_capacity(columns.len());
    for (name, col) in columns {
        let (offset, len) = put_block(&mut out, name, col);
        index.push((name.clone(), offset, len));
    }
    let footer_start = out.len();
    put_u64(&mut out, index.len() as u64);
    for (name, offset, len) in index {
        put_u64(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        put_u64(&mut out, offset);
        put_u64(&mut out, len);
    }
    let footer_len = (out.len() - footer_start) as u32;
    let footer_crc = crc32(&out[footer_start..]);
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(&footer_crc.to_le_bytes());
    out.extend_from_slice(TAIL_MAGIC);
    out
}

/// Writes `columns` as a segment at `path` via atomic temp-and-rename.
pub fn write_segment(path: &Path, columns: &[(String, Column)]) -> Result<(), StoreError> {
    let rows = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
    debug_assert!(
        columns.iter().all(|(_, c)| c.len() == rows),
        "segment columns must be the same length"
    );
    crate::persist::write_atomic(path, &encode_segment(columns))?;
    Ok(())
}

/// Parses the footer index from a full file image. Returns
/// `(name, offset, len)` per block, or `None` if the tail/footer is
/// damaged (caller falls back to salvage).
fn parse_footer(bytes: &[u8]) -> Option<Vec<(String, u64, u64)>> {
    if bytes.len() < crate::store::SEGMENT_MAGIC.len() + TAIL_LEN {
        return None;
    }
    let tail = &bytes[bytes.len() - TAIL_LEN..];
    if &tail[8..12] != TAIL_MAGIC {
        return None;
    }
    let footer_len = u32::from_le_bytes(tail[0..4].try_into().unwrap()) as usize;
    let footer_crc = u32::from_le_bytes(tail[4..8].try_into().unwrap());
    let footer_end = bytes.len() - TAIL_LEN;
    let footer_start = footer_end.checked_sub(footer_len)?;
    let footer = &bytes[footer_start..footer_end];
    if crc32(footer) != footer_crc {
        return None;
    }
    let mut pos = 0;
    let n = get_u64(footer, &mut pos)? as usize;
    let mut index = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = get_u64(footer, &mut pos)? as usize;
        let end = pos.checked_add(name_len).filter(|&e| e <= footer.len())?;
        let name = std::str::from_utf8(&footer[pos..end]).ok()?.to_string();
        pos = end;
        let offset = get_u64(footer, &mut pos)?;
        let len = get_u64(footer, &mut pos)?;
        index.push((name, offset, len));
    }
    Some(index)
}

/// Reads a segment, projecting `projection` columns (or all when
/// `None`).
///
/// Fast path: seek the fixed tail, validate the footer, and decode only
/// the projected blocks — unprojected columns are never read from disk.
/// If the footer or tail is damaged, falls back to a sequential salvage
/// walk from the head that recovers every block up to the first
/// corruption and marks the result [`SegmentData::salvaged`].
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the magic is wrong or no block
/// survives; [`StoreError::Io`] on filesystem failure. A projected
/// column that is merely absent is not an error (callers decide
/// whether missing columns matter).
pub fn read_segment(path: &Path, projection: Option<&[&str]>) -> Result<SegmentData, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.seek(SeekFrom::End(0))?;
    let magic_len = crate::store::SEGMENT_MAGIC.len() as u64;
    if file_len < magic_len + TAIL_LEN as u64 {
        return Err(StoreError::corrupt(path, "file shorter than magic + tail"));
    }
    let mut magic = vec![0u8; crate::store::SEGMENT_MAGIC.len()];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut magic)?;
    if magic != crate::store::SEGMENT_MAGIC {
        return Err(StoreError::corrupt(path, "bad segment magic"));
    }

    // Footer fast path: tail, then footer, then only projected blocks.
    let mut tail = [0u8; TAIL_LEN];
    file.seek(SeekFrom::Start(file_len - TAIL_LEN as u64))?;
    file.read_exact(&mut tail)?;
    let footer_index = if &tail[8..12] == TAIL_MAGIC {
        let footer_len = u32::from_le_bytes(tail[0..4].try_into().unwrap()) as u64;
        let footer_end = file_len - TAIL_LEN as u64;
        if footer_len <= footer_end - magic_len {
            let mut footer_file = vec![0u8; footer_len as usize + TAIL_LEN];
            file.seek(SeekFrom::Start(footer_end - footer_len))?;
            file.read_exact(&mut footer_file)?;
            parse_footer(
                // parse_footer wants magic-prefixed framing only for
                // the length check; hand it a synthetic image.
                &[&magic[..], &footer_file[..]].concat(),
            )
        } else {
            None
        }
    } else {
        None
    };

    if let Some(index) = footer_index {
        let mut columns = Vec::new();
        let mut damaged = 0usize;
        let mut rows: Option<usize> = None;
        for (name, offset, len) in &index {
            if let Some(wanted) = projection {
                if !wanted.iter().any(|w| w == name) {
                    continue;
                }
            }
            let end = offset.checked_add(*len).filter(|&e| e <= file_len);
            let Some(_end) = end else {
                damaged += 1;
                continue;
            };
            let mut block = vec![0u8; *len as usize];
            file.seek(SeekFrom::Start(*offset))?;
            file.read_exact(&mut block)?;
            let mut pos = 0;
            match parse_block(&block, &mut pos) {
                Ok((parsed_name, col)) if &parsed_name == name => {
                    match rows {
                        None => rows = Some(col.len()),
                        Some(r) if r != col.len() => {
                            return Err(StoreError::corrupt(
                                path,
                                format!("column {name:?} has {} rows, expected {r}", col.len()),
                            ));
                        }
                        Some(_) => {}
                    }
                    columns.push((parsed_name, col));
                }
                _ => damaged += 1,
            }
        }
        if columns.is_empty() && damaged > 0 {
            return Err(StoreError::corrupt(
                path,
                format!("all {damaged} projected blocks damaged"),
            ));
        }
        return Ok(SegmentData {
            rows: rows.unwrap_or(0),
            columns,
            salvaged: false,
            damaged_blocks: damaged,
        });
    }

    // Salvage walk: footer unusable, recover blocks head-to-tail until
    // the first damage. Requires the whole file, which is fine — this
    // is the rare recovery path.
    let mut bytes = Vec::with_capacity(file_len as usize);
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut bytes)?;
    let mut pos = crate::store::SEGMENT_MAGIC.len();
    let mut all = Vec::new();
    let mut damaged = 0usize;
    while pos + TAIL_LEN < bytes.len() {
        let mut probe = pos;
        match parse_block(&bytes, &mut probe) {
            Ok((name, col)) => {
                all.push((name, col));
                pos = probe;
            }
            Err(_) => {
                damaged += 1;
                break;
            }
        }
    }
    if all.is_empty() {
        return Err(StoreError::corrupt(
            path,
            "footer damaged and no block salvageable",
        ));
    }
    let rows = all[0].1.len();
    if all.iter().any(|(_, c)| c.len() != rows) {
        return Err(StoreError::corrupt(
            path,
            "salvaged blocks disagree on row count",
        ));
    }
    let columns = match projection {
        Some(wanted) => all
            .into_iter()
            .filter(|(n, _)| wanted.iter().any(|w| w == n))
            .collect(),
        None => all,
    };
    Ok(SegmentData {
        columns,
        rows,
        salvaged: true,
        damaged_blocks: damaged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_columns() -> Vec<(String, Column)> {
        vec![
            (
                "workload".into(),
                Column::Str(vec!["webd".into(), "webd".into(), "cachesim".into()]),
            ),
            ("version".into(), Column::U64(vec![1, 1, 2])),
            (
                "paper.roots".into(),
                Column::F64(vec![10.5, 10.5, f64::NAN]),
            ),
        ]
    }

    fn write_sample(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("heapmd-runstore-segment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_segment(&path, &sample_columns()).unwrap();
        path
    }

    fn f64_bits(col: &Column) -> Vec<u64> {
        match col {
            Column::F64(v) => v.iter().map(|x| x.to_bits()).collect(),
            _ => panic!("not f64"),
        }
    }

    #[test]
    fn round_trips_all_columns() {
        let path = write_sample("roundtrip.hmdr");
        let seg = read_segment(&path, None).unwrap();
        assert!(!seg.salvaged);
        assert_eq!(seg.rows, 3);
        assert_eq!(seg.columns.len(), 3);
        let orig = sample_columns();
        for ((n1, c1), (n2, c2)) in orig.iter().zip(&seg.columns) {
            assert_eq!(n1, n2);
            match (c1, c2) {
                (Column::F64(_), Column::F64(_)) => assert_eq!(f64_bits(c1), f64_bits(c2)),
                _ => assert_eq!(c1, c2),
            }
        }
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let path = write_sample("projection.hmdr");
        let seg = read_segment(&path, Some(&["paper.roots"])).unwrap();
        assert_eq!(seg.columns.len(), 1);
        assert_eq!(seg.columns[0].0, "paper.roots");
        assert_eq!(seg.rows, 3);
        // Absent column is not an error, just absent.
        let seg = read_segment(&path, Some(&["no.such.metric"])).unwrap();
        assert!(seg.columns.is_empty());
    }

    #[test]
    fn truncated_tail_falls_back_to_salvage() {
        let path = write_sample("truncated.hmdr");
        let bytes = std::fs::read(&path).unwrap();
        // Chop the footer + tail off entirely.
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        let seg = read_segment(&path, None).unwrap();
        assert!(seg.salvaged);
        assert!(seg.rows == 3);
        assert!(!seg.columns.is_empty());
    }

    #[test]
    fn flipped_block_byte_loses_only_that_column() {
        let path = write_sample("bitflip.hmdr");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first block's payload (well past the
        // magic, well before the later blocks).
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let seg = read_segment(&path, None).unwrap();
        assert!(!seg.salvaged, "footer is intact, no salvage needed");
        assert_eq!(seg.damaged_blocks, 1);
        assert_eq!(seg.columns.len(), 2, "two of three blocks survive");
        assert!(seg.columns.iter().all(|(n, _)| n != "workload"));
    }

    #[test]
    fn garbage_file_is_corrupt_not_panic() {
        let dir = std::env::temp_dir().join("heapmd-runstore-segment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.hmdr");
        std::fs::write(&path, vec![0x5A; 256]).unwrap();
        match read_segment(&path, None) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let dir = std::env::temp_dir().join("heapmd-runstore-segment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.hmdr");
        write_segment(&path, &[]).unwrap();
        let seg = read_segment(&path, None).unwrap();
        assert_eq!(seg.rows, 0);
        assert!(seg.columns.is_empty());
    }
}
