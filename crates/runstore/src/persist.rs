//! Crash-safe persistence primitives.
//!
//! These used to live in `heapmd::persist`; they were re-homed here so
//! the run-store — the lowest layer of the observability plane — can
//! use them without a cycle, and `heapmd` re-exports them unchanged.
//!
//! * [`write_atomic`] — the classic write-to-temp-then-rename protocol,
//!   so a reader never observes a half-written artifact: it sees either
//!   the old file or the new one, never a torn mix.
//! * [`crc32`] — the IEEE CRC-32 used by the length-framed trace
//!   stream and by every run-store column block to detect torn or
//!   bit-flipped bytes.
//!
//! Both are std-only; determinism matters because the chaos suite
//! replays identical fault schedules against these exact code paths.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// IEEE 802.3 CRC-32 (the polynomial used by zip/png/ethernet),
/// computed bytewise with a lazily built lookup table.
pub fn crc32(bytes: &[u8]) -> u32 {
    fn table() -> &'static [u32; 256] {
        static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, entry) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *entry = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Writes `bytes` to `path` atomically: the contents land in a
/// temporary sibling file first, are flushed, and only then renamed
/// over `path`. A crash at any point leaves either the previous file
/// or the complete new one — never a truncated hybrid.
///
/// # Errors
///
/// Propagates any I/O error; on failure the temporary file is removed
/// (best-effort) and `path` is untouched.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The temporary sibling used by [`write_atomic`]: `<file>.tmp` in the
/// same directory, so the final rename cannot cross filesystems.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("heapmd-runstore-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_to_missing_directory_errors_without_tmp_litter() {
        let path = std::env::temp_dir()
            .join("heapmd-runstore-persist-missing")
            .join("no-such-dir")
            .join("x.json");
        assert!(write_atomic(&path, b"x").is_err());
        assert!(!tmp_sibling(&path).exists());
    }
}
