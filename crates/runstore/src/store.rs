//! Directory-of-segments store: append-only batches of [`RunRow`]s,
//! filtered + projected scans, and segment-granular fault tolerance.

use crate::segment::{read_segment, write_segment, Column};
use crate::StoreError;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File magic opening every segment (versioned: bump the digit for
/// incompatible layout changes).
pub const SEGMENT_MAGIC: &[u8; 6] = b"HMDR1\n";

/// The fixed dimension columns present in every segment, in on-disk
/// order. Everything else in a segment is a metric column named by its
/// candidate metric id.
pub const DIMENSION_COLUMNS: [&str; 11] = [
    "workload",
    "version",
    "run",
    "tenant",
    "kind",
    "time",
    "seq",
    "fn_entries",
    "nodes",
    "edges",
    "dangling",
];

/// Which pipeline stage produced a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowKind {
    /// Model-construction (training) run.
    Train,
    /// Plain execution with sampling, no verdict.
    Run,
    /// Offline execution checking against a model.
    Check,
    /// Fleet ingestion through the serve daemon.
    Serve,
}

impl RowKind {
    /// All kinds, for CLI help and iteration.
    pub const ALL: [RowKind; 4] = [RowKind::Train, RowKind::Run, RowKind::Check, RowKind::Serve];

    /// Stable on-disk / CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RowKind::Train => "train",
            RowKind::Run => "run",
            RowKind::Check => "check",
            RowKind::Serve => "serve",
        }
    }

    /// Parses the [`Self::as_str`] spelling. Option (not `FromStr`'s
    /// Result) because callers treat unknown kinds as a usage error
    /// with their own message.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<RowKind> {
        RowKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for RowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded computation point (or run-level rollup): where it came
/// from plus the metric values observed there.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRow {
    /// Workload name (e.g. `commercial/webd`).
    pub workload: String,
    /// Program version the workload ran at (0 when unversioned).
    pub version: u64,
    /// Run identifier (trace name, session id, ...).
    pub run: String,
    /// Tenant for fleet rows; empty for local runs.
    pub tenant: String,
    /// Producing stage.
    pub kind: RowKind,
    /// Wall-clock seconds since the Unix epoch at record time.
    pub time: u64,
    /// Sample sequence number within the run.
    pub seq: u64,
    /// Function entries observed when the sample was taken.
    pub fn_entries: u64,
    /// Live heap-graph nodes at the sample.
    pub nodes: u64,
    /// Live heap-graph edges at the sample.
    pub edges: u64,
    /// Dangling (freed-target) pointers at the sample.
    pub dangling: u64,
    /// Metric id → value pairs. Rows in one batch may carry different
    /// metric sets; missing values are stored as NaN.
    pub metrics: Vec<(String, f64)>,
}

impl RunRow {
    /// Looks up a metric value by id; NaN (the absent marker) maps to
    /// `None`.
    pub fn metric(&self, id: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == id)
            .map(|&(_, v)| v)
            .filter(|v| !v.is_nan())
    }
}

/// Scan predicate: `None` fields match everything; set fields must all
/// match (conjunction).
#[derive(Debug, Clone, Default)]
pub struct RowFilter {
    /// Exact workload name.
    pub workload: Option<String>,
    /// Exact version.
    pub version: Option<u64>,
    /// Exact run id.
    pub run: Option<String>,
    /// Exact tenant.
    pub tenant: Option<String>,
    /// Producing stage.
    pub kind: Option<RowKind>,
    /// Inclusive lower time bound (Unix seconds).
    pub since: Option<u64>,
    /// Inclusive upper time bound (Unix seconds).
    pub until: Option<u64>,
}

impl RowFilter {
    /// True when `row` satisfies every set field.
    pub fn matches(&self, row: &RunRow) -> bool {
        self.workload.as_deref().is_none_or(|w| w == row.workload)
            && self.version.is_none_or(|v| v == row.version)
            && self.run.as_deref().is_none_or(|r| r == row.run)
            && self.tenant.as_deref().is_none_or(|t| t == row.tenant)
            && self.kind.is_none_or(|k| k == row.kind)
            && self.since.is_none_or(|s| row.time >= s)
            && self.until.is_none_or(|u| row.time <= u)
    }
}

/// Result of [`RunStore::scan`]: matching rows plus how the read went.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Rows passing the filter, in segment order then row order.
    pub rows: Vec<RunRow>,
    /// Segments read successfully (including salvaged ones).
    pub segments_read: usize,
    /// Segments recovered via the sequential salvage walk.
    pub segments_salvaged: usize,
    /// Segments skipped entirely because nothing was recoverable.
    pub segments_skipped: usize,
    /// Damaged blocks across all read segments.
    pub damaged_blocks: usize,
}

/// An append-only columnar store rooted at a directory.
///
/// Appends serialize through an in-process mutex (the serve daemon's
/// tenant shards share one store); cross-process writers should use
/// distinct store directories.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    append_lock: Mutex<()>,
}

impl RunStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<RunStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(RunStore {
            dir,
            append_lock: Mutex::new(()),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment files currently in the store, in append order.
    pub fn segments(&self) -> Result<Vec<PathBuf>, StoreError> {
        let mut segs: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "hmdr")
                    && p.file_stem()
                        .and_then(|s| s.to_str())
                        .is_some_and(|s| s.starts_with("seg-"))
            })
            .collect();
        segs.sort();
        Ok(segs)
    }

    /// Appends `rows` as one new immutable segment; returns its path.
    /// Empty batches are a no-op returning the store directory.
    pub fn append(&self, rows: &[RunRow]) -> Result<PathBuf, StoreError> {
        if rows.is_empty() {
            return Ok(self.dir.clone());
        }
        let columns = rows_to_columns(rows);
        let _guard = self.append_lock.lock().unwrap();
        let next = self
            .segments()?
            .iter()
            .filter_map(|p| {
                p.file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.strip_prefix("seg-"))
                    .and_then(|s| s.parse::<u64>().ok())
            })
            .max()
            .map_or(0, |n| n + 1);
        let path = self.dir.join(format!("seg-{next:08}.hmdr"));
        write_segment(&path, &columns)?;
        Ok(path)
    }

    /// The metric column ids present anywhere in the store (union
    /// across segments), sorted.
    pub fn metric_ids(&self) -> Result<Vec<String>, StoreError> {
        let mut ids = BTreeSet::new();
        for seg in self.segments()? {
            let Ok(data) = read_segment(&seg, None) else {
                continue;
            };
            for (name, _) in data.columns {
                if !DIMENSION_COLUMNS.contains(&name.as_str()) {
                    ids.insert(name);
                }
            }
        }
        Ok(ids.into_iter().collect())
    }

    /// Scans the store, returning rows matching `filter`.
    ///
    /// `metrics` projects which metric columns to materialize per row
    /// (`None` = all present). Dimension columns are always read — the
    /// filter needs them. Damaged segments degrade instead of failing
    /// the scan: salvageable ones contribute their surviving rows,
    /// unreadable ones are counted in
    /// [`ScanOutcome::segments_skipped`].
    pub fn scan(
        &self,
        filter: &RowFilter,
        metrics: Option<&[String]>,
    ) -> Result<ScanOutcome, StoreError> {
        let mut outcome = ScanOutcome::default();
        let projection: Option<Vec<&str>> = metrics.map(|m| {
            DIMENSION_COLUMNS
                .iter()
                .copied()
                .chain(m.iter().map(String::as_str))
                .collect()
        });
        for seg in self.segments()? {
            let data = match read_segment(&seg, projection.as_deref()) {
                Ok(d) => d,
                Err(StoreError::Corrupt { .. }) => {
                    outcome.segments_skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            outcome.segments_read += 1;
            outcome.segments_salvaged += usize::from(data.salvaged);
            outcome.damaged_blocks += data.damaged_blocks;
            let rows = columns_to_rows(&seg, &data.columns, data.rows)?;
            outcome
                .rows
                .extend(rows.into_iter().filter(|r| filter.matches(r)));
        }
        Ok(outcome)
    }
}

fn rows_to_columns(rows: &[RunRow]) -> Vec<(String, Column)> {
    let mut columns: Vec<(String, Column)> = vec![
        (
            "workload".into(),
            Column::Str(rows.iter().map(|r| r.workload.clone()).collect()),
        ),
        (
            "version".into(),
            Column::U64(rows.iter().map(|r| r.version).collect()),
        ),
        (
            "run".into(),
            Column::Str(rows.iter().map(|r| r.run.clone()).collect()),
        ),
        (
            "tenant".into(),
            Column::Str(rows.iter().map(|r| r.tenant.clone()).collect()),
        ),
        (
            "kind".into(),
            Column::Str(rows.iter().map(|r| r.kind.as_str().to_string()).collect()),
        ),
        (
            "time".into(),
            Column::U64(rows.iter().map(|r| r.time).collect()),
        ),
        (
            "seq".into(),
            Column::U64(rows.iter().map(|r| r.seq).collect()),
        ),
        (
            "fn_entries".into(),
            Column::U64(rows.iter().map(|r| r.fn_entries).collect()),
        ),
        (
            "nodes".into(),
            Column::U64(rows.iter().map(|r| r.nodes).collect()),
        ),
        (
            "edges".into(),
            Column::U64(rows.iter().map(|r| r.edges).collect()),
        ),
        (
            "dangling".into(),
            Column::U64(rows.iter().map(|r| r.dangling).collect()),
        ),
    ];
    // Union of metric ids across the batch, in first-seen order so
    // segments written from a single producer keep a stable layout.
    let mut metric_ids: Vec<&str> = Vec::new();
    for row in rows {
        for (id, _) in &row.metrics {
            if !metric_ids.iter().any(|m| m == id) {
                metric_ids.push(id);
            }
        }
    }
    for id in metric_ids {
        let vals: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.metrics
                    .iter()
                    .find(|(n, _)| n == id)
                    .map_or(f64::NAN, |&(_, v)| v)
            })
            .collect();
        columns.push((id.to_string(), Column::F64(vals)));
    }
    columns
}

fn columns_to_rows(
    seg: &Path,
    columns: &[(String, Column)],
    rows: usize,
) -> Result<Vec<RunRow>, StoreError> {
    fn str_col<'a>(
        seg: &Path,
        columns: &'a [(String, Column)],
        name: &str,
    ) -> Result<Option<&'a [String]>, StoreError> {
        match columns.iter().find(|(n, _)| n == name).map(|(_, c)| c) {
            Some(Column::Str(v)) => Ok(Some(v)),
            Some(_) => Err(StoreError::corrupt(
                seg,
                format!("dimension column {name:?} has the wrong type"),
            )),
            None => Ok(None),
        }
    }
    fn u64_col<'a>(
        seg: &Path,
        columns: &'a [(String, Column)],
        name: &str,
    ) -> Result<Option<&'a [u64]>, StoreError> {
        match columns.iter().find(|(n, _)| n == name).map(|(_, c)| c) {
            Some(Column::U64(v)) => Ok(Some(v)),
            Some(_) => Err(StoreError::corrupt(
                seg,
                format!("dimension column {name:?} has the wrong type"),
            )),
            None => Ok(None),
        }
    }

    let workload = str_col(seg, columns, "workload")?;
    let run = str_col(seg, columns, "run")?;
    let tenant = str_col(seg, columns, "tenant")?;
    let kind = str_col(seg, columns, "kind")?;
    let version = u64_col(seg, columns, "version")?;
    let time = u64_col(seg, columns, "time")?;
    let seq = u64_col(seg, columns, "seq")?;
    let fn_entries = u64_col(seg, columns, "fn_entries")?;
    let nodes = u64_col(seg, columns, "nodes")?;
    let edges = u64_col(seg, columns, "edges")?;
    let dangling = u64_col(seg, columns, "dangling")?;
    let metric_cols: Vec<(&String, &[f64])> = columns
        .iter()
        .filter(|(n, _)| !DIMENSION_COLUMNS.contains(&n.as_str()))
        .filter_map(|(n, c)| match c {
            Column::F64(v) => Some((n, v.as_slice())),
            _ => None,
        })
        .collect();

    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        out.push(RunRow {
            workload: workload.map_or_else(String::new, |c| c[i].clone()),
            version: version.map_or(0, |c| c[i]),
            run: run.map_or_else(String::new, |c| c[i].clone()),
            tenant: tenant.map_or_else(String::new, |c| c[i].clone()),
            kind: kind
                .and_then(|c| RowKind::from_str(&c[i]))
                .unwrap_or(RowKind::Run),
            time: time.map_or(0, |c| c[i]),
            seq: seq.map_or(0, |c| c[i]),
            fn_entries: fn_entries.map_or(0, |c| c[i]),
            nodes: nodes.map_or(0, |c| c[i]),
            edges: edges.map_or(0, |c| c[i]),
            dangling: dangling.map_or(0, |c| c[i]),
            metrics: metric_cols
                .iter()
                .map(|(n, v)| ((*n).clone(), v[i]))
                .collect(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> RunStore {
        let dir = std::env::temp_dir()
            .join("heapmd-runstore-store-tests")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    pub(crate) fn row(workload: &str, version: u64, seq: u64, roots: f64) -> RunRow {
        RunRow {
            workload: workload.into(),
            version,
            run: format!("run-{version}-{seq}"),
            tenant: String::new(),
            kind: RowKind::Check,
            time: 1_700_000_000 + seq,
            seq,
            fn_entries: seq * 100,
            nodes: 50 + seq,
            edges: 40 + seq,
            dangling: 0,
            metrics: vec![
                ("paper.roots".into(), roots),
                ("dist.in_entropy".into(), 1.5 + roots / 100.0),
            ],
        }
    }

    #[test]
    fn append_scan_round_trip() {
        let store = temp_store("round-trip");
        store
            .append(&[row("webd", 1, 0, 10.0), row("webd", 1, 1, 11.0)])
            .unwrap();
        store.append(&[row("webd", 2, 0, 20.0)]).unwrap();
        assert_eq!(store.segments().unwrap().len(), 2);
        let all = store.scan(&RowFilter::default(), None).unwrap();
        assert_eq!(all.rows.len(), 3);
        assert_eq!(all.segments_read, 2);
        assert_eq!(all.rows[0].metric("paper.roots"), Some(10.0));
        assert_eq!(all.rows[2].version, 2);
    }

    #[test]
    fn filters_compose_conjunctively() {
        let store = temp_store("filters");
        store
            .append(&[
                row("webd", 1, 0, 10.0),
                row("webd", 2, 1, 20.0),
                row("cachesim", 1, 2, 30.0),
            ])
            .unwrap();
        let f = RowFilter {
            workload: Some("webd".into()),
            version: Some(2),
            ..RowFilter::default()
        };
        let hits = store.scan(&f, None).unwrap().rows;
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].metric("paper.roots"), Some(20.0));
        let f = RowFilter {
            since: Some(1_700_000_002),
            ..RowFilter::default()
        };
        assert_eq!(store.scan(&f, None).unwrap().rows.len(), 1);
    }

    #[test]
    fn metric_projection_limits_materialization() {
        let store = temp_store("projection");
        store.append(&[row("webd", 1, 0, 10.0)]).unwrap();
        let proj = vec!["paper.roots".to_string()];
        let rows = store.scan(&RowFilter::default(), Some(&proj)).unwrap().rows;
        assert_eq!(rows[0].metrics.len(), 1);
        assert_eq!(rows[0].metric("paper.roots"), Some(10.0));
        assert_eq!(rows[0].metric("dist.in_entropy"), None);
    }

    #[test]
    fn heterogeneous_metric_sets_pad_with_nan() {
        let store = temp_store("heterogeneous");
        let mut r1 = row("webd", 1, 0, 10.0);
        r1.metrics = vec![("paper.roots".into(), 10.0)];
        let mut r2 = row("webd", 1, 1, 11.0);
        r2.metrics = vec![("paper.leaves".into(), 4.0)];
        store.append(&[r1, r2]).unwrap();
        let rows = store.scan(&RowFilter::default(), None).unwrap().rows;
        assert_eq!(rows[0].metric("paper.roots"), Some(10.0));
        assert_eq!(
            rows[0].metric("paper.leaves"),
            None,
            "NaN pad reads as absent"
        );
        assert_eq!(rows[1].metric("paper.leaves"), Some(4.0));
    }

    #[test]
    fn corrupt_segment_degrades_not_fails() {
        let store = temp_store("degrade");
        store.append(&[row("webd", 1, 0, 10.0)]).unwrap();
        store.append(&[row("webd", 1, 1, 11.0)]).unwrap();
        let segs = store.segments().unwrap();
        fs::write(&segs[0], b"HMDR1\ngarbage beyond recovery").unwrap();
        let outcome = store.scan(&RowFilter::default(), None).unwrap();
        assert_eq!(outcome.segments_skipped, 1);
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.rows[0].seq, 1);
    }

    #[test]
    fn metric_ids_unions_across_segments() {
        let store = temp_store("metric-ids");
        let mut r1 = row("webd", 1, 0, 10.0);
        r1.metrics = vec![("paper.roots".into(), 10.0)];
        let mut r2 = row("webd", 1, 1, 11.0);
        r2.metrics = vec![("dist.out_entropy".into(), 2.0)];
        store.append(&[r1]).unwrap();
        store.append(&[r2]).unwrap();
        assert_eq!(
            store.metric_ids().unwrap(),
            vec!["dist.out_entropy".to_string(), "paper.roots".to_string()]
        );
    }
}
