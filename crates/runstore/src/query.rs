//! Scan-side aggregations: percentiles per group and cross-version
//! drift, computed over materialized [`RunRow`]s.
//!
//! These are deliberately simple columnar-scan aggregations — the
//! regression question the store exists to answer ("did `paper.roots`
//! drift between v3 and v4 of this workload?") needs order statistics
//! per version, nothing more. NaN values (the absent-metric marker)
//! are skipped everywhere.

use crate::store::RunRow;
use std::collections::BTreeMap;

/// Nearest-rank percentile over `sorted` (ascending, NaN-free).
/// `p` in `[0, 100]`; empty input yields NaN.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Order statistics for one metric over one row group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricStats {
    /// Non-NaN observations.
    pub count: usize,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
}

impl MetricStats {
    /// Computes stats over `values`, skipping NaN. Returns `None` when
    /// no finite observation remains.
    pub fn compute(values: &[f64]) -> Option<MetricStats> {
        let mut clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if clean.is_empty() {
            return None;
        }
        clean.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sum: f64 = clean.iter().sum();
        Some(MetricStats {
            count: clean.len(),
            min: clean[0],
            max: *clean.last().unwrap(),
            mean: sum / clean.len() as f64,
            p50: percentile(&clean, 50.0),
            p95: percentile(&clean, 95.0),
        })
    }
}

/// One version's statistics for a metric, plus its drift against the
/// previous version in the sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionDrift {
    /// Program version the stats describe.
    pub version: u64,
    /// Stats for the metric at this version.
    pub stats: MetricStats,
    /// Relative change of the mean vs the previous version, in percent
    /// (`None` for the first version, or when the previous mean is 0).
    pub drift_pct: Option<f64>,
}

/// Groups `rows` by version and computes per-version [`MetricStats`]
/// for `metric`, with mean-drift percentages between consecutive
/// versions — the cross-version regression matrix for one metric.
/// Versions with no finite observation are omitted.
pub fn drift_by_version(rows: &[RunRow], metric: &str) -> Vec<VersionDrift> {
    let mut by_version: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for row in rows {
        if let Some(v) = row.metric(metric) {
            by_version.entry(row.version).or_default().push(v);
        }
    }
    let mut out = Vec::with_capacity(by_version.len());
    let mut prev_mean: Option<f64> = None;
    for (version, values) in by_version {
        let Some(stats) = MetricStats::compute(&values) else {
            continue;
        };
        let drift_pct =
            prev_mean.and_then(|p| (p != 0.0).then(|| (stats.mean - p) / p.abs() * 100.0));
        prev_mean = Some(stats.mean);
        out.push(VersionDrift {
            version,
            stats,
            drift_pct,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RowKind, RunRow};

    fn row(version: u64, roots: f64) -> RunRow {
        RunRow {
            workload: "webd".into(),
            version,
            run: format!("r{version}"),
            tenant: String::new(),
            kind: RowKind::Check,
            time: 0,
            seq: 0,
            fn_entries: 0,
            nodes: 0,
            edges: 0,
            dangling: 0,
            metrics: vec![("paper.roots".into(), roots)],
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn stats_skip_nan() {
        let s = MetricStats::compute(&[2.0, f64::NAN, 4.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 3.0);
        assert!(MetricStats::compute(&[f64::NAN]).is_none());
    }

    #[test]
    fn drift_tracks_mean_change_between_versions() {
        let rows: Vec<RunRow> = vec![row(1, 10.0), row(1, 10.0), row(2, 11.0), row(3, 22.0)];
        let drift = drift_by_version(&rows, "paper.roots");
        assert_eq!(drift.len(), 3);
        assert_eq!(drift[0].drift_pct, None);
        assert!((drift[1].drift_pct.unwrap() - 10.0).abs() < 1e-9);
        assert!((drift[2].drift_pct.unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn drift_omits_metricless_versions() {
        let mut r = row(2, 0.0);
        r.metrics.clear();
        let rows = vec![row(1, 10.0), r, row(3, 10.0)];
        let drift = drift_by_version(&rows, "paper.roots");
        assert_eq!(
            drift.iter().map(|d| d.version).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }
}
