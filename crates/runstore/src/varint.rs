//! LEB128 varints and zigzag signed mapping — the byte-level vocabulary
//! of segment blocks. Small deltas (the common case for sequence
//! numbers, timestamps, and slowly drifting metric bits) encode in one
//! or two bytes.

/// Appends `v` as an unsigned LEB128 varint.
pub fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint at `*pos`, advancing it. Returns
/// `None` on truncation or a varint longer than 10 bytes.
pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed value to unsigned so small-magnitude deltas (of either
/// sign) stay small: 0, -1, 1, -2 → 0, 1, 2, 3.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_detects_truncation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 300);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
