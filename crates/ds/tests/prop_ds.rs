//! Property tests: data-structure invariants hold under arbitrary
//! operation sequences, and the heap-graph stays internally consistent
//! throughout.

use faults::FaultPlan;
use heapmd::{Process, Settings};
use proptest::prelude::*;
use sim_ds::{SimBTree, SimBinTree, SimDList, SimHashTable};

fn process() -> Process {
    Process::new(Settings::builder().frq(10_000).build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dlist_stays_well_formed(ops in proptest::collection::vec((0u8..3, 0u64..100), 1..80)) {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimDList::new(&mut p, "t").unwrap();
        let mut nodes = Vec::new();
        for (op, v) in ops {
            match op {
                0 => nodes.push(l.push_back(&mut p, &mut plan, v).unwrap()),
                1 if !nodes.is_empty() => {
                    let n = nodes.remove((v as usize) % nodes.len());
                    l.remove(&mut p, n).unwrap();
                }
                _ => {
                    let pred = if nodes.is_empty() {
                        l.sentinel()
                    } else {
                        nodes[(v as usize) % nodes.len()]
                    };
                    nodes.push(l.insert_after(&mut p, &mut plan, pred, v).unwrap());
                }
            }
            prop_assert_eq!(l.len(), nodes.len());
        }
        prop_assert_eq!(l.count_back_pointer_violations(&mut p).unwrap(), 0);
        p.graph().validate().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn btree_matches_sorted_reference(keys in proptest::collection::vec(0u64..1000, 1..150)) {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBTree::new(&mut p, "t").unwrap();
        for &k in &keys {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        let mut expect = keys.clone();
        expect.sort();
        prop_assert_eq!(t.keys_in_order(), expect);
        t.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(t.count_heap_link_mismatches(&mut p).unwrap(), 0);
        p.graph().validate().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn bintree_membership_is_exact(keys in proptest::collection::hash_set(0u64..500, 1..100)) {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBinTree::new("t");
        for &k in &keys {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        prop_assert_eq!(t.count_parent_pointer_violations(&mut p).unwrap(), 0);
        for k in 0..500 {
            prop_assert_eq!(t.contains(&mut p, k).unwrap(), keys.contains(&k));
        }
    }

    #[test]
    fn hashtable_matches_reference_map(
        ops in proptest::collection::vec((prop::bool::ANY, 0u64..50), 1..120)
    ) {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut m = SimHashTable::new(&mut p, 16, "t").unwrap();
        let mut reference: std::collections::HashMap<u64, usize> = Default::default();
        for (insert, k) in ops {
            if insert {
                m.insert(&mut p, &mut plan, k).unwrap();
                *reference.entry(k).or_default() += 1;
            } else {
                let removed = m.remove(&mut p, k).unwrap();
                let cnt = reference.entry(k).or_default();
                if *cnt > 0 {
                    prop_assert!(removed);
                    *cnt -= 1;
                } else {
                    prop_assert!(!removed);
                }
            }
        }
        for (&k, &cnt) in &reference {
            prop_assert_eq!(m.lookup(&mut p, k).unwrap(), cnt > 0, "key {}", k);
        }
        let total: usize = reference.values().sum();
        prop_assert_eq!(m.len(), total);
        p.graph().validate().map_err(TestCaseError::fail)?;
    }
}
