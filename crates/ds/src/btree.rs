//! A B-tree (order 4) — one of the "more complex data structures such
//! as B-Trees" in which the paper reports invariant-violation bugs
//! (§4.5).

use crate::fault_ids::BTREE_SKIP_SIBLING;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process};

/// Minimum degree (CLRS `t`): nodes hold 1..=3 keys and 2..=4 children.
const T: usize = 2;
const MAX_KEYS: usize = 2 * T - 1;
/// Node layout: `[0..32] = 4 child pointers, [32..56] = 3 key words`.
const CHILD_STRIDE: u64 = 8;
const NODE_SIZE: usize = (2 * T) * 8 + MAX_KEYS * 8;

/// Shadow node: the program's *logical* view of the tree. The heap
/// objects are kept in sync with it — except where a fault deliberately
/// desynchronizes them, modelling code that updates its bookkeeping but
/// botches a pointer store.
#[derive(Debug, Clone)]
struct BNode {
    addr: Addr,
    keys: Vec<u64>,
    children: Vec<usize>,
}

impl BNode {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A B-tree of order 4 over the simulated heap.
///
/// Fault hook [`BTREE_SKIP_SIBLING`]: during a node split, the parent's
/// child pointer to the freshly created right sibling is not written.
/// The program's own bookkeeping stays consistent (searches still
/// work), but on the heap the sibling subtree is only reachable through
/// stale knowledge — its root has indegree 0, so the *roots* percentage
/// creeps out of range. This is a "malformed but pointer-correct"
/// structure in the paper's sense: no checker that only validates
/// individual pointers would object.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::SimBTree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut tree = SimBTree::new(&mut p, "index")?;
/// for k in 0..50 {
///     tree.insert(&mut p, &mut plan, k * 7 % 50)?;
/// }
/// assert_eq!(tree.len(), 50);
/// assert_eq!(tree.count_heap_link_mismatches(&mut p)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimBTree {
    nodes: Vec<BNode>,
    root: usize,
    len: usize,
    site: String,
    fault_skip_sibling: FaultId,
}

impl SimBTree {
    /// Creates an empty tree (allocating its root node).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn new(p: &mut Process, site: &str) -> Result<Self, HeapError> {
        SimBTree::with_fault(p, site, BTREE_SKIP_SIBLING)
    }

    /// Like [`new`](Self::new), with a per-instance fault id for the
    /// skipped-sibling-link call-site.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn with_fault(p: &mut Process, site: &str, fault: FaultId) -> Result<Self, HeapError> {
        p.enter("SimBTree::new");
        let site = format!("{site}::btree_node");
        let addr = p.malloc(NODE_SIZE, &site)?;
        p.leave();
        Ok(SimBTree {
            nodes: vec![BNode {
                addr,
                keys: Vec::new(),
                children: Vec::new(),
            }],
            root: 0,
            len: 0,
            site,
            fault_skip_sibling: fault,
        })
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of heap nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts `key` (duplicates allowed).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn insert(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        key: u64,
    ) -> Result<(), HeapError> {
        p.enter("SimBTree::insert");
        if self.nodes[self.root].keys.len() == MAX_KEYS {
            // Grow a new root and split the old one under it.
            let old_root = self.root;
            let addr = p.malloc(NODE_SIZE, &self.site)?;
            self.nodes.push(BNode {
                addr,
                keys: Vec::new(),
                children: vec![old_root],
            });
            self.root = self.nodes.len() - 1;
            self.sync_children(p, self.root, None)?;
            self.split_child(p, plan, self.root, 0)?;
        }
        self.insert_nonfull(p, plan, self.root, key)?;
        self.len += 1;
        p.leave();
        Ok(())
    }

    /// Searches for `key`, generating read traffic along the path.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn contains(&self, p: &mut Process, key: u64) -> Result<bool, HeapError> {
        p.enter("SimBTree::contains");
        let mut idx = self.root;
        let found = loop {
            p.read(self.nodes[idx].addr)?;
            let node = &self.nodes[idx];
            let pos = node.keys.partition_point(|&k| k < key);
            if pos < node.keys.len() && node.keys[pos] == key {
                break true;
            }
            if node.is_leaf() {
                break false;
            }
            idx = node.children[pos];
        };
        p.leave();
        Ok(found)
    }

    /// All keys in sorted order (shadow traversal; no heap traffic).
    pub fn keys_in_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.collect(self.root, &mut out);
        out
    }

    /// Checks the B-tree shape invariants on the shadow structure:
    /// sorted keys, key-count bounds, uniform leaf depth.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let keys = self.keys_in_order();
        if keys.windows(2).any(|w| w[0] > w[1]) {
            return Err("keys out of order".to_string());
        }
        let mut leaf_depth = None;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((idx, d)) = stack.pop() {
            let node = &self.nodes[idx];
            if idx != self.root && (node.keys.len() < T - 1 || node.keys.len() > MAX_KEYS) {
                return Err(format!("node has {} keys", node.keys.len()));
            }
            if node.is_leaf() {
                match leaf_depth {
                    None => leaf_depth = Some(d),
                    Some(ld) if ld != d => return Err("leaves at different depths".to_string()),
                    _ => {}
                }
            } else {
                if node.children.len() != node.keys.len() + 1 {
                    return Err("child count != keys + 1".to_string());
                }
                for &c in &node.children {
                    stack.push((c, d + 1));
                }
            }
        }
        Ok(())
    }

    /// Touches every node (read traffic for staleness trackers).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_all(&self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimBTree::touch_all");
        for node in &self.nodes {
            p.read(node.addr)?;
        }
        p.leave();
        Ok(())
    }

    /// Counts child links whose heap pointer slot disagrees with the
    /// shadow structure — the damage [`BTREE_SKIP_SIBLING`] causes.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn count_heap_link_mismatches(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimBTree::check_links");
        let mut mismatches = 0;
        for node in &self.nodes {
            for (i, &child) in node.children.iter().enumerate() {
                let slot = node.addr.offset(i as u64 * CHILD_STRIDE);
                if p.read_ptr(slot)? != Some(self.nodes[child].addr) {
                    mismatches += 1;
                }
            }
        }
        p.leave();
        Ok(mismatches)
    }

    /// Frees every heap node, consuming the tree.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimBTree::free_all");
        for node in &self.nodes {
            p.free(node.addr)?;
        }
        p.leave();
        Ok(())
    }

    fn collect(&self, idx: usize, out: &mut Vec<u64>) {
        let node = &self.nodes[idx];
        if node.is_leaf() {
            out.extend(&node.keys);
            return;
        }
        for (i, &k) in node.keys.iter().enumerate() {
            self.collect(node.children[i], out);
            out.push(k);
        }
        self.collect(*node.children.last().expect("non-leaf"), out);
    }

    /// Rewrites `idx`'s heap child slots from the shadow, optionally
    /// skipping one child position (the fault).
    fn sync_children(
        &self,
        p: &mut Process,
        idx: usize,
        skip_pos: Option<usize>,
    ) -> Result<(), HeapError> {
        let node = &self.nodes[idx];
        for i in 0..2 * T {
            let slot = node.addr.offset(i as u64 * CHILD_STRIDE);
            match node.children.get(i) {
                Some(&c) if skip_pos != Some(i) => {
                    p.write_ptr(slot, self.nodes[c].addr)?;
                }
                Some(_) => { /* fault: leave the stale/empty slot */ }
                None => p.clear_ptr(slot)?,
            }
        }
        Ok(())
    }

    fn split_child(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        parent: usize,
        pos: usize,
    ) -> Result<(), HeapError> {
        p.enter("SimBTree::split_child");
        let left = self.nodes[parent].children[pos];
        let addr = p.malloc(NODE_SIZE, &self.site)?;
        let right = self.nodes.len();
        let (mid_key, right_keys, right_children) = {
            let l = &mut self.nodes[left];
            let right_keys = l.keys.split_off(T);
            let mid_key = l.keys.pop().expect("full node has 2t-1 keys");
            let right_children = if l.is_leaf() {
                Vec::new()
            } else {
                l.children.split_off(T)
            };
            (mid_key, right_keys, right_children)
        };
        self.nodes.push(BNode {
            addr,
            keys: right_keys,
            children: right_children,
        });
        let parent_node = &mut self.nodes[parent];
        parent_node.keys.insert(pos, mid_key);
        parent_node.children.insert(pos + 1, right);

        // Heap sync: the left node lost children, the right gained
        // them, and the parent gained a child. The fault omits the
        // parent→right link.
        self.sync_children(p, left, None)?;
        self.sync_children(p, right, None)?;
        let skip = plan.fires(self.fault_skip_sibling).then_some(pos + 1);
        self.sync_children(p, parent, skip)?;
        p.leave();
        Ok(())
    }

    fn insert_nonfull(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        idx: usize,
        key: u64,
    ) -> Result<(), HeapError> {
        p.read(self.nodes[idx].addr)?;
        if self.nodes[idx].is_leaf() {
            let node = &mut self.nodes[idx];
            let pos = node.keys.partition_point(|&k| k <= key);
            node.keys.insert(pos, key);
            // Key payloads are scalar words on the heap object.
            let slot = self.nodes[idx]
                .addr
                .offset((2 * T * 8) as u64 + (pos.min(MAX_KEYS - 1) * 8) as u64);
            p.write_scalar(slot)?;
            return Ok(());
        }
        let mut pos = self.nodes[idx].keys.partition_point(|&k| k <= key);
        if self.nodes[self.nodes[idx].children[pos]].keys.len() == MAX_KEYS {
            self.split_child(p, plan, idx, pos)?;
            if key > self.nodes[idx].keys[pos] {
                pos += 1;
            }
        }
        let child = self.nodes[idx].children[pos];
        self.insert_nonfull(p, plan, child, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    fn shuffled(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(2654435761) % (4 * n))
            .collect()
    }

    #[test]
    fn keys_stay_sorted_and_invariants_hold() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBTree::new(&mut p, "t").unwrap();
        let keys = shuffled(200);
        for &k in &keys {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        assert_eq!(t.len(), 200);
        t.check_invariants().unwrap();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(t.keys_in_order(), expect);
        for &k in &keys {
            assert!(t.contains(&mut p, k).unwrap());
        }
    }

    #[test]
    fn heap_links_match_shadow_when_clean() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBTree::new(&mut p, "t").unwrap();
        for &k in &shuffled(150) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        assert_eq!(t.count_heap_link_mismatches(&mut p).unwrap(), 0);
        p.graph().validate().unwrap();
        // Every non-root node is referenced by exactly one child slot.
        let g = p.graph();
        assert_eq!(g.edge_count(), t.node_count() as u64 - 1);
    }

    #[test]
    fn skip_sibling_fault_orphans_subtrees_on_the_heap() {
        let mut p = process();
        let mut plan = FaultPlan::single(BTREE_SKIP_SIBLING);
        let mut t = SimBTree::new(&mut p, "t").unwrap();
        for &k in &shuffled(200) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        // Logical structure still fine…
        t.check_invariants().unwrap();
        // …but the heap image is missing parent→sibling links.
        let mismatches = t.count_heap_link_mismatches(&mut p).unwrap();
        assert!(
            mismatches > 10,
            "expected many missing links, got {mismatches}"
        );
        // Orphaned siblings are extra roots in the heap-graph.
        // A clean tree has exactly one root (~1–2 % of vertexes);
        // orphaned siblings push the percentage an order of magnitude up.
        let roots = p.graph().metrics().get(MetricKind::Roots);
        assert!(roots > 10.0, "roots% should balloon, got {roots:.1}");
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBTree::new(&mut p, "t").unwrap();
        for &k in &shuffled(100) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        t.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut p = process();
        let t = SimBTree::new(&mut p, "t").unwrap();
        assert!(t.is_empty());
        assert!(!t.contains(&mut p, 42).unwrap());
        assert!(t.keys_in_order().is_empty());
        t.check_invariants().unwrap();
    }
}
