//! Table descriptors with per-slot property lists — the Figure 11
//! structure.

use crate::fault_ids::TABLE_TYPO_LEAK;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process, NULL};

/// Property-list node layout: `[0] = next, [8] = payload`.
const NEXT: u64 = 0;
const PROP_SIZE: usize = 16;

/// An array of table descriptors, each owning a linked property list.
///
/// This reproduces the Figure 11 scenario:
///
/// ```c
/// if (pTableDesc[j].pPropDesc != NULL) {
///     // Typo below: 'j' should be used in place of 'i'
///     pPropDescList->next = pTableDesc[i].pPropDesc;
///     // Leaks object pointed to by pPropDesc[j].pPropDesc
///     pTableDesc[j].pPropDesc = NULL;
/// }
/// ```
///
/// The typo detaches slot `j`'s list without linking it anywhere — a
/// leak HeapMD caught because "the percentage of vertexes with
/// indegree = 1 violated its calibrated range" (detached chains lose
/// the in-edge from the descriptor table; their heads pile up as
/// roots). Enable [`TABLE_TYPO_LEAK`] on
/// [`collect_props`](Self::collect_props) to reproduce it.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::TableDescriptors;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut t = TableDescriptors::new(&mut p, 8, "catalog")?;
/// t.set_props(&mut p, 3, 5)?;  // slot 3 gets a 5-node property list
/// let collected = t.collect_props(&mut p, &mut plan, 3)?;
/// assert_eq!(collected, 5); // clean: the whole list was reclaimed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TableDescriptors {
    /// The descriptor array object: slot `j`'s property-list head lives
    /// at byte offset `j * 8`.
    table: Addr,
    slots: usize,
    site: String,
    fault_typo: FaultId,
}

impl TableDescriptors {
    /// Allocates a descriptor array with `slots` property slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn new(p: &mut Process, slots: usize, site: &str) -> Result<Self, HeapError> {
        TableDescriptors::with_fault(p, slots, site, TABLE_TYPO_LEAK)
    }

    /// Like [`new`](Self::new), with a per-instance fault id for the
    /// index-typo call-site.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn with_fault(
        p: &mut Process,
        slots: usize,
        site: &str,
        fault: FaultId,
    ) -> Result<Self, HeapError> {
        assert!(slots > 0, "slot count must be positive");
        p.enter("TableDescriptors::new");
        let table = p.malloc(slots * 8, &format!("{site}::table"))?;
        p.leave();
        Ok(TableDescriptors {
            table,
            slots,
            site: format!("{site}::prop_desc"),
            fault_typo: fault,
        })
    }

    /// Number of descriptor slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The descriptor array's address.
    pub fn table(&self) -> Addr {
        self.table
    }

    fn slot_addr(&self, j: usize) -> Addr {
        assert!(j < self.slots, "slot {j} out of bounds");
        self.table.offset(j as u64 * 8)
    }

    /// Builds a fresh `len`-node property list for slot `j`, freeing
    /// any previous list.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn set_props(&mut self, p: &mut Process, j: usize, len: usize) -> Result<(), HeapError> {
        p.enter("TableDescriptors::set_props");
        self.free_chain(p, j)?;
        let mut head = NULL;
        for _ in 0..len {
            let node = p.malloc(PROP_SIZE, &self.site)?;
            p.write_scalar(node.offset(8))?;
            if !head.is_null() {
                p.write_ptr(node.offset(NEXT), head)?;
            }
            head = node;
        }
        if !head.is_null() {
            p.write_ptr(self.slot_addr(j), head)?;
        }
        p.leave();
        Ok(())
    }

    /// Reclaims slot `j`'s property list, returning the number of nodes
    /// actually freed.
    ///
    /// Fault hook [`TABLE_TYPO_LEAK`]: when it fires, the code walks
    /// the *wrong* slot (`(j + 1) % slots`, the Figure 11 `i`-for-`j`
    /// typo), then clears slot `j` anyway — detaching and leaking the
    /// whole list.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn collect_props(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        j: usize,
    ) -> Result<usize, HeapError> {
        p.enter("TableDescriptors::collect_props");
        let freed = if plan.fires(self.fault_typo) {
            // The typo: frees the chain of the *wrong* slot (often
            // empty), then detaches slot j regardless.
            let wrong = (j + 1) % self.slots;
            let n = self.free_chain(p, wrong)?;
            if p.read_ptr(self.slot_addr(j))?.is_some() {
                p.clear_ptr(self.slot_addr(j))?;
            }
            n
        } else {
            self.free_chain(p, j)?
        };
        p.leave();
        Ok(freed)
    }

    /// Touches slot `j`'s list (read traffic), returning its length.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn walk_props(&self, p: &mut Process, j: usize) -> Result<usize, HeapError> {
        p.enter("TableDescriptors::walk_props");
        let mut n = 0;
        let mut cur = p.read_ptr(self.slot_addr(j))?;
        while let Some(node) = cur {
            p.read(node)?;
            cur = p.read_ptr(node.offset(NEXT))?;
            n += 1;
        }
        p.leave();
        Ok(n)
    }

    /// Frees all property lists and the table, consuming the value.
    ///
    /// Leaked (detached) chains are *not* reclaimed — they are no
    /// longer reachable from the table, exactly like the real leak.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("TableDescriptors::free_all");
        for j in 0..self.slots {
            self.free_chain(p, j)?;
        }
        p.free(self.table)?;
        p.leave();
        Ok(())
    }

    fn free_chain(&mut self, p: &mut Process, j: usize) -> Result<usize, HeapError> {
        let mut n = 0;
        let mut cur = p.read_ptr(self.slot_addr(j))?;
        if cur.is_some() {
            p.clear_ptr(self.slot_addr(j))?;
        }
        while let Some(node) = cur {
            cur = p.read_ptr(node.offset(NEXT))?;
            p.free(node)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::Settings;

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn set_and_walk_props() {
        let mut p = process();
        let mut t = TableDescriptors::new(&mut p, 4, "t").unwrap();
        t.set_props(&mut p, 0, 3).unwrap();
        t.set_props(&mut p, 2, 7).unwrap();
        assert_eq!(t.walk_props(&mut p, 0).unwrap(), 3);
        assert_eq!(t.walk_props(&mut p, 1).unwrap(), 0);
        assert_eq!(t.walk_props(&mut p, 2).unwrap(), 7);
        // 1 table + 10 prop nodes.
        assert_eq!(p.heap().live_objects(), 11);
        p.graph().validate().unwrap();
    }

    #[test]
    fn set_props_replaces_old_list_without_leaking() {
        let mut p = process();
        let mut t = TableDescriptors::new(&mut p, 2, "t").unwrap();
        t.set_props(&mut p, 0, 5).unwrap();
        t.set_props(&mut p, 0, 2).unwrap();
        assert_eq!(p.heap().live_objects(), 3); // table + 2
    }

    #[test]
    fn clean_collect_frees_the_chain() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = TableDescriptors::new(&mut p, 4, "t").unwrap();
        t.set_props(&mut p, 1, 6).unwrap();
        assert_eq!(t.collect_props(&mut p, &mut plan, 1).unwrap(), 6);
        assert_eq!(p.heap().live_objects(), 1);
    }

    #[test]
    fn fig11_typo_detaches_and_leaks_the_chain() {
        let mut p = process();
        let mut plan = FaultPlan::single(TABLE_TYPO_LEAK);
        let mut t = TableDescriptors::new(&mut p, 4, "t").unwrap();
        t.set_props(&mut p, 1, 6).unwrap();
        // The typo frees slot 2's (empty) chain instead.
        assert_eq!(t.collect_props(&mut p, &mut plan, 1).unwrap(), 0);
        // All 6 nodes leaked: live but unreferenced from the table.
        assert_eq!(p.heap().live_objects(), 7);
        assert_eq!(t.walk_props(&mut p, 1).unwrap(), 0);
        // The detached head is now a root of the heap-graph.
        let g = p.graph();
        let roots = g.histogram().with_indegree(0);
        assert!(roots >= 2, "table + leaked head are roots, got {roots}");
        g.validate().unwrap();
    }

    #[test]
    fn free_all_does_not_reclaim_leaks() {
        let mut p = process();
        let mut plan = FaultPlan::single(TABLE_TYPO_LEAK);
        let mut t = TableDescriptors::new(&mut p, 4, "t").unwrap();
        t.set_props(&mut p, 1, 4).unwrap();
        t.collect_props(&mut p, &mut plan, 1).unwrap();
        t.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 4, "the leaked chain survives");
    }

    #[test]
    #[should_panic(expected = "slot 9 out of bounds")]
    fn out_of_bounds_slot_panics() {
        let mut p = process();
        let t = TableDescriptors::new(&mut p, 4, "t").unwrap();
        let _ = t.walk_props(&mut p, 9);
    }
}
