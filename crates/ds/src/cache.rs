//! A reachable-but-stale cache — the SWAT false-positive scenario —
//! plus an unbounded reachable registry, the leak class HeapMD cannot
//! see.

use crate::fault_ids::CACHE_REACHABLE_LEAK;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process, NULL};

/// Entry layout: `[0] = next, [8] = payload`.
const NEXT: u64 = 0;
const ENTRY_SIZE: usize = 16;

/// A cache whose entries stay reachable from its heap-allocated header
/// but are rarely (or never) read again.
///
/// Two paper behaviours hang off this structure:
///
/// * **SWAT false positive** (§4.2, Table 1): a *bounded* cache of
///   reachable-but-stale objects. Staleness-based SWAT reports them as
///   leaks; they are not. HeapMD, which does not track staleness,
///   stays quiet.
/// * **Invisible reachable leak** (§4.2): with
///   [`CACHE_REACHABLE_LEAK`] enabled, [`insert`](Self::insert) ignores
///   the capacity bound and the structure grows without limit while
///   remaining fully reachable — a true leak SWAT finds and HeapMD
///   (and Purify) cannot, because the heap-graph's *shape* stays a
///   healthy chain.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::StaleCache;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut cache = StaleCache::new(&mut p, 8, "render_cache")?;
/// for i in 0..20 {
///     cache.insert(&mut p, &mut plan, i)?;
/// }
/// assert_eq!(cache.len(), 8, "bounded when the leak fault is off");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaleCache {
    /// Heap-allocated header: `[0]` = entry-chain head.
    header: Addr,
    entries: Vec<Addr>,
    capacity: usize,
    site: String,
    fault_leak: FaultId,
}

impl StaleCache {
    /// Allocates the cache header.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn new(p: &mut Process, capacity: usize, site: &str) -> Result<Self, HeapError> {
        StaleCache::with_fault(p, capacity, site, CACHE_REACHABLE_LEAK)
    }

    /// Like [`new`](Self::new), with a per-instance fault id for the
    /// skipped-eviction call-site.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn with_fault(
        p: &mut Process,
        capacity: usize,
        site: &str,
        fault: FaultId,
    ) -> Result<Self, HeapError> {
        assert!(capacity > 0, "capacity must be positive");
        p.enter("StaleCache::new");
        let header = p.malloc(16, &format!("{site}::header"))?;
        p.leave();
        Ok(StaleCache {
            header,
            entries: Vec::new(),
            capacity,
            site: format!("{site}::entry"),
            fault_leak: fault,
        })
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an entry at the chain head.
    ///
    /// Clean behaviour evicts the oldest entry beyond `capacity`.
    /// Fault hook [`CACHE_REACHABLE_LEAK`]: the eviction is skipped —
    /// the chain grows forever, reachable but stale.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn insert(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        _key: u64,
    ) -> Result<Addr, HeapError> {
        p.enter("StaleCache::insert");
        let entry = p.malloc(ENTRY_SIZE, &self.site)?;
        p.write_scalar(entry.offset(8))?;
        if let Some(head) = p.read_ptr(self.header)? {
            p.write_ptr(entry.offset(NEXT), head)?;
        }
        p.write_ptr(self.header, entry)?;
        self.entries.push(entry);
        let leak = plan.fires(self.fault_leak);
        if !leak && self.entries.len() > self.capacity {
            // Evict the oldest (tail) entry: unlink + free.
            let oldest = self.entries.remove(0);
            let penultimate = *self.entries.first().expect("capacity > 0");
            // The tail is reached from the second-oldest entry.
            let _ = penultimate;
            self.unlink_tail(p, oldest)?;
        }
        p.leave();
        Ok(entry)
    }

    /// Reads the most recent `n` entries (the hot set). Everything
    /// older goes stale — the SWAT false-positive bait.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_recent(&self, p: &mut Process, n: usize) -> Result<(), HeapError> {
        p.enter("StaleCache::touch_recent");
        for &e in self.entries.iter().rev().take(n) {
            p.read(e)?;
        }
        p.leave();
        Ok(())
    }

    /// Frees everything, consuming the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("StaleCache::free_all");
        for &e in &self.entries {
            p.free(e)?;
        }
        self.entries.clear();
        p.free(self.header)?;
        p.leave();
        Ok(())
    }

    fn unlink_tail(&mut self, p: &mut Process, tail: Addr) -> Result<(), HeapError> {
        // Walk from the head to the entry whose next == tail.
        let mut cur = p.read_ptr(self.header)?.unwrap_or(NULL);
        if cur == tail {
            p.clear_ptr(self.header)?;
        } else {
            while !cur.is_null() {
                let next = p.read_ptr(cur.offset(NEXT))?.unwrap_or(NULL);
                if next == tail {
                    p.clear_ptr(cur.offset(NEXT))?;
                    break;
                }
                cur = next;
            }
        }
        p.free(tail)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::Settings;

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn bounded_cache_evicts_oldest() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut c = StaleCache::new(&mut p, 4, "t").unwrap();
        for i in 0..10 {
            c.insert(&mut p, &mut plan, i).unwrap();
        }
        assert_eq!(c.len(), 4);
        // header + 4 entries.
        assert_eq!(p.heap().live_objects(), 5);
        p.graph().validate().unwrap();
    }

    #[test]
    fn reachable_leak_fault_grows_without_bound() {
        let mut p = process();
        let mut plan = FaultPlan::single(CACHE_REACHABLE_LEAK);
        let mut c = StaleCache::new(&mut p, 4, "t").unwrap();
        for i in 0..50 {
            c.insert(&mut p, &mut plan, i).unwrap();
        }
        assert_eq!(c.len(), 50);
        assert_eq!(p.heap().live_objects(), 51);
        // Crucially, the heap-graph still looks like a healthy chain:
        // every entry reachable, no dangling slots.
        assert_eq!(p.graph().dangling_count(), 0);
        p.graph().validate().unwrap();
    }

    #[test]
    fn stale_entries_have_old_access_ticks() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut c = StaleCache::new(&mut p, 10, "t").unwrap();
        for i in 0..10 {
            c.insert(&mut p, &mut plan, i).unwrap();
        }
        c.touch_recent(&mut p, 2).unwrap();
        // Oldest entry untouched since insertion; newest touched now.
        let oldest = c.entries[0];
        let newest = *c.entries.last().unwrap();
        let t_old = p.heap().object_at(oldest).unwrap().last_access_tick();
        let t_new = p.heap().object_at(newest).unwrap().last_access_tick();
        assert!(t_new > t_old);
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut c = StaleCache::new(&mut p, 8, "t").unwrap();
        for i in 0..8 {
            c.insert(&mut p, &mut plan, i).unwrap();
        }
        c.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
    }
}
