//! # sim-ds — instrumented data structures over the simulated heap
//!
//! The workloads of the HeapMD reproduction (SPEC-like and
//! commercial-like programs) build their heaps out of these structures.
//! Every node lives on the [`heapmd::Process`] heap and every link is a
//! real pointer store, so the heap-graph sees exactly what a C program's
//! instrumented binary would expose.
//!
//! Each structure carries the **fault hooks** that reproduce the paper's
//! bug taxonomy (Figures 8 and 9): the doubly-linked list can skip its
//! `prev` update (Figure 1), the table descriptors can leak through an
//! index typo (Figure 11), the circular list can free its shared head
//! (Figure 12), the binary tree can omit child→parent pointers (the
//! Figure 10 bug), the oct-tree can alias subtrees into an oct-DAG, the
//! hash table can degenerate, and so on. Faults are controlled by a
//! [`faults::FaultPlan`] consulted at the exact call-site where the
//! paper's code fragment went wrong.
//!
//! # Example
//!
//! ```
//! use heapmd::{Process, Settings};
//! use faults::FaultPlan;
//! use sim_ds::SimDList;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = Process::new(Settings::builder().frq(10).build()?);
//! let mut plan = FaultPlan::new(); // clean
//! let mut list = SimDList::new(&mut p, "assets")?;
//! for i in 0..10 {
//!     list.push_back(&mut p, &mut plan, i)?;
//! }
//! assert_eq!(list.len(), 10);
//! assert_eq!(list.count_back_pointer_violations(&mut p)?, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bintree;
mod btree;
mod buffers;
mod cache;
mod clist;
mod dlist;
mod graph_adj;
mod hashtab;
mod list;
mod octree;
mod table_desc;

pub use bintree::SimBinTree;
pub use btree::SimBTree;
pub use buffers::BufferPool;
pub use cache::StaleCache;
pub use clist::SimCircularList;
pub use dlist::SimDList;
pub use graph_adj::{GraphShape, SimGraph};
pub use hashtab::SimHashTable;
pub use list::SimList;
pub use octree::SimOctTree;
pub use table_desc::TableDescriptors;

/// Fault ids exposed by this crate's structures, one per buggy
/// call-site. Workload bug catalogs reference these.
pub mod fault_ids {
    use faults::FaultId;

    /// Figure 1: `SimDList` insert skips the `prev`-pointer update.
    pub const DLIST_SKIP_PREV: FaultId = FaultId("dlist.skip_prev_update");
    /// Figure 12: `SimCircularList` frees the shared head, leaving the
    /// tail dangling.
    pub const CLIST_FREE_SHARED_HEAD: FaultId = FaultId("clist.free_shared_head");
    /// Figure 10's bug: `SimBinTree` insert omits the child→parent
    /// pointer.
    pub const BINTREE_SKIP_PARENT: FaultId = FaultId("bintree.skip_parent_pointer");
    /// Figure 9: `SimBinTree` degenerates to single-child vertexes.
    pub const BINTREE_SINGLE_CHILD: FaultId = FaultId("bintree.single_child");
    /// Oct-DAG: `SimOctTree` aliases an existing subtree instead of
    /// allocating a child.
    pub const OCTREE_ALIAS_SUBTREE: FaultId = FaultId("octree.alias_subtree");
    /// `SimBTree` split forgets the parent→sibling heap pointer.
    pub const BTREE_SKIP_SIBLING: FaultId = FaultId("btree.skip_sibling_link");
    /// Figure 9: `SimHashTable` hashes every key into bucket 0.
    pub const HASH_DEGENERATE: FaultId = FaultId("hashtab.degenerate_hash");
    /// Figure 11: `TableDescriptors::update` uses the wrong index,
    /// leaking a property list.
    pub const TABLE_TYPO_LEAK: FaultId = FaultId("table_desc.typo_leak");
    /// `SimList::pop_front` forgets the free (small unreachable leak).
    pub const LIST_SMALL_LEAK: FaultId = FaultId("list.small_leak");
    /// `StaleCache` keeps inserting entries that stay reachable but are
    /// never read again (invisible to HeapMD, a SWAT finding).
    pub const CACHE_REACHABLE_LEAK: FaultId = FaultId("cache.reachable_leak");
    /// Figure 9: `SimGraph` generates an atypical shape (star instead of
    /// the configured topology).
    pub const GRAPH_ATYPICAL: FaultId = FaultId("graph.atypical_shape");
}
