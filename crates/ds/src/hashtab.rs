//! A chained hash table — host of the Figure 9 "performance bug".

use crate::fault_ids::HASH_DEGENERATE;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process, NULL};
use std::collections::HashMap;

/// Entry layout: `[0] = next, [8] = key word`.
const NEXT: u64 = 0;
const ENTRY_SIZE: usize = 16;

/// A separate-chaining hash table whose bucket array and entries live
/// on the simulated heap.
///
/// In a healthy table most entries sit in short chains: the entry
/// pointed at by the bucket array has indegree 1, chains are shallow,
/// and the *indegree = 1* / *outdegree = 0* percentages are steady. The
/// paper's "performance bug" — "a poorly chosen hash-function that
/// caused significant collisions for a few inputs" — turns the table
/// into one long chain. Enable [`HASH_DEGENERATE`] to reproduce it: the
/// hash collapses to bucket 0, chain nodes become a long `outdeg = 1`
/// run, and leaves (empty-bucket entries elsewhere) vanish.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::SimHashTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut map = SimHashTable::new(&mut p, 16, "symbols")?;
/// for k in 0..40 {
///     map.insert(&mut p, &mut plan, k)?;
/// }
/// assert!(map.lookup(&mut p, 17)?);
/// assert!(!map.lookup(&mut p, 999)?);
/// assert!(map.longest_chain(&mut p)? <= 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimHashTable {
    table: Addr,
    buckets: usize,
    len: usize,
    /// Shadow key per entry address (navigation only).
    keys: HashMap<Addr, u64>,
    site: String,
    fault_degenerate: FaultId,
}

impl SimHashTable {
    /// Allocates the bucket array.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn new(p: &mut Process, buckets: usize, site: &str) -> Result<Self, HeapError> {
        SimHashTable::with_fault(p, buckets, site, HASH_DEGENERATE)
    }

    /// Like [`new`](Self::new), with a per-instance fault id for the
    /// degenerate-hash call-site.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn with_fault(
        p: &mut Process,
        buckets: usize,
        site: &str,
        fault: FaultId,
    ) -> Result<Self, HeapError> {
        assert!(buckets > 0, "bucket count must be positive");
        p.enter("SimHashTable::new");
        let table = p.malloc(buckets * 8, &format!("{site}::buckets"))?;
        p.leave();
        Ok(SimHashTable {
            table,
            buckets,
            len: 0,
            keys: HashMap::new(),
            site: format!("{site}::entry"),
            fault_degenerate: fault,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket array's address.
    pub fn table(&self) -> Addr {
        self.table
    }

    fn bucket_slot(&self, b: usize) -> Addr {
        self.table.offset(b as u64 * 8)
    }

    fn hash(&self, key: u64, plan: &mut FaultPlan) -> usize {
        if plan.fires(self.fault_degenerate) {
            0
        } else {
            (key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % self.buckets
        }
    }

    /// Inserts `key` at the head of its chain.
    ///
    /// Fault hook [`HASH_DEGENERATE`]: all keys land in bucket 0.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn insert(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        key: u64,
    ) -> Result<Addr, HeapError> {
        p.enter("SimHashTable::insert");
        let b = self.hash(key, plan);
        let entry = p.malloc(ENTRY_SIZE, &self.site)?;
        p.write_scalar(entry.offset(8))?; // key word
        self.keys.insert(entry, key);
        if let Some(head) = p.read_ptr(self.bucket_slot(b))? {
            p.write_ptr(entry.offset(NEXT), head)?;
        }
        p.write_ptr(self.bucket_slot(b), entry)?;
        self.len += 1;
        p.leave();
        Ok(entry)
    }

    /// Looks up `key`, walking its chain. The chain walked is the one
    /// the *clean* hash names — so after degenerate-hash insertions,
    /// lookups miss, exactly like the real bug's slow path.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn lookup(&self, p: &mut Process, key: u64) -> Result<bool, HeapError> {
        p.enter("SimHashTable::lookup");
        let b = (key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % self.buckets;
        let mut cur = p.read_ptr(self.bucket_slot(b))?;
        let mut found = false;
        while let Some(entry) = cur {
            p.read(entry)?;
            if self.keys.get(&entry) == Some(&key) {
                found = true;
                break;
            }
            cur = p.read_ptr(entry.offset(NEXT))?;
        }
        p.leave();
        Ok(found)
    }

    /// Removes one entry with `key`, if present.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn remove(&mut self, p: &mut Process, key: u64) -> Result<bool, HeapError> {
        p.enter("SimHashTable::remove");
        for b in 0..self.buckets {
            let mut prev: Option<Addr> = None;
            let mut cur = p.read_ptr(self.bucket_slot(b))?;
            while let Some(entry) = cur {
                if self.keys.get(&entry) == Some(&key) {
                    let next = p.read_ptr(entry.offset(NEXT))?.unwrap_or(NULL);
                    match prev {
                        Some(prev) => p.write_ptr(prev.offset(NEXT), next)?,
                        None => p.write_ptr(self.bucket_slot(b), next)?,
                    }
                    p.free(entry)?;
                    self.keys.remove(&entry);
                    self.len -= 1;
                    p.leave();
                    return Ok(true);
                }
                prev = Some(entry);
                cur = p.read_ptr(entry.offset(NEXT))?;
            }
        }
        p.leave();
        Ok(false)
    }

    /// Length of the longest chain (collision diagnostic).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn longest_chain(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimHashTable::longest_chain");
        let mut longest = 0;
        for b in 0..self.buckets {
            let mut n = 0;
            let mut cur = p.read_ptr(self.bucket_slot(b))?;
            while let Some(entry) = cur {
                n += 1;
                cur = p.read_ptr(entry.offset(NEXT))?;
            }
            longest = longest.max(n);
        }
        p.leave();
        Ok(longest)
    }

    /// Frees every entry and the bucket array, consuming the table.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimHashTable::free_all");
        for b in 0..self.buckets {
            let mut cur = p.read_ptr(self.bucket_slot(b))?;
            while let Some(entry) = cur {
                cur = p.read_ptr(entry.offset(NEXT))?;
                p.free(entry)?;
            }
        }
        p.free(self.table)?;
        self.keys.clear();
        self.len = 0;
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::Settings;

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut m = SimHashTable::new(&mut p, 8, "t").unwrap();
        for k in 0..30 {
            m.insert(&mut p, &mut plan, k).unwrap();
        }
        assert_eq!(m.len(), 30);
        for k in 0..30 {
            assert!(m.lookup(&mut p, k).unwrap(), "missing key {k}");
        }
        assert!(!m.lookup(&mut p, 1000).unwrap());
        assert!(m.remove(&mut p, 17).unwrap());
        assert!(!m.lookup(&mut p, 17).unwrap());
        assert!(!m.remove(&mut p, 17).unwrap());
        assert_eq!(m.len(), 29);
        p.graph().validate().unwrap();
    }

    #[test]
    fn clean_hash_spreads_chains() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut m = SimHashTable::new(&mut p, 64, "t").unwrap();
        for k in 0..256 {
            m.insert(&mut p, &mut plan, k).unwrap();
        }
        let longest = m.longest_chain(&mut p).unwrap();
        assert!(longest <= 14, "expected spread chains, longest = {longest}");
    }

    #[test]
    fn degenerate_hash_builds_one_long_chain() {
        let mut p = process();
        let mut plan = FaultPlan::single(HASH_DEGENERATE);
        let mut m = SimHashTable::new(&mut p, 64, "t").unwrap();
        for k in 0..100 {
            m.insert(&mut p, &mut plan, k).unwrap();
        }
        assert_eq!(m.longest_chain(&mut p).unwrap(), 100);
        // The chain is a 100-node outdeg=1 run (head has indeg 1 from
        // the bucket array).
        let m1 = p.graph().metrics();
        assert!(m1.get(heapmd::MetricKind::Outdeg1) > 90.0);
        p.graph().validate().unwrap();
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut m = SimHashTable::new(&mut p, 16, "t").unwrap();
        for k in 0..50 {
            m.insert(&mut p, &mut plan, k).unwrap();
        }
        m.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
    }

    #[test]
    #[should_panic(expected = "bucket count must be positive")]
    fn zero_buckets_panics() {
        let mut p = process();
        let _ = SimHashTable::new(&mut p, 0, "t");
    }
}
