//! An adjacency-list graph — host of the Figure 9 "atypical graphs"
//! localization bug.

use crate::fault_ids::GRAPH_ATYPICAL;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Vertex layout: `[0] = adjacency-list head, [8] = payload`.
const ADJ_HEAD: u64 = 0;
const VERTEX_SIZE: usize = 16;
/// Adjacency cell layout: `[0] = next cell, [8] = target vertex`.
const CELL_NEXT: u64 = 0;
const CELL_TARGET: u64 = 8;
const CELL_SIZE: usize = 16;

/// The macroscopic shape of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// Each vertex gets `avg_degree` uniformly random out-neighbours —
    /// the typical input the paper's application expected.
    Uniform,
    /// A ring: vertex `i → i+1 (mod n)`.
    Ring,
    /// A star: every vertex points at vertex 0 — the "atypical graph"
    /// the localization bug produced.
    Star,
}

/// A directed graph stored as heap-allocated adjacency lists.
///
/// Vertexes and adjacency cells are separate heap objects, so the
/// heap-graph of an adjacency-list graph is itself characteristic:
/// vertexes have indegree ≈ their graph indegree (+1 for cells naming
/// them), cells form outdeg = 1 chains. The paper's localization bug
/// "produced atypical graphs, which were represented as adjacency
/// lists" — enable [`GRAPH_ATYPICAL`] to make the generator emit a star
/// regardless of the requested shape.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::{GraphShape, SimGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(1000).build()?);
/// let mut plan = FaultPlan::new();
/// let g = SimGraph::generate(&mut p, &mut plan, 20, 3, GraphShape::Uniform, 42, "net")?;
/// assert_eq!(g.vertex_count(), 20);
/// assert_eq!(g.edge_count(), 60);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimGraph {
    vertices: Vec<Addr>,
    cells: Vec<Addr>,
}

impl SimGraph {
    /// Generates a graph of `n` vertexes.
    ///
    /// For [`GraphShape::Uniform`], each vertex gets `avg_degree`
    /// random out-edges (seeded, deterministic). `avg_degree` is
    /// ignored for the other shapes.
    ///
    /// Fault hook [`GRAPH_ATYPICAL`]: when it fires, the generated
    /// shape becomes [`GraphShape::Star`] regardless of the request.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        p: &mut Process,
        plan: &mut FaultPlan,
        n: usize,
        avg_degree: usize,
        shape: GraphShape,
        seed: u64,
        site: &str,
    ) -> Result<Self, HeapError> {
        Self::generate_with_fault(p, plan, n, avg_degree, shape, seed, site, GRAPH_ATYPICAL)
    }

    /// Like [`generate`](Self::generate), with a per-instance fault id
    /// for the atypical-shape call-site.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    #[allow(clippy::too_many_arguments)]
    pub fn generate_with_fault(
        p: &mut Process,
        plan: &mut FaultPlan,
        n: usize,
        avg_degree: usize,
        shape: GraphShape,
        seed: u64,
        site: &str,
        fault: FaultId,
    ) -> Result<Self, HeapError> {
        p.enter("SimGraph::generate");
        let shape = if plan.fires(fault) {
            GraphShape::Star
        } else {
            shape
        };
        let vsite = format!("{site}::vertex");
        let csite = format!("{site}::adj_cell");
        let mut g = SimGraph {
            vertices: Vec::with_capacity(n),
            cells: Vec::new(),
        };
        for _ in 0..n {
            g.vertices.push(p.malloc(VERTEX_SIZE, &vsite)?);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match shape {
            GraphShape::Uniform => {
                for i in 0..n {
                    for _ in 0..avg_degree {
                        let j = rng.gen_range(0..n);
                        g.add_edge_inner(p, &csite, i, j)?;
                    }
                }
            }
            GraphShape::Ring => {
                for i in 0..n {
                    g.add_edge_inner(p, &csite, i, (i + 1) % n)?;
                }
            }
            GraphShape::Star => {
                for i in 1..n {
                    g.add_edge_inner(p, &csite, i, 0)?;
                }
            }
        }
        p.leave();
        Ok(g)
    }

    /// Number of vertexes.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges (adjacency cells).
    pub fn edge_count(&self) -> usize {
        self.cells.len()
    }

    /// The vertex handles.
    pub fn vertices(&self) -> &[Addr] {
        &self.vertices
    }

    /// Adds the edge `from → to` by vertex index.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn add_edge(
        &mut self,
        p: &mut Process,
        from: usize,
        to: usize,
        site: &str,
    ) -> Result<(), HeapError> {
        p.enter("SimGraph::add_edge");
        let csite = format!("{site}::adj_cell");
        self.add_edge_inner(p, &csite, from, to)?;
        p.leave();
        Ok(())
    }

    fn add_edge_inner(
        &mut self,
        p: &mut Process,
        csite: &str,
        from: usize,
        to: usize,
    ) -> Result<(), HeapError> {
        let cell = p.malloc(CELL_SIZE, csite)?;
        self.cells.push(cell);
        let vfrom = self.vertices[from];
        if let Some(head) = p.read_ptr(vfrom.offset(ADJ_HEAD))? {
            p.write_ptr(cell.offset(CELL_NEXT), head)?;
        }
        p.write_ptr(cell.offset(CELL_TARGET), self.vertices[to])?;
        p.write_ptr(vfrom.offset(ADJ_HEAD), cell)?;
        Ok(())
    }

    /// Touches every vertex and adjacency cell (read traffic for
    /// staleness trackers), including components unreachable from
    /// vertex 0.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_all(&self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimGraph::touch_all");
        for &v in &self.vertices {
            p.read(v)?;
        }
        for &c in &self.cells {
            p.read(c)?;
        }
        p.leave();
        Ok(())
    }

    /// Breadth-first traversal from vertex 0, touching visited objects;
    /// returns the number of reachable vertexes.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn bfs_touch(&self, p: &mut Process) -> Result<usize, HeapError> {
        if self.vertices.is_empty() {
            return Ok(0);
        }
        p.enter("SimGraph::bfs");
        use std::collections::{HashMap, VecDeque};
        let index: HashMap<Addr, usize> = self
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i))
            .collect();
        let mut seen = vec![false; self.vertices.len()];
        let mut q = VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 0;
        while let Some(v) = q.pop_front() {
            visited += 1;
            p.read(self.vertices[v])?;
            let mut cell = p.read_ptr(self.vertices[v].offset(ADJ_HEAD))?;
            while let Some(c) = cell {
                p.read(c)?;
                if let Some(target) = p.read_ptr(c.offset(CELL_TARGET))? {
                    if let Some(&t) = index.get(&target) {
                        if !seen[t] {
                            seen[t] = true;
                            q.push_back(t);
                        }
                    }
                }
                cell = p.read_ptr(c.offset(CELL_NEXT))?;
            }
        }
        p.leave();
        Ok(visited)
    }

    /// Frees every cell and vertex, consuming the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimGraph::free_all");
        for &c in &self.cells {
            p.free(c)?;
        }
        for &v in &self.vertices {
            p.free(v)?;
        }
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(10_000).build().unwrap())
    }

    #[test]
    fn uniform_graph_counts() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let g = SimGraph::generate(&mut p, &mut plan, 30, 4, GraphShape::Uniform, 7, "t").unwrap();
        assert_eq!(g.vertex_count(), 30);
        assert_eq!(g.edge_count(), 120);
        // Heap objects: 30 vertexes + 120 cells.
        assert_eq!(p.heap().live_objects(), 150);
        p.graph().validate().unwrap();
    }

    #[test]
    fn ring_reaches_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let g = SimGraph::generate(&mut p, &mut plan, 25, 0, GraphShape::Ring, 7, "t").unwrap();
        assert_eq!(g.bfs_touch(&mut p).unwrap(), 25);
    }

    #[test]
    fn star_concentrates_indegree_on_the_hub() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let g = SimGraph::generate(&mut p, &mut plan, 40, 0, GraphShape::Star, 7, "t").unwrap();
        let hub = p.heap().object_at(g.vertices()[0]).unwrap().id();
        assert_eq!(p.graph().node(hub).unwrap().indegree, 39);
    }

    #[test]
    fn atypical_fault_overrides_requested_shape() {
        let mut clean_p = process();
        let mut buggy_p = process();
        let mut clean_plan = FaultPlan::new();
        let mut buggy_plan = FaultPlan::single(GRAPH_ATYPICAL);
        let _clean = SimGraph::generate(
            &mut clean_p,
            &mut clean_plan,
            50,
            3,
            GraphShape::Uniform,
            9,
            "t",
        )
        .unwrap();
        let _buggy = SimGraph::generate(
            &mut buggy_p,
            &mut buggy_plan,
            50,
            3,
            GraphShape::Uniform,
            9,
            "t",
        )
        .unwrap();
        // The star has far fewer cells and a very different degree mix.
        let clean_m = clean_p.graph().metrics();
        let buggy_m = buggy_p.graph().metrics();
        assert!(
            (clean_m.get(MetricKind::Indeg1) - buggy_m.get(MetricKind::Indeg1)).abs() > 5.0
                || (clean_m.get(MetricKind::Leaves) - buggy_m.get(MetricKind::Leaves)).abs() > 5.0,
            "shapes should be metrically distinguishable"
        );
    }

    #[test]
    fn bfs_on_disconnected_uniform_graph_is_partial_or_total() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let g = SimGraph::generate(&mut p, &mut plan, 20, 1, GraphShape::Uniform, 3, "t").unwrap();
        let reached = g.bfs_touch(&mut p).unwrap();
        assert!((1..=20).contains(&reached));
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let g = SimGraph::generate(&mut p, &mut plan, 15, 2, GraphShape::Uniform, 5, "t").unwrap();
        g.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
        p.graph().validate().unwrap();
    }
}
