//! A doubly-linked list — the Figure 1 structure.

use crate::fault_ids::DLIST_SKIP_PREV;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process};

/// Node layout: `[0] = next, [8] = prev, [16..] = payload`.
const NEXT: u64 = 0;
const PREV: u64 = 8;
const NODE_SIZE: usize = 24;

/// A doubly-linked list with a heap-allocated sentinel header (the
/// `pAssetList` of the paper's Figure 1).
///
/// In a well-formed list every interior node has indegree 2 (its
/// predecessor's `next` plus its successor's `prev`). The Figure 1 bug —
/// inserting without updating `prev` pointers — leaves nodes at
/// indegree 1, which is exactly how HeapMD caught it: "the percentage
/// of vertexes with indegree = 1 violated its calibrated range".
/// Enable [`DLIST_SKIP_PREV`] to reproduce it.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::{fault_ids::DLIST_SKIP_PREV, SimDList};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::single(DLIST_SKIP_PREV);
/// let mut list = SimDList::new(&mut p, "assets")?;
/// for i in 0..8 {
///     list.push_back(&mut p, &mut plan, i)?;
/// }
/// // The buggy insert forgot every prev pointer:
/// assert!(list.count_back_pointer_violations(&mut p)? > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimDList {
    /// Sentinel header object: `[NEXT]` = first node, `[PREV]` = last.
    sentinel: Addr,
    len: usize,
    site: String,
    fault_skip_prev: FaultId,
}

impl SimDList {
    /// Allocates the sentinel header.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] from the allocation.
    pub fn new(p: &mut Process, site: &str) -> Result<Self, HeapError> {
        SimDList::with_fault(p, site, DLIST_SKIP_PREV)
    }

    /// Like [`new`](Self::new), but with a per-instance fault id for
    /// the skipped-`prev` call-site.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn with_fault(p: &mut Process, site: &str, fault: FaultId) -> Result<Self, HeapError> {
        p.enter("SimDList::new");
        let sentinel = p.malloc(NODE_SIZE, &format!("{site}::header"))?;
        p.leave();
        Ok(SimDList {
            sentinel,
            len: 0,
            site: format!("{site}::node"),
            fault_skip_prev: fault,
        })
    }

    /// Number of nodes (excluding the sentinel).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the list has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sentinel header's address.
    pub fn sentinel(&self) -> Addr {
        self.sentinel
    }

    /// The first node, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn front(&self, p: &mut Process) -> Result<Option<Addr>, HeapError> {
        p.read_ptr(self.sentinel.offset(NEXT))
    }

    /// Appends a node carrying `_payload`.
    ///
    /// Fault hook [`DLIST_SKIP_PREV`]: when it fires, the new node is
    /// linked through `next` pointers only — the Figure 1 bug.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn push_back(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        _payload: u64,
    ) -> Result<Addr, HeapError> {
        p.enter("SimDList::push_back");
        let node = p.malloc(NODE_SIZE, &self.site)?;
        p.write_scalar(node.offset(16))?; // payload word
        let tail = p.read_ptr(self.sentinel.offset(PREV))?;
        let skip_prev = plan.fires(self.fault_skip_prev);
        match tail {
            Some(tail) => {
                p.write_ptr(tail.offset(NEXT), node)?;
                if !skip_prev {
                    p.write_ptr(node.offset(PREV), tail)?;
                }
            }
            None => {
                p.write_ptr(self.sentinel.offset(NEXT), node)?;
                if !skip_prev {
                    p.write_ptr(node.offset(PREV), self.sentinel)?;
                }
            }
        }
        // The sentinel's tail pointer is maintained either way (the
        // Figure 1 bug was about node prev pointers, not the header).
        p.write_ptr(self.sentinel.offset(PREV), node)?;
        self.len += 1;
        p.leave();
        Ok(node)
    }

    /// Inserts a node right after `pred` (a node address or the
    /// sentinel) — the literal shape of Figure 1.
    ///
    /// Fault hook [`DLIST_SKIP_PREV`]: when it fires, neither the new
    /// node's `prev` nor its successor's `prev` is updated.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn insert_after(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        pred: Addr,
        _payload: u64,
    ) -> Result<Addr, HeapError> {
        p.enter("SimDList::insert_after");
        let node = p.malloc(NODE_SIZE, &self.site)?;
        p.write_scalar(node.offset(16))?;
        let succ = p.read_ptr(pred.offset(NEXT))?;
        let skip_prev = plan.fires(self.fault_skip_prev);
        if let Some(succ) = succ {
            p.write_ptr(node.offset(NEXT), succ)?;
            if !skip_prev {
                p.write_ptr(succ.offset(PREV), node)?;
            }
        } else {
            p.write_ptr(self.sentinel.offset(PREV), node)?;
        }
        p.write_ptr(pred.offset(NEXT), node)?;
        if !skip_prev {
            p.write_ptr(node.offset(PREV), pred)?;
        }
        self.len += 1;
        p.leave();
        Ok(node)
    }

    /// Unlinks and frees `node`.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn remove(&mut self, p: &mut Process, node: Addr) -> Result<(), HeapError> {
        p.enter("SimDList::remove");
        let prev = p.read_ptr(node.offset(PREV))?;
        let next = p.read_ptr(node.offset(NEXT))?;
        // A node inserted by the buggy path has no prev pointer; fall
        // back to a walk from the sentinel, as real cleanup code would.
        let prev = match prev {
            Some(prev) => prev,
            None => self.find_pred(p, node)?,
        };
        match next {
            Some(next) => {
                p.write_ptr(prev.offset(NEXT), next)?;
                p.write_ptr(next.offset(PREV), prev)?;
            }
            None => {
                p.clear_ptr(prev.offset(NEXT))?;
                if prev == self.sentinel {
                    p.clear_ptr(self.sentinel.offset(PREV))?;
                } else {
                    p.write_ptr(self.sentinel.offset(PREV), prev)?;
                }
            }
        }
        p.free(node)?;
        self.len -= 1;
        p.leave();
        Ok(())
    }

    /// Touches every node front-to-back (read traffic for staleness
    /// trackers), returning the count.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn walk(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimDList::walk");
        let mut n = 0;
        let mut cur = p.read_ptr(self.sentinel.offset(NEXT))?;
        while let Some(node) = cur {
            p.read(node)?;
            cur = p.read_ptr(node.offset(NEXT))?;
            n += 1;
        }
        p.leave();
        Ok(n)
    }

    /// Walks the list front-to-back, counting nodes whose successor's
    /// `prev` does not point back at them — the invariant the Figure 1
    /// bug violates. A clean list reports 0.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn count_back_pointer_violations(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimDList::check");
        let mut violations = 0;
        let mut prev = self.sentinel;
        let mut cur = p.read_ptr(self.sentinel.offset(NEXT))?;
        while let Some(node) = cur {
            if p.read_ptr(node.offset(PREV))? != Some(prev) {
                violations += 1;
            }
            prev = node;
            cur = p.read_ptr(node.offset(NEXT))?;
        }
        p.leave();
        Ok(violations)
    }

    /// Frees every node and the sentinel, consuming the list.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimDList::free_all");
        let mut cur = p.read_ptr(self.sentinel.offset(NEXT))?;
        while let Some(node) = cur {
            cur = p.read_ptr(node.offset(NEXT))?;
            p.free(node)?;
        }
        p.free(self.sentinel)?;
        p.leave();
        Ok(())
    }

    fn find_pred(&self, p: &mut Process, node: Addr) -> Result<Addr, HeapError> {
        let mut prev = self.sentinel;
        let mut cur = p.read_ptr(self.sentinel.offset(NEXT))?;
        while let Some(c) = cur {
            if c == node {
                return Ok(prev);
            }
            prev = c;
            cur = p.read_ptr(c.offset(NEXT))?;
        }
        // The node is not on the list — a workload defect.
        panic!("node {node} not found in SimDList");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn clean_list_has_no_violations_and_indeg2_interiors() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimDList::new(&mut p, "t").unwrap();
        let nodes: Vec<Addr> = (0..10)
            .map(|i| l.push_back(&mut p, &mut plan, i).unwrap())
            .collect();
        assert_eq!(l.count_back_pointer_violations(&mut p).unwrap(), 0);
        // Interior nodes: next from pred + prev from succ = indegree 2.
        let g = p.graph();
        let interior = p.heap().object_at(nodes[5]).unwrap().id();
        assert_eq!(g.node(interior).unwrap().indegree, 2);
        g.validate().unwrap();
    }

    #[test]
    fn fig1_fault_shifts_indegree_mass_from_2_to_1() {
        let mut clean_p = process();
        let mut buggy_p = process();
        let mut clean_plan = FaultPlan::new();
        let mut buggy_plan = FaultPlan::single(DLIST_SKIP_PREV);

        let mut clean = SimDList::new(&mut clean_p, "t").unwrap();
        let mut buggy = SimDList::new(&mut buggy_p, "t").unwrap();
        for i in 0..50 {
            clean.push_back(&mut clean_p, &mut clean_plan, i).unwrap();
            buggy.push_back(&mut buggy_p, &mut buggy_plan, i).unwrap();
        }
        let clean_m = clean_p.graph().metrics();
        let buggy_m = buggy_p.graph().metrics();
        assert!(
            buggy_m.get(MetricKind::Indeg1) > clean_m.get(MetricKind::Indeg1) + 30.0,
            "indeg=1 jumps: clean {:.1} buggy {:.1}",
            clean_m.get(MetricKind::Indeg1),
            buggy_m.get(MetricKind::Indeg1)
        );
        assert!(buggy.count_back_pointer_violations(&mut buggy_p).unwrap() >= 49);
    }

    #[test]
    fn insert_after_maintains_links() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimDList::new(&mut p, "t").unwrap();
        let a = l.push_back(&mut p, &mut plan, 1).unwrap();
        let c = l.push_back(&mut p, &mut plan, 3).unwrap();
        let b = l.insert_after(&mut p, &mut plan, a, 2).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(p.read_ptr(a.offset(NEXT)).unwrap(), Some(b));
        assert_eq!(p.read_ptr(b.offset(NEXT)).unwrap(), Some(c));
        assert_eq!(p.read_ptr(c.offset(PREV)).unwrap(), Some(b));
        assert_eq!(l.count_back_pointer_violations(&mut p).unwrap(), 0);
    }

    #[test]
    fn insert_after_sentinel_works_when_empty() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimDList::new(&mut p, "t").unwrap();
        let sentinel = l.sentinel();
        let a = l.insert_after(&mut p, &mut plan, sentinel, 1).unwrap();
        assert_eq!(l.front(&mut p).unwrap(), Some(a));
        assert_eq!(l.count_back_pointer_violations(&mut p).unwrap(), 0);
    }

    #[test]
    fn remove_relinks_neighbours() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimDList::new(&mut p, "t").unwrap();
        let a = l.push_back(&mut p, &mut plan, 1).unwrap();
        let b = l.push_back(&mut p, &mut plan, 2).unwrap();
        let c = l.push_back(&mut p, &mut plan, 3).unwrap();
        l.remove(&mut p, b).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(p.read_ptr(a.offset(NEXT)).unwrap(), Some(c));
        assert_eq!(p.read_ptr(c.offset(PREV)).unwrap(), Some(a));
        assert_eq!(l.count_back_pointer_violations(&mut p).unwrap(), 0);
        l.remove(&mut p, c).unwrap();
        l.remove(&mut p, a).unwrap();
        assert!(l.is_empty());
        assert_eq!(p.heap().live_objects(), 1, "only the sentinel survives");
    }

    #[test]
    fn remove_survives_missing_prev_pointer() {
        let mut p = process();
        let mut plan = FaultPlan::single(DLIST_SKIP_PREV);
        let mut l = SimDList::new(&mut p, "t").unwrap();
        let a = l.push_back(&mut p, &mut plan, 1).unwrap();
        let b = l.push_back(&mut p, &mut plan, 2).unwrap();
        l.remove(&mut p, b).unwrap();
        l.remove(&mut p, a).unwrap();
        assert!(l.is_empty());
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimDList::new(&mut p, "t").unwrap();
        for i in 0..6 {
            l.push_back(&mut p, &mut plan, i).unwrap();
        }
        l.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
        p.graph().validate().unwrap();
    }
}
