//! A binary search tree with parent pointers — the Figure 10 structure.

use crate::fault_ids::{BINTREE_SINGLE_CHILD, BINTREE_SKIP_PARENT};
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process, NULL};
use std::collections::HashMap;

/// Node layout: `[0] = left, [8] = right, [16] = parent, [24] = key`.
const LEFT: u64 = 0;
const RIGHT: u64 = 8;
const PARENT: u64 = 16;
const NODE_SIZE: usize = 32;

/// A binary search tree whose nodes carry parent pointers.
///
/// In a clean tree every non-root vertex has indegree ≥ 2 (the parent's
/// child slot plus the node's own children pointing back via `parent`
/// is the *parent's* indegree — precisely: a node's indegree is 1 for
/// the incoming child slot plus one per child's `parent` pointer). The
/// bug HeapMD found in the PC Game (action) program — "newly-inserted
/// tree nodes … missing parent pointers from their children" — leaves
/// affected vertexes at indegree 1, pushing the *indegree = 1*
/// percentage out of its calibrated range (Figure 10). Enable
/// [`BINTREE_SKIP_PARENT`] to reproduce it; enable
/// [`BINTREE_SINGLE_CHILD`] for the Figure 9 indirect bug (every vertex
/// one child).
///
/// Keys are shadowed on the Rust side for navigation; all structural
/// pointers live on the simulated heap.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::SimBinTree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut tree = SimBinTree::new("scene");
/// for key in [50, 30, 70, 20, 40, 60, 80] {
///     tree.insert(&mut p, &mut plan, key)?;
/// }
/// assert_eq!(tree.len(), 7);
/// assert_eq!(tree.count_parent_pointer_violations(&mut p)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimBinTree {
    root: Addr,
    keys: HashMap<Addr, u64>,
    len: usize,
    site: String,
    fault_skip_parent: FaultId,
    fault_single_child: FaultId,
}

impl SimBinTree {
    /// Creates an empty tree.
    pub fn new(site: &str) -> Self {
        SimBinTree::with_faults(site, BINTREE_SKIP_PARENT, BINTREE_SINGLE_CHILD)
    }

    /// Creates an empty tree with per-instance fault ids for its two
    /// buggy call-sites.
    pub fn with_faults(site: &str, skip_parent: FaultId, single_child: FaultId) -> Self {
        SimBinTree {
            root: NULL,
            keys: HashMap::new(),
            len: 0,
            site: format!("{site}::tree_node"),
            fault_skip_parent: skip_parent,
            fault_single_child: single_child,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root node (null when empty).
    pub fn root(&self) -> Addr {
        self.root
    }

    /// Inserts `key` (duplicates descend right).
    ///
    /// Fault hooks:
    /// * [`BINTREE_SKIP_PARENT`] — the new node's `parent` pointer is
    ///   not written (Figure 10's bug);
    /// * [`BINTREE_SINGLE_CHILD`] — navigation ignores the key and
    ///   always descends left, degenerating the tree (Figure 9).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn insert(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
        key: u64,
    ) -> Result<Addr, HeapError> {
        p.enter("SimBinTree::insert");
        let node = p.malloc(NODE_SIZE, &self.site)?;
        p.write_scalar(node.offset(24))?; // key payload
        self.keys.insert(node, key);
        if self.root.is_null() {
            self.root = node;
            self.len += 1;
            p.leave();
            return Ok(node);
        }
        let force_left = plan.fires(self.fault_single_child);
        let mut cur = self.root;
        loop {
            p.read(cur)?;
            let cur_key = self.keys[&cur];
            let go_left = force_left || key < cur_key;
            let slot = if go_left { LEFT } else { RIGHT };
            match p.read_ptr(cur.offset(slot))? {
                Some(child) => cur = child,
                None => {
                    p.write_ptr(cur.offset(slot), node)?;
                    if !plan.fires(self.fault_skip_parent) {
                        p.write_ptr(node.offset(PARENT), cur)?;
                    }
                    break;
                }
            }
        }
        self.len += 1;
        p.leave();
        Ok(node)
    }

    /// Looks a key up, touching the nodes on the search path.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn contains(&self, p: &mut Process, key: u64) -> Result<bool, HeapError> {
        p.enter("SimBinTree::contains");
        let mut cur = self.root;
        let mut found = false;
        while !cur.is_null() {
            p.read(cur)?;
            let cur_key = self.keys[&cur];
            if key == cur_key {
                found = true;
                break;
            }
            let slot = if key < cur_key { LEFT } else { RIGHT };
            cur = p.read_ptr(cur.offset(slot))?.unwrap_or(NULL);
        }
        p.leave();
        Ok(found)
    }

    /// Removes and frees one leaf (the leftmost), returning its key.
    ///
    /// Used by workloads for balanced steady-state churn. The walk uses
    /// child pointers only, so it works on trees damaged by the
    /// skip-parent fault.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn pop_leaf(&mut self, p: &mut Process) -> Result<Option<u64>, HeapError> {
        if self.root.is_null() {
            return Ok(None);
        }
        p.enter("SimBinTree::pop_leaf");
        let mut parent: Option<(Addr, u64)> = None;
        let mut cur = self.root;
        loop {
            let left = p.read_ptr(cur.offset(LEFT))?;
            let right = p.read_ptr(cur.offset(RIGHT))?;
            match (left, right) {
                (Some(child), _) => {
                    parent = Some((cur, LEFT));
                    cur = child;
                }
                (None, Some(child)) => {
                    parent = Some((cur, RIGHT));
                    cur = child;
                }
                (None, None) => break,
            }
        }
        match parent {
            Some((par, slot)) => p.clear_ptr(par.offset(slot))?,
            None => self.root = NULL,
        }
        p.free(cur)?;
        let key = self.keys.remove(&cur);
        self.len -= 1;
        p.leave();
        Ok(key)
    }

    /// Counts non-root nodes whose `parent` pointer does not point at
    /// their actual parent — the invariant the Figure 10 bug violates.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn count_parent_pointer_violations(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimBinTree::check");
        let mut violations = 0;
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            for slot in [LEFT, RIGHT] {
                if let Some(child) = p.read_ptr(node.offset(slot))? {
                    if p.read_ptr(child.offset(PARENT))? != Some(node) {
                        violations += 1;
                    }
                    stack.push(child);
                }
            }
        }
        p.leave();
        Ok(violations)
    }

    /// Touches every node (read traffic for staleness trackers).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_all(&self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimBinTree::touch_all");
        for &addr in self.keys.keys() {
            p.read(addr)?;
        }
        p.leave();
        Ok(())
    }

    /// The maximum root-to-leaf depth (0 for an empty tree).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn depth(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimBinTree::depth");
        let mut max = 0;
        let mut stack = vec![(self.root, 1usize)];
        while let Some((node, d)) = stack.pop() {
            if node.is_null() {
                continue;
            }
            max = max.max(d);
            for slot in [LEFT, RIGHT] {
                if let Some(child) = p.read_ptr(node.offset(slot))? {
                    stack.push((child, d + 1));
                }
            }
        }
        p.leave();
        Ok(max)
    }

    /// Frees every node and empties the tree.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(&mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimBinTree::free_all");
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            for slot in [LEFT, RIGHT] {
                if let Some(child) = p.read_ptr(node.offset(slot))? {
                    stack.push(child);
                }
            }
            p.free(node)?;
        }
        self.root = NULL;
        self.keys.clear();
        self.len = 0;
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    fn keys(n: u64) -> Vec<u64> {
        // A deterministic shuffled key sequence (multiplicative hash).
        (0..n)
            .map(|i| (i.wrapping_mul(2654435761)) % 100_000)
            .collect()
    }

    #[test]
    fn bst_property_and_parent_invariant_hold_clean() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBinTree::new("t");
        for k in keys(100) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.count_parent_pointer_violations(&mut p).unwrap(), 0);
        for k in keys(100) {
            assert!(t.contains(&mut p, k).unwrap());
        }
        assert!(!t.contains(&mut p, 999_999).unwrap());
        p.graph().validate().unwrap();
    }

    #[test]
    fn skip_parent_fault_raises_indeg1_mass() {
        let mut clean_p = process();
        let mut buggy_p = process();
        let mut clean_plan = FaultPlan::new();
        let mut buggy_plan = FaultPlan::single(BINTREE_SKIP_PARENT);
        let mut clean = SimBinTree::new("t");
        let mut buggy = SimBinTree::new("t");
        for k in keys(200) {
            clean.insert(&mut clean_p, &mut clean_plan, k).unwrap();
            buggy.insert(&mut buggy_p, &mut buggy_plan, k).unwrap();
        }
        assert!(buggy.count_parent_pointer_violations(&mut buggy_p).unwrap() > 150);
        let clean_m = clean_p.graph().metrics().get(MetricKind::Indeg1);
        let buggy_m = buggy_p.graph().metrics().get(MetricKind::Indeg1);
        assert!(
            buggy_m > clean_m + 20.0,
            "skip-parent should inflate indeg=1: clean {clean_m:.1} buggy {buggy_m:.1}"
        );
    }

    #[test]
    fn single_child_fault_degenerates_depth() {
        let mut p = process();
        let mut plan = FaultPlan::single(BINTREE_SINGLE_CHILD);
        let mut t = SimBinTree::new("t");
        for k in keys(50) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        // Degenerate chain: depth equals node count.
        assert_eq!(t.depth(&mut p).unwrap(), 50);

        let mut p2 = process();
        let mut plan2 = FaultPlan::new();
        let mut t2 = SimBinTree::new("t");
        for k in keys(50) {
            t2.insert(&mut p2, &mut plan2, k).unwrap();
        }
        assert!(t2.depth(&mut p2).unwrap() < 25, "random keys stay shallow");
    }

    #[test]
    fn pop_leaf_shrinks_to_empty() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBinTree::new("t");
        for k in keys(40) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        let mut popped = 0;
        while t.pop_leaf(&mut p).unwrap().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 40);
        assert!(t.is_empty());
        assert_eq!(p.heap().live_objects(), 0);
        p.graph().validate().unwrap();
    }

    #[test]
    fn pop_leaf_works_on_damaged_trees() {
        let mut p = process();
        let mut plan = FaultPlan::single(BINTREE_SKIP_PARENT);
        let mut t = SimBinTree::new("t");
        for k in keys(20) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        for _ in 0..20 {
            assert!(t.pop_leaf(&mut p).unwrap().is_some());
        }
        assert_eq!(p.heap().live_objects(), 0);
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut t = SimBinTree::new("t");
        for k in keys(64) {
            t.insert(&mut p, &mut plan, k).unwrap();
        }
        t.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
        assert!(t.is_empty());
        p.graph().validate().unwrap();
    }
}
