//! A FIFO pool of large leaf buffers (the gzip/multimedia allocation
//! pattern).

use heapmd::{Addr, HeapError, Process};
use std::collections::VecDeque;

/// A bounded FIFO of plain data buffers.
///
/// Buffers carry no pointers, so they are pure *leaves* (and *roots*)
/// of the heap-graph. Programs dominated by this pattern — gzip's
/// compression windows, a multimedia app's frame buffers — are the ones
/// whose *Leaves* percentage the paper finds stable in the high 80s to
/// 90s (Figure 7A).
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use sim_ds::BufferPool;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut pool = BufferPool::new(4, "frames");
/// for i in 0..10 {
///     pool.acquire(&mut p, 1024 + i)?; // rolls over at capacity 4
/// }
/// assert_eq!(pool.len(), 4);
/// pool.drain(&mut p)?;
/// assert_eq!(p.heap().live_objects(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    buffers: VecDeque<Addr>,
    capacity: usize,
    site: String,
}

impl BufferPool {
    /// Creates a pool that retains at most `capacity` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, site: &str) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BufferPool {
            buffers: VecDeque::with_capacity(capacity),
            capacity,
            site: format!("{site}::buffer"),
        }
    }

    /// Buffers currently held.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Returns `true` when the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Allocates a buffer of `size` bytes, evicting (freeing) the
    /// oldest buffer when the pool is full.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn acquire(&mut self, p: &mut Process, size: usize) -> Result<Addr, HeapError> {
        p.enter("BufferPool::acquire");
        if self.buffers.len() == self.capacity {
            let oldest = self.buffers.pop_front().expect("non-empty at capacity");
            p.free(oldest)?;
        }
        let buf = p.malloc(size, &self.site)?;
        // Fill a few words: plain data stores, no pointers.
        for w in 0..(size / 8).min(4) {
            p.write_scalar(buf.offset(w as u64 * 8))?;
        }
        self.buffers.push_back(buf);
        p.leave();
        Ok(buf)
    }

    /// Touches every held buffer (read traffic).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_all(&self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("BufferPool::touch_all");
        for &b in &self.buffers {
            p.read(b)?;
        }
        p.leave();
        Ok(())
    }

    /// Frees every held buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn drain(&mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("BufferPool::drain");
        while let Some(b) = self.buffers.pop_front() {
            p.free(b)?;
        }
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn fifo_eviction_bounds_live_buffers() {
        let mut p = process();
        let mut pool = BufferPool::new(3, "t");
        let first = pool.acquire(&mut p, 256).unwrap();
        for _ in 0..5 {
            pool.acquire(&mut p, 256).unwrap();
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(p.heap().live_objects(), 3);
        // The very first buffer was evicted (and its address recycled).
        assert!(p.heap().object_at(first).is_none() || pool.len() == 3);
    }

    #[test]
    fn buffers_are_pure_leaves() {
        let mut p = process();
        let mut pool = BufferPool::new(8, "t");
        for _ in 0..8 {
            pool.acquire(&mut p, 512).unwrap();
        }
        let m = p.graph().metrics();
        assert_eq!(m.get(MetricKind::Leaves), 100.0);
        assert_eq!(m.get(MetricKind::Roots), 100.0);
        pool.touch_all(&mut p).unwrap();
        p.graph().validate().unwrap();
    }

    #[test]
    fn drain_empties_the_pool() {
        let mut p = process();
        let mut pool = BufferPool::new(4, "t");
        for _ in 0..4 {
            pool.acquire(&mut p, 128).unwrap();
        }
        pool.drain(&mut p).unwrap();
        assert!(pool.is_empty());
        assert_eq!(p.heap().live_objects(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        BufferPool::new(0, "t");
    }
}
