//! An oct-tree — host of the paper's one *poorly disguised* bug.

use crate::fault_ids::OCTREE_ALIAS_SUBTREE;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process};

/// Node layout: `[0..64] = 8 child pointers, [64..] = payload`.
const CHILD_STRIDE: u64 = 8;
const NODE_SIZE: usize = 80;

/// A fixed-depth oct-tree built during program startup.
///
/// In a clean oct-tree every non-root vertex has indegree exactly 1, so
/// the *indegree = 1* percentage sits near 100 %. The paper describes a
/// "mistake in an oct-tree construction routine that produced an
/// oct-DAG instead": subtrees get aliased, shared children acquire
/// indegree 8, and the indegree = 1 percentage drops to — and stays at —
/// the minimum of its calibrated range for the rest of the run. That is
/// the *poorly disguised* class (§4.3). Enable [`OCTREE_ALIAS_SUBTREE`]
/// to reproduce it.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::SimOctTree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let tree = SimOctTree::build(&mut p, &mut plan, 3, "world")?;
/// // depth 3: 1 + 8 + 64 + 512 nodes
/// assert_eq!(tree.node_count(), 585);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimOctTree {
    root: Addr,
    nodes: Vec<Addr>,
}

impl SimOctTree {
    /// Builds a complete oct-tree of the given depth (depth 0 = a lone
    /// root).
    ///
    /// Fault hook [`OCTREE_ALIAS_SUBTREE`]: when it fires at a
    /// child-creation site, children 1–7 alias child 0's subtree instead
    /// of being allocated — producing an oct-DAG.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn build(
        p: &mut Process,
        plan: &mut FaultPlan,
        depth: usize,
        site: &str,
    ) -> Result<Self, HeapError> {
        SimOctTree::build_with_fault(p, plan, depth, site, OCTREE_ALIAS_SUBTREE)
    }

    /// Like [`build`](Self::build), with a per-instance fault id for
    /// the subtree-aliasing call-site.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn build_with_fault(
        p: &mut Process,
        plan: &mut FaultPlan,
        depth: usize,
        site: &str,
        fault: FaultId,
    ) -> Result<Self, HeapError> {
        p.enter("SimOctTree::build");
        let site = format!("{site}::octree_node");
        let mut nodes = Vec::new();
        let root = p.malloc(NODE_SIZE, &site)?;
        nodes.push(root);
        Self::expand(p, plan, root, depth, &site, &mut nodes, fault)?;
        p.leave();
        Ok(SimOctTree { root, nodes })
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        p: &mut Process,
        plan: &mut FaultPlan,
        node: Addr,
        depth: usize,
        site: &str,
        nodes: &mut Vec<Addr>,
        fault: FaultId,
    ) -> Result<(), HeapError> {
        if depth == 0 {
            return Ok(());
        }
        p.enter("SimOctTree::expand");
        let alias = plan.fires(fault);
        let first = p.malloc(NODE_SIZE, site)?;
        nodes.push(first);
        p.write_ptr(node, first)?; // child slot 0
        Self::expand(p, plan, first, depth - 1, site, nodes, fault)?;
        for i in 1..8u64 {
            let slot = node.offset(i * CHILD_STRIDE);
            if alias {
                // The oct-DAG bug: reuse child 0's subtree.
                p.write_ptr(slot, first)?;
            } else {
                let child = p.malloc(NODE_SIZE, site)?;
                nodes.push(child);
                p.write_ptr(slot, child)?;
                Self::expand(p, plan, child, depth - 1, site, nodes, fault)?;
            }
        }
        p.leave();
        Ok(())
    }

    /// The root node.
    pub fn root(&self) -> Addr {
        self.root
    }

    /// Number of allocated nodes (a DAG allocates far fewer than a tree
    /// of the same depth).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Touches every allocated node (read traffic).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_all(&self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimOctTree::touch_all");
        for &n in &self.nodes {
            p.read(n)?;
        }
        p.leave();
        Ok(())
    }

    /// Frees every allocated node, consuming the tree.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimOctTree::free_all");
        for &n in self.nodes.iter().rev() {
            p.free(n)?;
        }
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(10_000).build().unwrap())
    }

    #[test]
    fn clean_tree_has_indeg1_everywhere_but_root() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let t = SimOctTree::build(&mut p, &mut plan, 2, "t").unwrap();
        assert_eq!(t.node_count(), 73); // 1 + 8 + 64
        let m = p.graph().metrics();
        let expect = 72.0 / 73.0 * 100.0;
        assert!((m.get(MetricKind::Indeg1) - expect).abs() < 1e-9);
        p.graph().validate().unwrap();
    }

    #[test]
    fn oct_dag_fault_collapses_indeg1_percentage() {
        let mut p = process();
        let mut plan = FaultPlan::single(OCTREE_ALIAS_SUBTREE);
        let t = SimOctTree::build(&mut p, &mut plan, 3, "t").unwrap();
        // Every level aliases: only one real child per level → 4 nodes.
        assert_eq!(t.node_count(), 4);
        let m = p.graph().metrics();
        // Shared children have indegree 8: indeg=1 drops to 0.
        assert_eq!(m.get(MetricKind::Indeg1), 0.0);
        p.graph().validate().unwrap();
    }

    #[test]
    fn depth_zero_is_single_root() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let t = SimOctTree::build(&mut p, &mut plan, 0, "t").unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(p.graph().edge_count(), 0);
    }

    #[test]
    fn touch_and_free_round_trip() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let t = SimOctTree::build(&mut p, &mut plan, 2, "t").unwrap();
        t.touch_all(&mut p).unwrap();
        t.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
        p.graph().validate().unwrap();
    }

    #[test]
    fn dag_free_does_not_double_free() {
        let mut p = process();
        let mut plan = FaultPlan::single(OCTREE_ALIAS_SUBTREE);
        let t = SimOctTree::build(&mut p, &mut plan, 4, "t").unwrap();
        // nodes only holds allocated (not aliased) children, so freeing
        // by the allocation list is safe even for the DAG.
        t.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
    }
}
