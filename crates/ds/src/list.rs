//! A singly-linked list on the simulated heap.

use crate::fault_ids::LIST_SMALL_LEAK;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process, NULL};

/// Node layout: `[0] = next pointer, [8..] = payload`.
const NEXT: u64 = 0;
/// Node size in bytes (one pointer + one payload word).
const NODE_SIZE: usize = 16;

/// A singly-linked list whose nodes live on the simulated heap.
///
/// A well-formed `n`-node list contributes one root (the head), `n − 1`
/// vertexes of indegree 1, and one leaf (the tail) to the heap-graph —
/// the shape whose *outdegree = 1* percentage the paper finds stable
/// for `vpr` and `gcc`.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::SimList;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut list = SimList::new("work_queue");
/// list.push_front(&mut p, 7)?;
/// list.push_front(&mut p, 8)?;
/// assert_eq!(list.len(), 2);
/// assert_eq!(list.pop_front(&mut p, &mut plan)?, true);
/// list.free_all(&mut p)?;
/// assert_eq!(list.len(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimList {
    head: Addr,
    len: usize,
    site: String,
    fault_leak: FaultId,
}

impl SimList {
    /// Creates an empty list whose nodes will be tagged with the given
    /// allocation-site name.
    pub fn new(site: &str) -> Self {
        SimList::with_fault(site, LIST_SMALL_LEAK)
    }

    /// Creates an empty list whose leak call-site consults `fault`
    /// instead of the crate-wide default — lets one program host
    /// several distinct instances of the same bug class.
    pub fn with_fault(site: &str, fault: FaultId) -> Self {
        SimList {
            head: NULL,
            len: 0,
            site: format!("{site}::node"),
            fault_leak: fault,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the list has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The head node's address (null when empty).
    pub fn head(&self) -> Addr {
        self.head
    }

    /// Prepends a node carrying `_payload`.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] from the allocation or link stores.
    pub fn push_front(&mut self, p: &mut Process, _payload: u64) -> Result<Addr, HeapError> {
        p.enter("SimList::push_front");
        let node = p.malloc(NODE_SIZE, &self.site)?;
        p.write_scalar(node.offset(8))?; // payload word
        if !self.head.is_null() {
            p.write_ptr(node.offset(NEXT), self.head)?;
        }
        self.head = node;
        self.len += 1;
        p.leave();
        Ok(node)
    }

    /// Removes the head node and frees it.
    ///
    /// Fault hook [`LIST_SMALL_LEAK`]: when it fires, the unlink happens
    /// but the free is forgotten — a classic small unreachable leak.
    ///
    /// Returns `false` when the list was empty.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn pop_front(&mut self, p: &mut Process, plan: &mut FaultPlan) -> Result<bool, HeapError> {
        if self.head.is_null() {
            return Ok(false);
        }
        p.enter("SimList::pop_front");
        let old = self.head;
        let next = p.read_ptr(old.offset(NEXT))?;
        self.head = next.unwrap_or(NULL);
        self.len -= 1;
        if !plan.fires(self.fault_leak) {
            p.free(old)?;
        }
        p.leave();
        Ok(true)
    }

    /// Walks the list, touching every node (read traffic for staleness
    /// trackers) and returning the number of nodes visited.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn walk(&self, p: &mut Process) -> Result<usize, HeapError> {
        p.enter("SimList::walk");
        let mut cur = self.head;
        let mut n = 0;
        while !cur.is_null() {
            p.read(cur)?;
            cur = p.read_ptr(cur.offset(NEXT))?.unwrap_or(NULL);
            n += 1;
        }
        p.leave();
        Ok(n)
    }

    /// Frees every node and empties the list.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(&mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimList::free_all");
        let mut cur = self.head;
        while !cur.is_null() {
            let next = p.read_ptr(cur.offset(NEXT))?.unwrap_or(NULL);
            p.free(cur)?;
            cur = next;
        }
        self.head = NULL;
        self.len = 0;
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultConfig;
    use heapmd::Settings;

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn chain_shape_in_heap_graph() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimList::new("t");
        for i in 0..10 {
            l.push_front(&mut p, i).unwrap();
        }
        assert_eq!(l.len(), 10);
        assert_eq!(l.walk(&mut p).unwrap(), 10);
        let g = p.graph();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 9);
        let m = g.metrics();
        assert_eq!(m.get(heapmd::MetricKind::Roots), 10.0);
        assert_eq!(m.get(heapmd::MetricKind::Indeg1), 90.0);
        g.validate().unwrap();
        let _ = &mut plan;
    }

    #[test]
    fn pop_front_frees_nodes() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut l = SimList::new("t");
        for i in 0..5 {
            l.push_front(&mut p, i).unwrap();
        }
        while l.pop_front(&mut p, &mut plan).unwrap() {}
        assert_eq!(p.heap().live_objects(), 0);
        assert!(l.is_empty());
        assert!(!l.pop_front(&mut p, &mut plan).unwrap());
    }

    #[test]
    fn small_leak_fault_leaves_unreachable_nodes() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        plan.enable(LIST_SMALL_LEAK, FaultConfig::every(2));
        let mut l = SimList::new("t");
        for i in 0..10 {
            l.push_front(&mut p, i).unwrap();
        }
        while l.pop_front(&mut p, &mut plan).unwrap() {}
        // Every 2nd pop leaked: 5 unreachable survivors.
        assert_eq!(p.heap().live_objects(), 5);
        assert_eq!(plan.activations(LIST_SMALL_LEAK), 5);
        p.graph().validate().unwrap();
    }

    #[test]
    fn free_all_releases_everything() {
        let mut p = process();
        let mut l = SimList::new("t");
        for i in 0..7 {
            l.push_front(&mut p, i).unwrap();
        }
        l.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
        assert_eq!(p.graph().node_count(), 0);
        assert_eq!(l.head(), NULL);
    }
}
