//! A circular singly-linked list — the Figure 12 structure.

use crate::fault_ids::CLIST_FREE_SHARED_HEAD;
use faults::{FaultId, FaultPlan};
use heapmd::{Addr, HeapError, Process, NULL};

/// Node layout: `[0] = next, [8..] = payload`.
const NEXT: u64 = 0;
const NODE_SIZE: usize = 16;

/// A circular singly-linked list whose tail points back at the head.
///
/// The Figure 12 bug frees the head and advances to `head->next`
/// *without* re-pointing the tail, leaving the tail with a dangling
/// pointer to the freed node. Once the allocator recycles that address,
/// the stale edge re-binds to an unrelated object — which is how the
/// paper detected it: "the percentage of vertexes with indegree = 2
/// violated its calibrated range". Enable [`CLIST_FREE_SHARED_HEAD`] on
/// [`rotate_free_head`](Self::rotate_free_head) to reproduce it.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
/// use faults::FaultPlan;
/// use sim_ds::SimCircularList;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(100).build()?);
/// let mut plan = FaultPlan::new();
/// let mut ring = SimCircularList::new("columns");
/// for i in 0..4 {
///     ring.push(&mut p, i)?;
/// }
/// assert_eq!(ring.len(), 4);
/// ring.rotate_free_head(&mut p, &mut plan)?; // clean: relinks the tail
/// assert_eq!(ring.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimCircularList {
    head: Addr,
    tail: Addr,
    len: usize,
    site: String,
    fault_free_head: FaultId,
}

impl SimCircularList {
    /// Creates an empty ring.
    pub fn new(site: &str) -> Self {
        SimCircularList::with_fault(site, CLIST_FREE_SHARED_HEAD)
    }

    /// Creates an empty ring with a per-instance fault id for the
    /// shared-head-free call-site.
    pub fn with_fault(site: &str, fault: FaultId) -> Self {
        SimCircularList {
            head: NULL,
            tail: NULL,
            len: 0,
            site: format!("{site}::node"),
            fault_free_head: fault,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current head (null when empty).
    pub fn head(&self) -> Addr {
        self.head
    }

    /// Appends a node before the head (i.e. at the tail), keeping the
    /// ring closed.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn push(&mut self, p: &mut Process, _payload: u64) -> Result<Addr, HeapError> {
        p.enter("SimCircularList::push");
        let node = p.malloc(NODE_SIZE, &self.site)?;
        p.write_scalar(node.offset(8))?;
        if self.head.is_null() {
            // Single node pointing at itself.
            p.write_ptr(node.offset(NEXT), node)?;
            self.head = node;
            self.tail = node;
        } else {
            p.write_ptr(node.offset(NEXT), self.head)?;
            p.write_ptr(self.tail.offset(NEXT), node)?;
            self.tail = node;
        }
        self.len += 1;
        p.leave();
        Ok(node)
    }

    /// Frees the head and advances to the next node — the Figure 12
    /// operation (`ColListFree(pHeadColList); pHeadColList = pNewHead`).
    ///
    /// Fault hook [`CLIST_FREE_SHARED_HEAD`]: when it fires, the tail's
    /// `next` pointer is *not* re-pointed at the new head, so the tail
    /// keeps a dangling pointer to the freed node.
    ///
    /// Returns `false` when the ring has at most one node (nothing to
    /// rotate to).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn rotate_free_head(
        &mut self,
        p: &mut Process,
        plan: &mut FaultPlan,
    ) -> Result<bool, HeapError> {
        if self.len <= 1 {
            return Ok(false);
        }
        p.enter("SimCircularList::rotate_free_head");
        let old_head = self.head;
        let new_head = p.read_ptr(old_head.offset(NEXT))?.expect("ring is closed");
        if !plan.fires(self.fault_free_head) {
            // Correct code re-points the tail before freeing.
            p.write_ptr(self.tail.offset(NEXT), new_head)?;
        }
        p.free(old_head)?;
        self.head = new_head;
        self.len -= 1;
        p.leave();
        Ok(true)
    }

    /// Touches every node reachable from the head by following `next`
    /// up to `len` hops (a dangling tail stops the walk early).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] other than the wild access a dangling
    /// pointer produces (which ends the walk).
    pub fn walk(&self, p: &mut Process) -> Result<usize, HeapError> {
        if self.head.is_null() {
            return Ok(0);
        }
        p.enter("SimCircularList::walk");
        let mut cur = self.head;
        let mut n = 0;
        for _ in 0..self.len {
            if p.read(cur).is_err() {
                break;
            }
            n += 1;
            match p.read_ptr(cur.offset(NEXT)) {
                Ok(Some(next)) => cur = next,
                _ => break,
            }
        }
        p.leave();
        Ok(n)
    }

    /// Frees every node, consuming the ring.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(mut self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("SimCircularList::free_all");
        let mut cur = self.head;
        for _ in 0..self.len {
            if cur.is_null() {
                break;
            }
            let next = p.read_ptr(cur.offset(NEXT))?.unwrap_or(NULL);
            p.free(cur)?;
            cur = next;
        }
        self.head = NULL;
        self.tail = NULL;
        self.len = 0;
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn ring_is_closed_and_all_indeg1() {
        let mut p = process();
        let mut ring = SimCircularList::new("t");
        for i in 0..8 {
            ring.push(&mut p, i).unwrap();
        }
        assert_eq!(ring.walk(&mut p).unwrap(), 8);
        let m = p.graph().metrics();
        // A closed ring: every vertex has indegree 1 and outdegree 1.
        assert_eq!(m.get(MetricKind::Indeg1), 100.0);
        assert_eq!(m.get(MetricKind::Outdeg1), 100.0);
        assert_eq!(m.get(MetricKind::InEqOut), 100.0);
        p.graph().validate().unwrap();
    }

    #[test]
    fn clean_rotation_keeps_the_ring_closed() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut ring = SimCircularList::new("t");
        for i in 0..6 {
            ring.push(&mut p, i).unwrap();
        }
        for _ in 0..3 {
            assert!(ring.rotate_free_head(&mut p, &mut plan).unwrap());
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.walk(&mut p).unwrap(), 3);
        assert_eq!(p.graph().dangling_count(), 0);
    }

    #[test]
    fn fig12_fault_dangles_the_tail_and_rebinds_on_reuse() {
        let mut p = process();
        let mut plan = FaultPlan::single(CLIST_FREE_SHARED_HEAD);
        let mut ring = SimCircularList::new("t");
        for i in 0..6 {
            ring.push(&mut p, i).unwrap();
        }
        ring.rotate_free_head(&mut p, &mut plan).unwrap();
        // Tail still points at the freed head: one dangling slot.
        assert_eq!(p.graph().dangling_count(), 1);
        // A same-size allocation recycles the address; the stale edge
        // re-binds, giving the unrelated object indegree ≥ 1 (and the
        // new head keeps its own in-edge → indeg 2 shows up when the
        // recycled object is also linked normally).
        let recycled = p.malloc(NODE_SIZE, "unrelated").unwrap();
        assert_eq!(p.graph().dangling_count(), 0);
        let id = p.heap().object_at(recycled).unwrap().id();
        assert_eq!(p.graph().node(id).unwrap().indegree, 1);
        p.graph().validate().unwrap();
    }

    #[test]
    fn rotation_on_tiny_rings_is_a_noop() {
        let mut p = process();
        let mut plan = FaultPlan::new();
        let mut ring = SimCircularList::new("t");
        assert!(!ring.rotate_free_head(&mut p, &mut plan).unwrap());
        ring.push(&mut p, 1).unwrap();
        assert!(!ring.rotate_free_head(&mut p, &mut plan).unwrap());
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn free_all_handles_self_loop() {
        let mut p = process();
        let mut ring = SimCircularList::new("t");
        for i in 0..5 {
            ring.push(&mut p, i).unwrap();
        }
        ring.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
        p.graph().validate().unwrap();
    }
}
